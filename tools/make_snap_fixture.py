"""Regenerate benchmarks/data/snap_collab_fixture.txt.

A small SNAP-style collaboration network: three planted dense blocks over
a sparse background, written with scrambled non-dense vertex ids and the
format warts real SNAP downloads carry (comment lines, a duplicate edge,
a mirrored edge, a self-loop).  Deterministic: rerunning this script
reproduces the checked-in file byte for byte.

Usage: PYTHONPATH=src python tools/make_snap_fixture.py
"""

from __future__ import annotations

import pathlib

import numpy as np

OUT = (
    pathlib.Path(__file__).resolve().parent.parent
    / "benchmarks"
    / "data"
    / "snap_collab_fixture.txt"
)


def main() -> None:
    rng = np.random.default_rng(42)
    n = 72
    blocks = [list(range(0, 9)), list(range(9, 17)), list(range(17, 24))]
    edges = set()
    for block in blocks:
        for i, u in enumerate(block):
            for v in block[i + 1 :]:
                if rng.random() < 0.9:
                    edges.add((u, v))
    for u in range(24, n):
        for v in rng.choice(n, size=2, replace=False):
            v = int(v)
            if u != v:
                edges.add((min(u, v), max(u, v)))
    for b, block in enumerate(blocks):
        edges.add((block[0], 24 + b))

    # Scramble to non-dense ids like a real dataset.
    scramble = {v: 1000 + 7 * v + (v % 3) * 1001 for v in range(n)}
    lines = [
        "# Synthetic collaboration network (fixture)",
        "# FromNodeId\tToNodeId",
    ]
    edge_list = sorted(edges)
    rng.shuffle(edge_list)
    for u, v in edge_list:
        lines.append(f"{scramble[u]}\t{scramble[v]}")
    # Format warts: a duplicate, a mirrored edge, a self-loop.
    u0, v0 = edge_list[0]
    lines.append(f"{scramble[u0]}\t{scramble[v0]}")
    lines.append(f"{scramble[v0]}\t{scramble[u0]}")
    lines.append(f"{scramble[3]}\t{scramble[3]}")
    OUT.write_text("\n".join(lines) + "\n", encoding="utf-8")
    print(f"wrote {OUT} ({len(edge_list)} edges, {n} vertices)")


if __name__ == "__main__":
    main()
