"""Docs link checker: every relative link in the Markdown docs must resolve.

Scans ``README.md``, ``docs/*.md`` and the other top-level Markdown files
for inline links/images (``[text](target)``) and validates the relative
ones against the working tree (anchors are stripped; external ``http(s)``/
``mailto`` targets are skipped — CI must not depend on the network).
Backticked path mentions (e.g. README's layout table) are prose, not
links, and are deliberately out of scope.

Run:  python tools/check_docs.py            # exit 1 on any broken link
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: Inline Markdown links/images, excluding fenced-code occurrences (handled
#: by stripping fences below).
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)
_EXTERNAL = ("http://", "https://", "mailto:")


def iter_doc_files() -> list[Path]:
    files = sorted(ROOT.glob("*.md")) + sorted((ROOT / "docs").glob("*.md"))
    return [f for f in files if f.is_file()]


def check_file(doc: Path) -> list[str]:
    problems: list[str] = []
    text = _FENCE_RE.sub("", doc.read_text(encoding="utf-8"))
    for match in _LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(_EXTERNAL) or target.startswith("#"):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        resolved = (doc.parent / path).resolve()
        if not resolved.exists():
            problems.append(f"{doc.relative_to(ROOT)}: broken link -> {target}")
    return problems


def main() -> int:
    docs = iter_doc_files()
    problems: list[str] = []
    for doc in docs:
        problems.extend(check_file(doc))
    if problems:
        for problem in problems:
            print(f"::error::{problem}")
        return 1
    total = sum(
        len(_LINK_RE.findall(_FENCE_RE.sub("", doc.read_text(encoding="utf-8"))))
        for doc in docs
    )
    print(f"checked {len(docs)} Markdown files, {total} links: all resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
