"""CI smoke for the serving fleet: the full lifecycle, end to end.

Drives the real CLI (``repro serve --fleet`` / ``--follow`` /
``snapshot refresh``) through one deployment story:

1. build a snapshot, start a 2-member fleet on it (shared substrate,
   replication log) plus a warm standby following the log;
2. mutate through the fleet; assert the standby catches up to lag 0 and
   answers byte-identically;
3. SIGKILL one member; assert the fleet keeps answering;
4. SIGTERM everything; assert clean exits (drained, exit code 0);
5. ``snapshot refresh`` absorbs the log into the snapshot (seq stamped);
6. assert **zero** ``repro-*`` segments remain in /dev/shm — a leaked
   segment is a failed teardown even if every request succeeded.

Exit code 0 on success; any assertion prints a diagnosis and exits 1.
Run locally with ``python tools/fleet_smoke.py``.
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

REPO = pathlib.Path(__file__).resolve().parent.parent
ENV = dict(os.environ, PYTHONPATH=str(REPO / "src"))


def http(url: str, body=None):
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(url, data=data)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def start_server(args: list[str], cwd: pathlib.Path):
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *args],
        env=ENV, cwd=cwd,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    deadline = time.time() + 120
    lines = []
    while time.time() < deadline:
        line = process.stdout.readline()
        if not line:
            if process.poll() is not None:
                break
            time.sleep(0.05)
            continue
        lines.append(line)
        match = re.search(r"listening on (http://\S+)", line)
        if match:
            return process, match.group(1)
    process.kill()
    raise SystemExit(f"server never became ready:\n{''.join(lines)}")


def check(condition: bool, message: str) -> None:
    if not condition:
        raise SystemExit(f"FLEET SMOKE FAILED: {message}")


def shm_segments() -> list[str]:
    try:
        return [
            name for name in os.listdir("/dev/shm")
            if name.startswith("repro-")
        ]
    except FileNotFoundError:
        return []


def main() -> int:
    # Diffed at the end: only segments created by THIS smoke count as
    # leaks (another process may legitimately hold a live substrate).
    preexisting = set(shm_segments())
    with tempfile.TemporaryDirectory() as tmp:
        cwd = pathlib.Path(tmp)
        snap = cwd / "snap"
        log = snap / "replication.log"

        subprocess.run(
            [
                sys.executable, "-m", "repro.cli", "snapshot", "save",
                "--dataset", "email", "--out", str(snap),
            ],
            env=ENV, cwd=cwd, check=True, capture_output=True,
        )

        fleet, fleet_url = start_server(
            ["serve", "--snapshot", str(snap), "--fleet", "2", "--port", "0"],
            cwd,
        )
        follower, follower_url = start_server(
            ["serve", "--snapshot", str(snap), "--follow", str(log),
             "--port", "0"],
            cwd,
        )
        try:
            status, health = http(fleet_url + "/healthz")
            check(status == 200 and health["status"] == "ok", f"fleet healthz {health}")
            check(health.get("replication_lag") == 0, f"fresh fleet has lag {health}")

            # 2. mutate through the fleet; the standby must catch up.
            status, update = http(
                fleet_url + "/update-edges", {"insert": [[0, 700]]}
            )
            check(status == 200 and update["seq"] == 1, f"update failed {update}")
            deadline = time.time() + 30
            caught_up = False
            while time.time() < deadline:
                _s, fh = http(follower_url + "/healthz")
                replication = fh.get("replication") or {}
                if replication.get("applied_seq") == 1 and fh["replication_lag"] == 0:
                    caught_up = True
                    break
                time.sleep(0.1)
            check(caught_up, "follower never caught up to seq 1")

            query = {"k": 4, "r": 3, "f": "sum"}
            _s, fleet_answer = http(fleet_url + "/query", query)
            _s, standby_answer = http(follower_url + "/query", query)
            check(
                fleet_answer == standby_answer,
                "standby answer diverged from fleet",
            )

            # 3. kill a replica; siblings must keep answering.
            members = [
                int(pid) for pid in
                subprocess.run(
                    ["pgrep", "-P", str(fleet.pid)],
                    capture_output=True, text=True,
                ).stdout.split()
            ]
            check(len(members) >= 2, f"expected >=2 member pids, got {members}")
            os.kill(members[0], signal.SIGKILL)
            time.sleep(0.5)
            survived = 0
            for _ in range(6):
                try:
                    status, _body = http(fleet_url + "/healthz")
                    survived += status == 200
                except OSError:
                    pass
            check(survived >= 4, f"fleet unhealthy after member kill ({survived}/6)")
            status, _answer = http(fleet_url + "/query", query)
            check(status == 200, "query failed after member kill")
        finally:
            # 4. graceful teardown.
            for process in (follower, fleet):
                if process.poll() is None:
                    process.send_signal(signal.SIGTERM)
            codes = [p.wait(timeout=60) for p in (follower, fleet)]
        check(codes == [0, 0], f"non-zero exits on SIGTERM: {codes}")

        # 5. refresh absorbs the log into the snapshot.
        refresh = subprocess.run(
            [
                sys.executable, "-m", "repro.cli", "snapshot", "refresh",
                "--snapshot", str(snap), "--log", str(log),
            ],
            env=ENV, cwd=cwd, capture_output=True, text=True,
        )
        check(refresh.returncode == 0, f"snapshot refresh failed: {refresh.stdout}{refresh.stderr}")
        manifest = json.loads((snap / "manifest.json").read_text())
        check(
            manifest.get("replication_seq") == 1,
            f"manifest seq {manifest.get('replication_seq')} != 1",
        )

    # 6. nothing left behind in /dev/shm.
    leaked = sorted(set(shm_segments()) - preexisting)
    check(not leaked, f"leaked /dev/shm segments: {leaked}")
    print("fleet smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
