"""The kernel tier: one dispatch point for the hottest flat-array loops.

Two interchangeable backends implement the same four kernels —

========================  =============================================
``peel_to_kcore``         in-place "delete while min degree < k" peel
``components_of_mask``    connected components of a masked vertex set
``core_numbers``          full core decomposition (Batagelj–Zaveršnik)
``arc_supports``          per-edge triangle counts (degree orientation)
========================  =============================================

— a pure-numpy fallback (:mod:`repro.kernels._numpy`, always available)
and Numba ``@njit(nogil=True, cache=True)`` compiled loops
(:mod:`repro.kernels._numba`, active when the ``repro[fast]`` extra is
installed).  Selection happens once at import time:

* ``REPRO_NO_NUMBA=1`` in the environment forces the numpy fallback even
  when numba is importable (the CI no-numba leg, and an operator
  kill-switch if a numba upgrade ever misbehaves);
* otherwise the compiled backend is used when ``import numba`` works,
  and the fallback when it does not — no hard dependency.

Both backends promise *bit-identical* results: the peel fixpoint is
unique, components are emitted by smallest member as sorted arrays, and
core numbers/supports are exact integers.  ``backend="set"`` (the
original dict/set implementations above this tier) remains the parity
oracle; the property suites in ``tests/properties`` and
``tests/kernels`` hold all three in lockstep.

The compiled kernels release the GIL, which is what makes the threaded
intra-query expansion in :mod:`repro.influential.expansion_csr` scale on
real cores (see :func:`repro.utils.parallel.expansion_threads`).
"""

from __future__ import annotations

import os

from repro.kernels._numpy import decrement_degrees

__all__ = [
    "NUMBA_AVAILABLE",
    "NUMBA_DISABLED",
    "arc_supports",
    "components_of_mask",
    "core_numbers",
    "decrement_degrees",
    "kernel_backend",
    "peel_to_kcore",
]

#: Environment kill-switch: any value but ""/"0" forces the numpy path.
NO_NUMBA_ENV_VAR = "REPRO_NO_NUMBA"

NUMBA_DISABLED = os.environ.get(NO_NUMBA_ENV_VAR, "").strip() not in ("", "0")

if not NUMBA_DISABLED:
    try:
        from repro.kernels import _numba as _impl

        NUMBA_AVAILABLE = True
    except ImportError:
        from repro.kernels import _numpy as _impl

        NUMBA_AVAILABLE = False
else:
    from repro.kernels import _numpy as _impl

    NUMBA_AVAILABLE = False


def kernel_backend() -> str:
    """``"numba"`` or ``"numpy"`` — which implementations are active."""
    return "numba" if NUMBA_AVAILABLE else "numpy"


peel_to_kcore = _impl.peel_to_kcore
components_of_mask = _impl.components_of_mask
core_numbers = _impl.core_numbers
arc_supports = _impl.arc_supports
