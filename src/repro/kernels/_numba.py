"""Numba-compiled kernel implementations (the ``repro[fast]`` extra).

Importing this module requires ``numba``; :mod:`repro.kernels` only
imports it when the import succeeds and ``REPRO_NO_NUMBA`` is unset, so
the package never hard-depends on a compiler toolchain.  Every kernel is
``@njit(nogil=True, cache=True)``:

* ``nogil`` — the compiled loops drop the GIL, which is what makes the
  threaded intra-query expansion in
  :mod:`repro.influential.expansion_csr` real parallelism instead of
  time-slicing;
* ``cache`` — compiled machine code persists in ``__pycache__``, so the
  first-call JIT cost is paid once per environment, not once per
  process.

Each public wrapper keeps the exact flat-array signature and result
contract of its :mod:`repro.kernels._numpy` twin — same fixpoints, same
component ordering, same exact triangle counts — so the two backends are
interchangeable bit for bit (the parity suites hold them together).
Compilation specialises lazily per dtype: ``indices`` arrives as int32
on ordinary graphs and int64 past 2³¹ ids, and both specialise from the
same source.
"""

from __future__ import annotations

import numpy as np
from numba import njit

__all__ = [
    "arc_supports",
    "components_of_mask",
    "core_numbers",
    "peel_to_kcore",
]


@njit(nogil=True, cache=True)
def _peel_kernel(indptr, indices, mask, k, degrees):
    n = mask.size
    # Worklist of deleted-but-unprocessed vertices.  A vertex is unmasked
    # at push time, so it enters the stack at most once and the stack
    # never outgrows n.
    stack = np.empty(n, np.int64)
    top = 0
    for v in range(n):
        if mask[v] and degrees[v] < k:
            mask[v] = False
            stack[top] = v
            top += 1
    while top:
        top -= 1
        v = stack[top]
        for e in range(indptr[v], indptr[v + 1]):
            u = indices[e]
            if mask[u]:
                degrees[u] -= 1
                if degrees[u] < k:
                    mask[u] = False
                    stack[top] = u
                    top += 1


def peel_to_kcore(
    indptr: np.ndarray,
    indices: np.ndarray,
    mask: np.ndarray,
    k: int,
    degrees: np.ndarray,
) -> None:
    """In-place k-core peel of ``mask``; see the numpy twin for the
    contract (unique fixpoint, survivor degrees exact)."""
    _peel_kernel(indptr, indices, mask, k, degrees)


@njit(nogil=True, cache=True)
def _components_kernel(indptr, indices, mask):
    n = mask.size
    visited = np.zeros(n, np.bool_)
    # One shared order array doubles as every component's BFS queue; the
    # boundaries between components land in `offsets`.
    order = np.empty(n, np.int64)
    offsets = np.empty(n + 1, np.int64)
    offsets[0] = 0
    total = 0
    count = 0
    for seed in range(n):
        if not mask[seed] or visited[seed]:
            continue
        visited[seed] = True
        order[total] = seed
        total += 1
        head = total - 1
        while head < total:
            v = order[head]
            head += 1
            for e in range(indptr[v], indptr[v + 1]):
                u = indices[e]
                if mask[u] and not visited[u]:
                    visited[u] = True
                    order[total] = u
                    total += 1
        count += 1
        offsets[count] = total
    return order[:total], offsets[: count + 1]


def components_of_mask(
    indptr: np.ndarray, indices: np.ndarray, mask: np.ndarray
) -> list[np.ndarray]:
    """Connected components of the masked vertices.

    Seeds scan ascending, so each component's first vertex is its
    smallest member and components come out in smallest-member order;
    each slice is then sorted — the identical contract to the numpy twin
    and the set backend.  ``mask`` is not modified.
    """
    order, offsets = _components_kernel(indptr, indices, mask)
    return [
        np.sort(order[offsets[i] : offsets[i + 1]])
        for i in range(offsets.size - 1)
    ]


@njit(nogil=True, cache=True)
def _core_numbers_kernel(indptr, indices):
    # Batagelj–Zaveršnik bucket peel, verbatim from the set backend: a
    # counting sort of vertices by degree with O(1) bucket demotion
    # swaps.  O(n + m), and branch-free enough that the compiled loop
    # runs at memory speed.
    n = indptr.size - 1
    degree = np.empty(n, np.int64)
    maxd = 0
    for v in range(n):
        d = indptr[v + 1] - indptr[v]
        degree[v] = d
        if d > maxd:
            maxd = d
    bin_start = np.zeros(maxd + 2, np.int64)
    for v in range(n):
        bin_start[degree[v] + 1] += 1
    for d in range(1, maxd + 2):
        bin_start[d] += bin_start[d - 1]
    position = np.empty(n, np.int64)
    order = np.empty(n, np.int64)
    cursor = bin_start.copy()
    for v in range(n):
        position[v] = cursor[degree[v]]
        order[position[v]] = v
        cursor[degree[v]] += 1
    core = degree.copy()
    for i in range(n):
        v = order[i]
        for e in range(indptr[v], indptr[v + 1]):
            u = indices[e]
            if core[u] > core[v]:
                du = core[u]
                pu = position[u]
                pw = bin_start[du]
                w = order[pw]
                if u != w:
                    order[pu] = w
                    order[pw] = u
                    position[u] = pw
                    position[w] = pu
                bin_start[du] += 1
                core[u] -= 1
    return core


def core_numbers(indptr: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Core number of every vertex (int64), O(n + m)."""
    if indptr.size <= 1:
        return np.zeros(0, dtype=np.int64)
    return _core_numbers_kernel(indptr, indices)


@njit(nogil=True, cache=True)
def _arc_supports_kernel(fptr, fdst):
    n = fptr.size - 1
    arcs = fdst.size
    support = np.zeros(arcs, np.int64)
    # For each forward arc (u, v), a sorted merge intersects forward(u)
    # with forward(v).  A triangle with ranks a < b < c surfaces only at
    # its (a, b) arc (any other pairing would need a backward arc), and
    # each intersection hit increments all three of the triangle's arcs
    # — i at (u, v), a at (u, w), b at (v, w) — so every triangle counts
    # exactly once per arc, matching the numpy twin bit for bit.
    for u in range(n):
        for i in range(fptr[u], fptr[u + 1]):
            v = fdst[i]
            a = fptr[u]
            b = fptr[v]
            ea = fptr[u + 1]
            eb = fptr[v + 1]
            while a < ea and b < eb:
                wa = fdst[a]
                wb = fdst[b]
                if wa < wb:
                    a += 1
                elif wb < wa:
                    b += 1
                else:
                    support[i] += 1
                    support[a] += 1
                    support[b] += 1
                    a += 1
                    b += 1
    return support


def arc_supports(fptr: np.ndarray, fdst: np.ndarray) -> np.ndarray:
    """Per-arc triangle counts of the forward orientation; O(m^1.5)."""
    if fdst.size == 0:
        return np.zeros(0, dtype=np.int64)
    return _arc_supports_kernel(fptr, fdst)
