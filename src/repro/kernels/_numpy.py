"""Pure-numpy kernel implementations: the always-available fallback.

Every function here is the vectorised hot loop that used to live inline
in :mod:`repro.graphs.csr`, :mod:`repro.core.decomposition` or
:mod:`repro.truss.decomposition`, lifted to a flat-array signature
(``indptr``/``indices`` instead of a ``CSRAdjacency``) so the Numba twin
in :mod:`repro.kernels._numba` can share it exactly.  The dispatch rules
live in :mod:`repro.kernels`; callers never import this module directly
except to pin the fallback (the parity tests do, to hold the compiled
kernels against it).

Determinism contract (shared with the compiled backend): every function
returns exact integer/boolean results — peel fixpoints are unique, BFS
components are emitted by smallest member as sorted arrays, supports are
exact triangle counts — so swapping backends can never change a solver
answer by even one bit.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "arc_supports",
    "components_of_mask",
    "core_numbers",
    "decrement_degrees",
    "peel_to_kcore",
]


def _gather(
    indptr: np.ndarray, indices: np.ndarray, vertices: np.ndarray
) -> np.ndarray:
    """Concatenated neighbour runs of ``vertices`` (duplicates kept)."""
    vertices = np.asarray(vertices, dtype=np.int64)
    starts = indptr[vertices]
    counts = indptr[vertices + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return indices[:0]
    cum = np.cumsum(counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(cum - counts, counts)
    return indices[np.repeat(starts, counts) + within]


def decrement_degrees(degrees: np.ndarray, neigh: np.ndarray) -> np.ndarray:
    """Subtract each occurrence in ``neigh`` from ``degrees``; return the
    distinct touched vertices.

    Hybrid strategy: a full-length bincount costs O(n) regardless of the
    frontier, so small waves (the long tail of a cascade) use duplicate-safe
    ``subtract.at`` plus a sort-based unique instead — each wave then costs
    O(x log x) in its own size only.
    """
    n = degrees.size
    if neigh.size * 16 < n:
        np.subtract.at(degrees, neigh, 1)
        return np.unique(neigh)
    counts = np.bincount(neigh, minlength=n)
    degrees -= counts
    return np.flatnonzero(counts)


def peel_to_kcore(
    indptr: np.ndarray,
    indices: np.ndarray,
    mask: np.ndarray,
    k: int,
    degrees: np.ndarray,
) -> None:
    """Peel ``mask`` (in place) to the maximal sub-k-core.

    Frontier loop: delete every masked vertex with induced degree < k,
    decrement its surviving neighbours via one bincount, repeat until the
    fixpoint.  ``degrees`` is updated in place and is exact for surviving
    vertices (stale entries may remain for deleted ones).
    """
    members = np.flatnonzero(mask)
    frontier = members[degrees[members] < k]
    while frontier.size:
        mask[frontier] = False
        neigh = _gather(indptr, indices, frontier)
        neigh = neigh[mask[neigh]]
        candidates = decrement_degrees(degrees, neigh)
        frontier = candidates[degrees[candidates] < k]


def components_of_mask(
    indptr: np.ndarray, indices: np.ndarray, mask: np.ndarray
) -> list[np.ndarray]:
    """Connected components among the vertices with ``mask`` set.

    Vectorised frontier BFS: each round gathers the neighbour runs of the
    whole frontier at once.  Components are emitted in order of their
    smallest member and each is a sorted int64 id array — the same
    contract as the set-backend splitter, so solver outputs do not depend
    on the backend.  ``mask`` is not modified.
    """
    unvisited = mask.copy()
    # Two escape hatches keep the level-synchronous BFS from paying fixed
    # overheads per level on shapes it does not suit: narrow levels sort
    # their own neighbour multiset instead of the O(n) scratch-mask
    # collect, and a component whose frontier is *still* narrow after
    # many levels is a high-diameter chain — numpy call overhead per
    # level would make it quadratic-feeling, so the remainder drains
    # through a scalar worklist instead.
    scratch = np.zeros(mask.size, dtype=bool)
    components: list[np.ndarray] = []
    for seed in np.flatnonzero(mask):
        if not unvisited[seed]:
            continue
        unvisited[seed] = False
        frontier = np.asarray([seed], dtype=np.int64)
        chunks = [frontier]
        level = 0
        while frontier.size:
            level += 1
            if level >= 32 and frontier.size * 64 < mask.size:
                chunks.append(_drain_bfs(indptr, indices, frontier, unvisited))
                break
            neigh = _gather(indptr, indices, frontier)
            neigh = neigh[unvisited[neigh]]
            if neigh.size == 0:
                break
            unvisited[neigh] = False
            if neigh.size * 16 < mask.size:
                frontier = np.unique(neigh).astype(np.int64, copy=False)
            else:
                scratch[neigh] = True
                frontier = np.flatnonzero(scratch)
                scratch[frontier] = False
            chunks.append(frontier)
        if len(chunks) == 1:
            components.append(chunks[0])
        else:
            components.append(np.sort(np.concatenate(chunks)))
    return components


def _drain_bfs(
    indptr: np.ndarray,
    indices: np.ndarray,
    frontier: np.ndarray,
    unvisited: np.ndarray,
) -> np.ndarray:
    """Finish a BFS one vertex at a time from an already-visited
    frontier; returns the newly reached vertices (marked visited)."""
    ip, idx = indptr, indices
    queue = frontier.tolist()
    head = 0
    found: list[int] = []
    while head < len(queue):
        v = queue[head]
        head += 1
        for u in idx[ip[v] : ip[v + 1]].tolist():
            if unvisited[u]:
                unvisited[u] = False
                found.append(u)
                queue.append(u)
    return np.asarray(found, dtype=np.int64)


def core_numbers(indptr: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Core number of every vertex: vectorised BZ, peeling degree waves.

    Outer loop raises the peel level k to the minimum surviving degree;
    inner loop removes the whole ``degree <= k`` frontier at once, gathers
    every surviving neighbour of the frontier in one CSR multi-slice, and
    decrements their degrees with a single bincount.  Vertices removed
    while the level is k have core number exactly k, so the result matches
    the sequential Batagelj–Zaveršnik peel.
    """
    n = indptr.size - 1
    degree = np.diff(indptr)
    core = np.zeros(n, dtype=np.int64)
    alive = np.ones(n, dtype=bool)
    sentinel = np.iinfo(np.int64).max
    remaining = n
    k = 0
    while remaining:
        level_floor = int(np.where(alive, degree, sentinel).min())
        if level_floor > k:
            k = level_floor
        frontier = np.flatnonzero(alive & (degree <= k))
        while frontier.size:
            core[frontier] = k
            alive[frontier] = False
            remaining -= frontier.size
            neigh = _gather(indptr, indices, frontier)
            neigh = neigh[alive[neigh]]
            candidates = decrement_degrees(degree, neigh)
            frontier = candidates[degree[candidates] <= k]
    return core


def arc_supports(fptr: np.ndarray, fdst: np.ndarray) -> np.ndarray:
    """Triangle count of every forward arc of a degree-oriented DAG.

    ``fptr``/``fdst`` are the CSR of the forward orientation (every edge
    oriented from lower to higher (degree, id) rank; runs sorted by
    target), so arc ``i`` is ``(src_of(i), fdst[i])`` and each undirected
    edge appears exactly once.  For each arc (u, v), scan the *smaller*
    of forward(u)/forward(v): candidate w closes a triangle iff the
    remaining pair is also a forward arc.  A triangle with ranks a < b <
    c is found only at its (a, b) arc — the completing test from any
    other arc would need a backward arc — so each triangle counts exactly
    once whichever side is scanned, incrementing all three of its arcs.
    Arc blocks of bounded size gather their (arc, w) candidate pairs, one
    searchsorted tests them, and one bincount accumulates the per-arc
    triangle counts; total work is ``sum min(|forward(u)|,
    |forward(v)|)``, the classic O(m^1.5) bound, and peak memory is
    capped per block.
    """
    n = fptr.size - 1
    arcs = fdst.size
    support = np.zeros(arcs, dtype=np.int64)
    if arcs == 0:
        return support
    fcount = np.diff(fptr)
    fsrc = np.repeat(np.arange(n, dtype=np.int64), fcount)
    composite = fsrc * n + fdst  # sorted ascending by construction
    src_smaller = fcount[fsrc] <= fcount[fdst]
    scanned = np.where(src_smaller, fsrc, fdst)
    tested = np.where(src_smaller, fdst, fsrc)
    expand = fcount[scanned]  # |forward(scanned)| per arc
    cum = np.cumsum(expand)
    # Total candidate pairs is the O(m^1.5) work bound; process arcs in
    # blocks so peak memory stays bounded instead of tracking it (a
    # large clique would otherwise materialise gigabyte-sized arrays).
    chunk_pairs = 1 << 22
    start = 0
    while start < arcs:
        base = int(cum[start - 1]) if start else 0
        stop = int(np.searchsorted(cum, base + chunk_pairs, side="right"))
        stop = max(stop, start + 1)
        block_expand = expand[start:stop]
        block_total = int(cum[stop - 1]) - base
        if block_total:
            arc_of = np.repeat(
                np.arange(start, stop, dtype=np.int64), block_expand
            )
            # w_pos[j] walks forward(scanned) for arc j: one fused
            # repeat carries both run start and cumulative offset.
            block_cum = cum[start:stop] - base
            w_pos = np.arange(block_total, dtype=np.int64) + np.repeat(
                fptr[scanned[start:stop]] - (block_cum - block_expand),
                block_expand,
            )
            w = fdst[w_pos]
            key = tested[arc_of] * n + w
            found = np.minimum(np.searchsorted(composite, key), arcs - 1)
            hit = composite[found] == key
            support += np.bincount(
                np.concatenate([arc_of[hit], w_pos[hit], found[hit]]),
                minlength=arcs,
            )
        start = stop
    return support
