"""Leader rosters, k-hop reach and overlap summaries for result sets.

The case-study reading of the paper (Section VI's author-community
tables) wants more than the raw member lists: *who* anchors each
community, how far its influence plausibly extends, and how much the
top-r communities overlap.  These helpers compute exactly that, from the
graph and an already-ranked :class:`~repro.influential.results.ResultSet`
— they are deterministic post-processing, never a second search.

All three return plain JSON-ready structures (Python ints/floats/lists)
because their primary consumer is the HTTP analytics surface.
"""

from __future__ import annotations

from repro.errors import SpecError
from repro.graphs.graph import Graph
from repro.influential.results import ResultSet

__all__ = ["community_leaders", "community_summary", "khop_reach"]


def _member_entry(graph: Graph, vertex: int) -> dict:
    return {
        "vertex": int(vertex),
        "label": graph.label_of(vertex),
        "weight": float(graph.weights[vertex]),
    }


def community_leaders(
    graph: Graph, result: ResultSet, deputies: int = 1
) -> list[dict]:
    """Leader + deputy roster for each ranked community.

    The leader is the member with the largest influence weight (ties go
    to the smaller vertex id, keeping the roster deterministic across
    backends); ``deputies`` more members follow in the same order.  One
    entry per community, in result-rank order.
    """
    if deputies < 0:
        raise SpecError(f"deputies must be >= 0, got {deputies}")
    weights = graph.weights
    roster = []
    for rank, community in enumerate(result, start=1):
        members = sorted(community.vertices)
        by_influence = sorted(members, key=lambda v: (-weights[v], v))
        roster.append(
            {
                "rank": rank,
                "size": len(members),
                "value": community.value,
                "community": [int(v) for v in members],
                "leader": _member_entry(graph, by_influence[0]),
                "deputies": [
                    _member_entry(graph, v)
                    for v in by_influence[1 : 1 + deputies]
                ],
            }
        )
    return roster


def khop_reach(graph: Graph, result: ResultSet, hops: int = 2) -> list[dict]:
    """Fraction of the graph within ``h`` hops of each community.

    A community's *reach* at distance ``h`` is the share of all vertices
    whose shortest path to any member is at most ``h`` (members count at
    distance 0).  Reported as cumulative percentages per hop — a proxy
    for how much of the network the community can influence directly.
    """
    if hops < 1:
        raise SpecError(f"hops must be >= 1, got {hops}")
    n = graph.n
    out = []
    for rank, community in enumerate(result, start=1):
        reached = set(int(v) for v in community.vertices)
        frontier = reached
        per_hop: dict[str, float] = {}
        for hop in range(1, hops + 1):
            fringe: set[int] = set()
            for vertex in frontier:
                for neighbor in graph.neighbors(vertex):
                    if neighbor not in reached:
                        fringe.add(int(neighbor))
            reached |= fringe
            per_hop[str(hop)] = round(100.0 * len(reached) / n, 4) if n else 0.0
            frontier = fringe
            if not frontier:
                # The component is exhausted; further hops are flat.
                for rest in range(hop + 1, hops + 1):
                    per_hop[str(rest)] = per_hop[str(hop)]
                break
        out.append(
            {
                "rank": rank,
                "size": len(community.vertices),
                "reach_pct": per_hop,
                "reached": len(reached),
            }
        )
    return out


def community_summary(graph: Graph, result: ResultSet) -> dict:
    """Size, coverage and pairwise-overlap statistics for a result set.

    Overlap is Jaccard similarity between member sets; only overlapping
    pairs are listed (all pairs of a TONIC answer are disjoint by
    construction, and the empty list is the cheap way to prove it).
    """
    communities = [frozenset(community.vertices) for community in result]
    sizes = [len(community) for community in communities]
    values = [community.value for community in result]
    union: set[int] = set()
    for community in communities:
        union |= community
    pairs = []
    for i in range(len(communities)):
        for j in range(i + 1, len(communities)):
            shared = len(communities[i] & communities[j])
            if shared:
                jaccard = shared / len(communities[i] | communities[j])
                pairs.append(
                    {
                        "a": i + 1,
                        "b": j + 1,
                        "shared": shared,
                        "jaccard": round(jaccard, 6),
                    }
                )
    pairs.sort(key=lambda entry: (-entry["jaccard"], entry["a"], entry["b"]))
    return {
        "count": len(communities),
        "sizes": {
            "min": min(sizes) if sizes else 0,
            "max": max(sizes) if sizes else 0,
            "mean": round(sum(sizes) / len(sizes), 4) if sizes else 0.0,
        },
        "values": {
            "min": min(values) if values else None,
            "max": max(values) if values else None,
        },
        "vertices_covered": len(union),
        "coverage_pct": (
            round(100.0 * len(union) / graph.n, 4) if graph.n else 0.0
        ),
        "disjoint": not pairs,
        "overlapping_pairs": pairs,
    }
