"""Post-query analytics over ranked influential communities.

Pure read-only functions over ``(graph, ResultSet)`` pairs: they never
touch solver state, so the serving layer can run them against cached
decompositions (``/v1/analytics/*`` answers the underlying query through
the warm result cache and single-flight machinery first, then walks the
communities here).
"""

from repro.analytics.communities import (
    community_leaders,
    community_summary,
    khop_reach,
)

__all__ = ["community_leaders", "community_summary", "khop_reach"]
