"""ICP-style index over the min-community family (extension).

The prior-work baselines the paper builds on (Li et al. 2015's ICPS index,
Bi et al. 2018's LCPS) answer repeated top-r queries under ``min`` from a
precomputed structure instead of re-peeling the graph.  The min community
family is *laminar* (any two communities are nested or disjoint), so it
forms a forest: children of a community are the communities discovered
after deleting its minimum-weight vertices.

:class:`MinCommunityIndex` materialises that forest once — O(n (n + m))
build, O(n) storage since each vertex appears in O(depth) nodes but nodes
store only deltas... here, for clarity over asymptotics, each node stores
its member set (stand-in scale keeps this cheap) — and then answers:

* ``top_r(r)`` — the r best communities, O(n log n) once then O(r);
* ``top_r_noncontained(r)`` — the Li et al. variant (forest leaves);
* ``top_r_nonoverlapping(r)`` — greedy disjoint selection;
* ``community_of(v)`` — the best (deepest) community containing v.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SolverError
from repro.graphs.graph import Graph
from repro.influential.community import Community
from repro.influential.minmax_solvers import min_communities
from repro.influential.nonoverlap import greedy_disjoint
from repro.influential.results import ResultSet


@dataclass
class _Node:
    """One community in the laminar forest."""

    community: Community
    parent: int | None = None
    children: list[int] = field(default_factory=list)


class MinCommunityIndex:
    """Query structure over all k-influential communities under min."""

    def __init__(self, graph: Graph, k: int) -> None:
        if k < 1:
            raise SolverError(f"need k >= 1, got {k}")
        self.graph = graph
        self.k = k
        family = min_communities(graph, k)
        # Sort by decreasing size: a community's parent is the smallest
        # strict superset, which must appear earlier in this order.
        ordered = sorted(family, key=lambda c: -c.size)
        self._nodes: list[_Node] = []
        # Maps each vertex to the index of the deepest (smallest) community
        # containing it seen so far — laminarity makes this the parent
        # candidate for any later, smaller community containing the vertex.
        deepest: dict[int, int] = {}
        for community in ordered:
            node_id = len(self._nodes)
            probe = next(iter(community.vertices))
            parent = deepest.get(probe)
            self._nodes.append(_Node(community, parent))
            if parent is not None:
                self._nodes[parent].children.append(node_id)
            for v in community.vertices:
                deepest[v] = node_id
        self._deepest = deepest
        self._by_value = sorted(node.community for node in self._nodes)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def communities(self) -> list[Community]:
        """All communities, best first."""
        return list(self._by_value)

    def top_r(self, r: int) -> ResultSet:
        """The r communities with the highest min values."""
        if r < 1:
            raise SolverError(f"need r >= 1, got {r}")
        return ResultSet(self._by_value[:r])

    def top_r_noncontained(self, r: int) -> ResultSet:
        """Top-r among communities with no recorded strict subset (the
        leaves of the laminar forest) — Li et al.'s non-contained variant."""
        if r < 1:
            raise SolverError(f"need r >= 1, got {r}")
        leaves = [
            node.community for node in self._nodes if not node.children
        ]
        return ResultSet(sorted(leaves)[:r])

    def top_r_nonoverlapping(self, r: int) -> ResultSet:
        """Greedy disjoint top-r (Definition 5) from the indexed family."""
        return greedy_disjoint(self._by_value, r)

    def community_of(self, vertex: int) -> Community | None:
        """The highest-valued (deepest) community containing ``vertex``,
        or None if the vertex is outside the maximal k-core."""
        self.graph.check_vertex(vertex)
        node_id = self._deepest.get(vertex)
        if node_id is None:
            return None
        return self._nodes[node_id].community

    def chain_of(self, vertex: int) -> list[Community]:
        """Every community containing ``vertex``, deepest first."""
        self.graph.check_vertex(vertex)
        node_id = self._deepest.get(vertex)
        chain = []
        while node_id is not None:
            node = self._nodes[node_id]
            chain.append(node.community)
            node_id = node.parent
        return chain
