"""The community result type.

A :class:`Community` is one answer of a top-r query: a vertex set, the
influence value an aggregator assigned it, and the query context (k and
aggregator name) under which it was found.  Instances are immutable,
hashable and totally ordered by influence value (descending-first sort
key) with deterministic tie-breaking, so result lists are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.aggregators.base import Aggregator
from repro.graphs.graph import Graph


@dataclass(frozen=True)
class Community:
    """One influential community.

    ``vertices`` is a frozenset of 0-based vertex ids; ``value`` is
    ``f(H)``; ``aggregator`` and ``k`` record the query.  Ordering is by
    value descending, then size ascending, then lexicographic vertex list —
    i.e. ``sorted(communities)`` ranks best-first deterministically.
    """

    vertices: frozenset[int]
    value: float
    aggregator: str
    k: int
    _sorted: tuple[int, ...] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.vertices:
            raise ValueError("a community cannot be empty")
        object.__setattr__(self, "_sorted", tuple(sorted(self.vertices)))

    @property
    def size(self) -> int:
        """``|H|``: number of member vertices."""
        return len(self.vertices)

    def sort_key(self) -> tuple[float, int, tuple[int, ...]]:
        """Ascending sort by this key ranks communities best-first."""
        return (-self.value, self.size, self._sorted)

    def __lt__(self, other: "Community") -> bool:
        return self.sort_key() < other.sort_key()

    def overlaps(self, other: "Community") -> bool:
        """True if the two communities share any vertex (Definition 5)."""
        small, large = sorted((self.vertices, other.vertices), key=len)
        return any(v in large for v in small)

    def members(self) -> list[int]:
        """Sorted member ids."""
        return list(self._sorted)

    def labels(self, graph: Graph) -> list[str]:
        """Member display names, using the graph's labels."""
        return [graph.label_of(v) for v in self._sorted]

    def describe(self, graph: Graph | None = None, max_members: int = 12) -> str:
        """One-line human-readable summary (used by the CLI and examples)."""
        if graph is not None:
            names = self.labels(graph)
        else:
            names = [f"v{v}" for v in self._sorted]
        shown = ", ".join(names[:max_members])
        if len(names) > max_members:
            shown += f", ... (+{len(names) - max_members} more)"
        return f"[{self.aggregator}={self.value:.6g} size={self.size}] {{{shown}}}"


def community_from_vertices(
    graph: Graph,
    vertices: Iterable[int],
    aggregator: Aggregator,
    k: int,
) -> Community:
    """Build a :class:`Community`, computing its value with ``aggregator``.

    Does not validate cohesiveness/connectivity — solvers construct
    communities from sets they have already certified; use
    :mod:`repro.hardness.certificates` to re-check claims.
    """
    members = frozenset(vertices)
    value = aggregator.value(graph, members)
    return Community(members, value, aggregator.name, k)
