"""Problem specifications (Problems 1 and 2 of the paper).

A :class:`ProblemSpec` bundles the query parameters — degree constraint
``k``, output count ``r``, optional size constraint ``s``, aggregation
function ``f`` and the non-overlapping flag — validates them, and answers
the classification questions the dispatcher asks (is this instance
polynomial? which algorithm family applies?).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.aggregators.base import Aggregator
from repro.aggregators.registry import get_aggregator
from repro.errors import SpecError
from repro.graphs.graph import Graph
from repro.influential.constraints import LabelPredicate


@dataclass(frozen=True)
class ProblemSpec:
    """Parameters of a top-r (non-overlapping) (size-constrained) query.

    ``s=None`` means size-unconstrained (the paper's convention is
    ``s = |V|``); ``non_overlapping=True`` asks for Problem 2 (TONIC)
    instead of Problem 1 (TIC).  ``labels`` optionally constrains the
    answer to communities whose members *all* match the predicate (the
    Top-L extension): the constrained problem is the unconstrained one
    on the induced subgraph of matching vertices.
    """

    k: int
    r: int
    f: Aggregator
    s: int | None = None
    non_overlapping: bool = False
    labels: LabelPredicate | None = None

    def __post_init__(self) -> None:
        if self.k < 1:
            raise SpecError(f"degree constraint k must be >= 1, got {self.k}")
        if self.r < 1:
            raise SpecError(f"output count r must be >= 1, got {self.r}")
        if self.s is not None and self.s < self.k + 1:
            raise SpecError(
                f"size constraint s={self.s} is infeasible: a k-core needs "
                f"at least k+1 = {self.k + 1} vertices"
            )
        if not isinstance(self.f, Aggregator):
            raise SpecError(f"f must be an Aggregator, got {type(self.f).__name__}")
        if self.labels is not None and not isinstance(self.labels, LabelPredicate):
            raise SpecError(
                f"labels must be a LabelPredicate, got {type(self.labels).__name__}"
            )

    @staticmethod
    def create(
        k: int,
        r: int,
        f: "str | Aggregator",
        s: int | None = None,
        non_overlapping: bool = False,
        labels: "LabelPredicate | str | list | dict | None" = None,
    ) -> "ProblemSpec":
        """Build a spec, resolving ``f`` by name and parsing ``labels``
        from any wire shape :meth:`LabelPredicate.from_json` accepts."""
        return ProblemSpec(
            k, r, get_aggregator(f), s, non_overlapping,
            LabelPredicate.from_json(labels),
        )

    @property
    def size_constrained(self) -> bool:
        """True for Problem-1-with-s instances (Definition 4 applies)."""
        return self.s is not None

    @property
    def label_constrained(self) -> bool:
        """True when a label predicate restricts community membership."""
        return self.labels is not None

    @property
    def is_np_hard(self) -> bool:
        """Hardness per the paper's Table I / Section III.

        Size-constrained instances are NP-hard for every aggregator
        (Theorem 4 for sum; Theorem 1 implies avg; prior reductions for
        the rest); unconstrained hardness is the aggregator's own flag.
        """
        if self.size_constrained:
            return True
        return self.f.np_hard_unconstrained

    def effective_size_bound(self, graph: Graph) -> int:
        """The working size bound: ``s``, or ``|V|`` when unconstrained."""
        return self.s if self.s is not None else graph.n

    def infeasible_for(self, graph: Graph) -> bool:
        """True when no community can exist in ``graph`` *by construction*.

        A k-core needs at least ``k + 1`` vertices, so ``k >= |V|`` (which
        subsumes the empty and singleton graphs for any valid ``k``) makes
        the correct answer the empty set.  The query API returns that
        empty answer instead of raising — a serving layer must absorb
        degenerate queries, not crash on them — while
        :meth:`validate_for` keeps treating the condition as an error for
        callers that want strict validation.
        """
        return graph.n == 0 or self.k >= graph.n

    def validate_for(self, graph: Graph) -> None:
        """Check the spec is meaningful for ``graph``."""
        if self.k >= graph.n:
            raise SpecError(
                f"k={self.k} can never be met in a graph with {graph.n} vertices"
            )
        if self.s is not None and self.s > graph.n:
            raise SpecError(f"size constraint s={self.s} exceeds |V|={graph.n}")

    def with_(self, **changes: object) -> "ProblemSpec":
        """A copy with some fields replaced (sweep helper)."""
        return replace(self, **changes)  # type: ignore[arg-type]
