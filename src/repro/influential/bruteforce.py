"""Exhaustive reference solver — the test oracle for Definitions 3 and 4.

Enumerates every connected induced subgraph with minimum degree >= k
(optionally size-bounded), applies the maximality condition of Definition 3
literally (no strict superset that is connected and cohesive may have the
same influence value), and ranks by any aggregator.  Exponential — intended
for graphs of at most ~20 vertices, where it certifies the outputs of all
the polynomial and heuristic solvers.

The connected-subgraph enumeration is the classic recursive scheme with a
"banned" set: each connected subgraph whose minimum vertex is ``v`` is
generated exactly once by growing from ``v`` and forbidding re-consideration
of rejected extension vertices along each branch.
"""

from __future__ import annotations

from typing import Iterator

from repro.aggregators.base import Aggregator
from repro.aggregators.registry import get_aggregator
from repro.errors import SolverError
from repro.graphs.graph import Graph
from repro.influential.community import Community, community_from_vertices
from repro.influential.results import ResultSet

#: Enumeration guard: graphs larger than this are refused outright.
MAX_BRUTE_FORCE_VERTICES = 24


def enumerate_connected_subgraphs(
    graph: Graph, max_size: int | None = None
) -> Iterator[frozenset[int]]:
    """Yield every connected induced subgraph (as a vertex set) exactly once.

    Subgraphs are grown from their minimum vertex; vertices below the root
    are never added, and extension candidates rejected at one branch are
    banned in all deeper branches, which guarantees uniqueness.
    """
    if graph.n > MAX_BRUTE_FORCE_VERTICES:
        raise SolverError(
            f"refusing brute-force enumeration on {graph.n} vertices "
            f"(limit {MAX_BRUTE_FORCE_VERTICES})"
        )
    adj = graph.adjacency
    bound = max_size if max_size is not None else graph.n
    if bound < 1:
        return

    def grow(
        current: set[int],
        extension: set[int],
        banned: frozenset[int],
        root: int,
    ) -> Iterator[frozenset[int]]:
        yield frozenset(current)
        if len(current) >= bound:
            return
        local_banned = set(banned)
        for u in sorted(extension):
            local_banned.add(u)
            new_extension = (extension | adj[u]) - current - local_banned
            new_extension = {w for w in new_extension if w > root}
            current.add(u)
            yield from grow(current, new_extension, frozenset(local_banned), root)
            current.discard(u)

    for root in range(graph.n):
        initial_extension = {w for w in adj[root] if w > root}
        yield from grow({root}, initial_extension, frozenset(), root)


def enumerate_connected_kcores(
    graph: Graph, k: int, max_size: int | None = None
) -> list[frozenset[int]]:
    """All connected induced subgraphs with minimum induced degree >= k."""
    adj = graph.adjacency
    result = []
    for subset in enumerate_connected_subgraphs(graph, max_size):
        if all(len(adj[v] & subset) >= k for v in subset):
            result.append(subset)
    return result


def is_maximal_community(
    graph: Graph,
    vertices: frozenset[int],
    k: int,
    aggregator: Aggregator,
    candidates: list[frozenset[int]] | None = None,
) -> bool:
    """Definition 3(3): no strict superset that is a connected k-core has
    the same influence value.

    ``candidates`` may carry a pre-computed list of all connected k-cores
    (from :func:`enumerate_connected_kcores` without a size bound) to avoid
    re-enumeration in loops.
    """
    if candidates is None:
        candidates = enumerate_connected_kcores(graph, k)
    value = aggregator.value(graph, vertices)
    for other in candidates:
        if len(other) > len(vertices) and vertices < other:
            if aggregator.value(graph, other) == value:
                return False
    return True


def bruteforce_communities(
    graph: Graph,
    k: int,
    f: "str | Aggregator",
    s: int | None = None,
    require_maximal: bool = True,
) -> list[Community]:
    """Every k-influential community, best first.

    With ``require_maximal=True`` this is the literal Definition 3 (plus
    the Definition 4 size filter when ``s`` is given — maximality is tested
    against *all* supersets, matching Definition 4's composition of
    Definition 3 with a size cap).  With ``require_maximal=False`` it is
    the candidate space of the paper's Algorithm 3 (every connected k-core
    of size <= s), useful for validating that algorithm faithfully.
    """
    aggregator = get_aggregator(f)
    all_kcores = enumerate_connected_kcores(graph, k)
    if s is not None:
        eligible = [c for c in all_kcores if len(c) <= s]
    else:
        eligible = list(all_kcores)
    communities = []
    for subset in eligible:
        if require_maximal and not is_maximal_community(
            graph, subset, k, aggregator, candidates=all_kcores
        ):
            continue
        communities.append(community_from_vertices(graph, subset, aggregator, k))
    return sorted(communities)


def bruteforce_top_r(
    graph: Graph,
    k: int,
    r: int,
    f: "str | Aggregator",
    s: int | None = None,
    require_maximal: bool = True,
) -> ResultSet:
    """Top-r slice of :func:`bruteforce_communities`."""
    return ResultSet(bruteforce_communities(graph, k, f, s, require_maximal)[:r])


def bruteforce_top_r_nonoverlapping(
    graph: Graph,
    k: int,
    r: int,
    f: "str | Aggregator",
    s: int | None = None,
    require_maximal: bool = True,
) -> ResultSet:
    """Greedy-optimal non-overlapping top-r reference.

    Definition 5 only demands pairwise disjointness; the standard reading
    (and the paper's construction) selects greedily by value.  This oracle
    does the same over the exhaustive community list, giving the expected
    output of the TONIC wrappers on small graphs.
    """
    chosen: list[Community] = []
    used: set[int] = set()
    for community in bruteforce_communities(graph, k, f, s, require_maximal):
        if len(chosen) >= r:
            break
        if not used & community.vertices:
            chosen.append(community)
            used |= community.vertices
    return ResultSet(chosen)
