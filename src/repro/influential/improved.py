"""Algorithm 2 — TIC-IMPROVED (paper Section IV.A, Theorem 6).

Best-first refinement of Algorithm 1.  A max-heap ``L`` of candidate
communities is seeded with the k-core components; each round pops the
community with the largest influence value ``Lmax``, confirms it, and
expands it by deleting one vertex at a time and re-coring (Lines 11-19).
Two prunings keep the frontier small:

* children are discarded unless they reach the value of the current r-th
  best candidate (Line 13's ``f(H) > f(Lr)``), sound by Corollary 2;
* with ``eps > 0``, any child whose value reaches the lower bound
  ``LB = (1 - eps) * f(Lmax)`` is *confirmed immediately* (Lines 16-17)
  instead of waiting to be popped, trading exactness for fewer rounds.

At ``eps = 0`` this is the paper's "Improve" configuration and is exact:
the popped maximum always dominates every unexplored candidate because
values only decrease along expansion (Corollary 2).  For ``eps > 0`` the
output satisfies Definition 8: the r-th reported value is at least
``(1 - eps)`` times the exact r-th value (Theorem 6).  Children are
de-duplicated with an incremental Zobrist hash — different deletion orders
frequently regenerate the same community — and generated through the
batched ``expand`` pass of the backend-selected engine
(:func:`repro.influential.expansion.expansion_context`): the Line 13 bound
at the start of the batch is handed to the engine as a vectorised
prefilter, and the evolving bound is still re-checked per child, so the
output is independent of the backend.  Candidates stay in the engine's
native representation (frozensets, or sorted int32 arrays under the CSR
engine of :mod:`repro.influential.expansion_csr`) until the result
boundary.

Complexity: O(r * n * (n + m)) as analysed in the paper.
"""

from __future__ import annotations

from repro.aggregators.base import Aggregator
from repro.aggregators.registry import get_aggregator
from repro.aggregators.summation import Sum
from repro.core.kcore import connected_kcore_components
from repro.errors import SolverError
from repro.graphs.backend import resolve_backend
from repro.graphs.graph import Graph
from repro.influential.community import Community
from repro.influential.expansion import (
    ChildCandidate,
    expansion_context,
    seed_candidates,
)
from repro.influential.results import ResultSet
from repro.utils.heaps import LazyMaxHeap
from repro.utils.topr import TopR
from repro.utils.zobrist import CommunityDeduper, ZobristHasher


def tic_improved(
    graph: Graph,
    k: int,
    r: int,
    f: "str | Aggregator | None" = None,
    eps: float = 0.0,
    backend: str = "auto",
    engine_pool=None,
    labels=None,
) -> ResultSet:
    """Top-r size-unconstrained communities via best-first search.

    ``eps = 0`` gives the exact "Improve" variant; ``eps > 0`` the
    "Approx" variant with the Theorem 6 guarantee (paper default 0.1).
    ``backend`` selects the expansion engine (see
    :mod:`repro.graphs.backend`); both produce identical results.
    ``engine_pool`` may carry a
    :class:`~repro.serving.engine_pool.ExpansionEnginePool` sharing seed
    components, expansion structures and the Zobrist table across queries
    (CSR backend only; a pure cache — results are unchanged).
    ``labels`` (a :class:`~repro.influential.constraints.LabelPredicate`)
    restricts the search to all-members-match communities by seeding from
    the constrained k-core — expansion is component-local, so the whole
    lattice inherits the constraint (see
    :func:`~repro.influential.expansion.seed_candidates`).
    """
    aggregator = get_aggregator(f) if f is not None else Sum()
    if not aggregator.decreases_under_removal:
        raise SolverError(
            f"Algorithm 2 requires an aggregator that decreases under vertex "
            f"removal (Corollary 2); {aggregator.name!r} does not — use local "
            f"search instead (Remark 1)"
        )
    if k < 1 or r < 1:
        raise SolverError(f"need k >= 1 and r >= 1, got k={k}, r={r}")
    if not 0.0 <= eps < 1.0:
        raise SolverError(f"approximation ratio eps must be in [0, 1), got {eps}")
    resolved = resolve_backend(backend)
    pool = engine_pool if resolved == "csr" else None

    # Lines 1-2: seed the candidate heap with the k-core components.
    # Heap payloads carry (representation, value, zobrist_key) so
    # expansion contexts can derive child values/keys incrementally.
    frontier: LazyMaxHeap[ChildCandidate] = LazyMaxHeap()
    hasher = pool.hasher if pool is not None else ZobristHasher(graph.n)
    seen = CommunityDeduper(hasher)
    # `candidate_top` tracks the r best candidate values ever generated;
    # its threshold is the paper's f(Lr) pruning bound (Line 13).
    candidate_top: TopR[float] = TopR(r, key=lambda v: v)
    for seed in seed_candidates(
        graph, k, aggregator, hasher, resolved, pool, labels=labels
    ):
        seen.add(seed.vertices, seed.key)
        frontier.push(seed.value, seed)
        candidate_top.offer(seed.value)

    results: list[ChildCandidate] = []
    confirmed: set[object] = set()

    while frontier and len(results) < r:
        value, lmax = frontier.pop()  # Line 8: best candidate
        if lmax.vertices not in confirmed:
            confirmed.add(lmax.vertices)
            results.append(lmax)
            if len(results) >= r:
                break
        lower_bound = (1.0 - eps) * value  # Line 9

        # Lines 11-19: expand Lmax by single-vertex deletions, batched.
        # The engine prefilters removals against the Line 13 bound: the
        # bound as of batch start feeds the vectorised prefilter, and the
        # live bound (candidate_top.threshold tightens as children are
        # offered) is re-read per removal; the evolving bound is still
        # applied per child below.
        context = expansion_context(
            graph, lmax.vertices, k, aggregator, value, hasher,
            lmax.key, backend=resolved, pool=pool,
        )
        prune_at = candidate_top.threshold()
        for child in context.expand(candidate_top.threshold):
            # Line 13: prune strictly-dominated children — strictly
            # below the r-th candidate value they can never place.
            if candidate_top.is_full and child.value < prune_at:
                continue
            if not seen.add(child.vertices, child.key):
                continue
            candidate_top.offer(child.value)
            prune_at = candidate_top.threshold()
            # Lines 16-17: eps-confirmation of near-maximal children.
            if (
                eps > 0.0
                and child.value >= lower_bound
                and len(results) < r
                and child.vertices not in confirmed
            ):
                confirmed.add(child.vertices)
                results.append(child)
            frontier.push(child.value, child)
        if eps > 0.0 and len(results) >= r:
            break
    return ResultSet(
        candidate.to_community(aggregator.name, k)
        for candidate in results[:r]
    )


def peel_below_average(
    graph: Graph,
    k: int,
    r: int,
    max_rounds: int = 64,
) -> ResultSet:
    """Extension heuristic for the (NP-hard) unconstrained avg problem.

    Not part of the paper's algorithm suite (its future-work section notes
    the unconstrained NP-hard cases are open); included as a documented
    extension: repeatedly delete the vertex with the lowest weight from
    the current best component while the average improves, re-coring after
    each deletion, and keep the best r intermediate components seen.

    Component weight sums are carried incrementally down the peel: the
    current community's sum is inherited from the child sum computed when
    it was selected, so each round sums each fresh child exactly once
    instead of re-walking the current community and the winning child.
    """
    from repro.aggregators.average import Average

    aggregator = Average()
    top: TopR[Community] = TopR(r, key=lambda c: c.value)
    seen: set[frozenset[int]] = set()
    components = connected_kcore_components(graph, range(graph.n), k)
    weights = graph.weights
    for component in components:
        current = set(component)
        current_sum = sum(float(weights[v]) for v in sorted(current))
        for __ in range(max_rounds):
            average = current_sum / len(current)
            vertices = frozenset(current)
            if vertices not in seen:
                seen.add(vertices)
                top.offer(Community(vertices, average, aggregator.name, k))
            if len(current) <= k + 1:
                break
            lightest = min(current, key=lambda v: (weights[v], v))
            candidate = set(current)
            candidate.discard(lightest)
            children = connected_kcore_components(graph, candidate, k)
            if not children:
                break
            # Follow the child with the best average; each child is summed
            # once and the winner's sum seeds the next round.
            best_child: set[int] | None = None
            best_sum = 0.0
            best_average = float("-inf")
            for child in children:
                child_sum = sum(float(weights[v]) for v in sorted(child))
                child_average = child_sum / len(child)
                if child_average > best_average:
                    best_child, best_sum = child, child_sum
                    best_average = child_average
            if best_child is None or best_average <= average:
                break
            current, current_sum = set(best_child), best_sum
    return ResultSet(top.ranked())
