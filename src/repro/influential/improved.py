"""Algorithm 2 — TIC-IMPROVED (paper Section IV.A, Theorem 6).

Best-first refinement of Algorithm 1.  A max-heap ``L`` of candidate
communities is seeded with the k-core components; each round pops the
community with the largest influence value ``Lmax``, confirms it, and
expands it by deleting one vertex at a time and re-coring (Lines 11-19).
Two prunings keep the frontier small:

* children are discarded unless they reach the value of the current r-th
  best candidate (Line 13's ``f(H) > f(Lr)``), sound by Corollary 2;
* with ``eps > 0``, any child whose value reaches the lower bound
  ``LB = (1 - eps) * f(Lmax)`` is *confirmed immediately* (Lines 16-17)
  instead of waiting to be popped, trading exactness for fewer rounds.

At ``eps = 0`` this is the paper's "Improve" configuration and is exact:
the popped maximum always dominates every unexplored candidate because
values only decrease along expansion (Corollary 2).  For ``eps > 0`` the
output satisfies Definition 8: the r-th reported value is at least
``(1 - eps)`` times the exact r-th value (Theorem 6).  Children are
de-duplicated with an incremental Zobrist hash — different deletion orders
frequently regenerate the same community — and generated through the
articulation-aware fast path of :mod:`repro.influential.expansion`.

Complexity: O(r * n * (n + m)) as analysed in the paper.
"""

from __future__ import annotations

from repro.aggregators.base import Aggregator
from repro.aggregators.registry import get_aggregator
from repro.aggregators.summation import Sum
from repro.core.kcore import connected_kcore_components
from repro.errors import SolverError
from repro.graphs.graph import Graph
from repro.influential.community import Community, community_from_vertices
from repro.influential.expansion import ExpansionContext
from repro.influential.results import ResultSet
from repro.utils.heaps import LazyMaxHeap
from repro.utils.topr import TopR
from repro.utils.zobrist import CommunityDeduper, ZobristHasher


def tic_improved(
    graph: Graph,
    k: int,
    r: int,
    f: "str | Aggregator | None" = None,
    eps: float = 0.0,
) -> ResultSet:
    """Top-r size-unconstrained communities via best-first search.

    ``eps = 0`` gives the exact "Improve" variant; ``eps > 0`` the
    "Approx" variant with the Theorem 6 guarantee (paper default 0.1).
    """
    aggregator = get_aggregator(f) if f is not None else Sum()
    if not aggregator.decreases_under_removal:
        raise SolverError(
            f"Algorithm 2 requires an aggregator that decreases under vertex "
            f"removal (Corollary 2); {aggregator.name!r} does not — use local "
            f"search instead (Remark 1)"
        )
    if k < 1 or r < 1:
        raise SolverError(f"need k >= 1 and r >= 1, got k={k}, r={r}")
    if not 0.0 <= eps < 1.0:
        raise SolverError(f"approximation ratio eps must be in [0, 1), got {eps}")

    # Lines 1-2: seed the candidate heap with the k-core components.
    # Heap payloads carry (community, zobrist_key) so expansion contexts
    # can derive child keys incrementally.
    frontier: LazyMaxHeap[tuple[Community, int]] = LazyMaxHeap()
    hasher = ZobristHasher(graph.n)
    seen = CommunityDeduper(hasher)
    # `candidate_top` tracks the r best candidate values ever generated;
    # its threshold is the paper's f(Lr) pruning bound (Line 13).
    candidate_top: TopR[float] = TopR(r, key=lambda v: v)
    for component in connected_kcore_components(graph, range(graph.n), k):
        community = community_from_vertices(graph, component, aggregator, k)
        key = hasher.hash_set(community.vertices)
        seen.add(community.vertices, key)
        frontier.push(community.value, (community, key))
        candidate_top.offer(community.value)

    results: list[Community] = []
    confirmed: set[frozenset[int]] = set()

    while frontier and len(results) < r:
        value, (lmax, lmax_key) = frontier.pop()  # Line 8: best candidate
        if lmax.vertices not in confirmed:
            confirmed.add(lmax.vertices)
            results.append(lmax)
            if len(results) >= r:
                break
        lower_bound = (1.0 - eps) * value  # Line 9

        # Lines 11-19: expand Lmax by single-vertex deletions.
        context = ExpansionContext(
            graph, lmax.vertices, k, aggregator, value, hasher, lmax_key
        )
        prune_at = candidate_top.threshold()
        for vertex in lmax.members():
            # Weight-based pre-skip: if even the cheapest possible child
            # (losing only this vertex) falls below the pruning bound,
            # no child of this removal can place — skip generating them.
            if (
                candidate_top.is_full
                and value - context.min_removal_loss(vertex) < prune_at
            ):
                continue
            for child in context.children_after_removal(vertex):
                # Line 13: prune strictly-dominated children — strictly
                # below the r-th candidate value they can never place.
                if candidate_top.is_full and child.value < prune_at:
                    continue
                if not seen.add(child.vertices, child.key):
                    continue
                community = Community(
                    child.vertices, child.value, aggregator.name, k
                )
                candidate_top.offer(child.value)
                prune_at = candidate_top.threshold()
                # Lines 16-17: eps-confirmation of near-maximal children.
                if (
                    eps > 0.0
                    and child.value >= lower_bound
                    and len(results) < r
                    and child.vertices not in confirmed
                ):
                    confirmed.add(child.vertices)
                    results.append(community)
                frontier.push(child.value, (community, child.key))
        if eps > 0.0 and len(results) >= r:
            break
    return ResultSet(results[:r])


def peel_below_average(
    graph: Graph,
    k: int,
    r: int,
    max_rounds: int = 64,
) -> ResultSet:
    """Extension heuristic for the (NP-hard) unconstrained avg problem.

    Not part of the paper's algorithm suite (its future-work section notes
    the unconstrained NP-hard cases are open); included as a documented
    extension: repeatedly delete the vertex with the lowest weight from
    the current best component while the average improves, re-coring after
    each deletion, and keep the best r intermediate components seen.
    """
    from repro.aggregators.average import Average

    aggregator = Average()
    top: TopR[Community] = TopR(r, key=lambda c: c.value)
    seen: set[frozenset[int]] = set()
    components = connected_kcore_components(graph, range(graph.n), k)
    weights = graph.weights
    for component in components:
        current = set(component)
        for __ in range(max_rounds):
            community = community_from_vertices(graph, current, aggregator, k)
            if community.vertices not in seen:
                seen.add(community.vertices)
                top.offer(community)
            if len(current) <= k + 1:
                break
            lightest = min(current, key=lambda v: (weights[v], v))
            candidate = set(current)
            candidate.discard(lightest)
            children = connected_kcore_components(graph, candidate, k)
            if not children:
                break
            # Follow the child with the best average.
            best_child = max(
                children, key=lambda c: sum(weights[v] for v in c) / len(c)
            )
            if sum(weights[v] for v in best_child) / len(best_child) <= (
                community.value
            ):
                break
            current = set(best_child)
    return ResultSet(top.ranked())
