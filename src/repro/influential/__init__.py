"""The paper's primary contribution: top-r influential community search.

Solvers:

* :func:`~repro.influential.naive_sum.sum_naive` — Algorithm 1 (SUM-NAIVE);
* :func:`~repro.influential.improved.tic_improved` — Algorithm 2
  (TIC-IMPROVED), exact at ``eps=0`` and (1-eps)-approximate otherwise;
* :func:`~repro.influential.exact.tic_exact` — Algorithm 3 (TIC-EXACT);
* :func:`~repro.influential.local_search.local_search` — Algorithm 4 with
  the Sum/Avg strategies and greedy/random orders;
* :mod:`~repro.influential.minmax_solvers` — the polynomial min/max
  baselines of prior work;
* :mod:`~repro.influential.nonoverlap` — TONIC (Definition 5) wrappers;
* :mod:`~repro.influential.bruteforce` — the exhaustive test oracle.

:func:`~repro.influential.api.top_r_communities` dispatches among them
based on the aggregator's properties and the problem spec, mirroring the
paper's Table I.
"""

from repro.influential.api import top_r_communities, top_r_many
from repro.influential.community import Community, community_from_vertices
from repro.influential.results import ResultSet
from repro.influential.spec import ProblemSpec

__all__ = [
    "Community",
    "ProblemSpec",
    "ResultSet",
    "community_from_vertices",
    "top_r_communities",
    "top_r_many",
]
