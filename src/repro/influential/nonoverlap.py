"""Non-overlapping (TONIC) community search — Problem 2 / Definition 5.

Three mechanisms cover the aggregator landscape:

* **sum, unconstrained** — the k-core components are already pairwise
  disjoint and, under a size-proportional aggregator, every community is a
  subset of a component with no greater value; the paper's observation
  that "we merely execute Lines 1-3 of Algorithm 2" amounts to returning
  the top-r components (:func:`tonic_sum_unconstrained`).
* **enumerable families (min/max)** — greedy disjoint selection over the
  full community family by descending value (:func:`greedy_disjoint`).
* **heuristic extraction** — for NP-hard cases, the local search's
  accept-and-remove mode (already in
  :func:`repro.influential.local_search.local_search`) or generic repeated
  top-1-then-delete extraction (:func:`tonic_extract`).
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.aggregators.base import Aggregator
from repro.aggregators.registry import get_aggregator
from repro.core.kcore import connected_kcore_components, kcore_of_subset
from repro.errors import SolverError
from repro.graphs.graph import Graph
from repro.influential.community import Community, community_from_vertices
from repro.influential.results import ResultSet
from repro.utils.topr import TopR


def greedy_disjoint(communities: Iterable[Community], r: int) -> ResultSet:
    """Best-first greedy selection of pairwise-disjoint communities.

    The standard realisation of Definition 5: scan candidates by
    descending value and keep each one that shares no vertex with anything
    already kept, stopping at r.
    """
    if r < 1:
        raise SolverError(f"need r >= 1, got {r}")
    chosen: list[Community] = []
    used: set[int] = set()
    for community in sorted(communities):
        if len(chosen) >= r:
            break
        if not used & community.vertices:
            chosen.append(community)
            used |= community.vertices
    return ResultSet(chosen)


def tonic_sum_unconstrained(
    graph: Graph, k: int, r: int, f: "str | Aggregator | None" = None
) -> ResultSet:
    """Top-r non-overlapping communities for size-proportional aggregators.

    Exact and near-linear: under Definition 7 every connected k-core is
    dominated by the k-core component containing it, and the components
    are disjoint by construction, so the top-r components are an optimal
    disjoint family (the paper's Lines 1-3 shortcut).
    """
    aggregator = get_aggregator(f) if f is not None else get_aggregator("sum")
    if not aggregator.is_size_proportional:
        raise SolverError(
            f"the component shortcut needs a size-proportional aggregator "
            f"(Definition 7); {aggregator.name!r} is not — use tonic_extract"
        )
    if k < 1 or r < 1:
        raise SolverError(f"need k >= 1 and r >= 1, got k={k}, r={r}")
    top: TopR[Community] = TopR(r, key=lambda c: c.value)
    for component in connected_kcore_components(graph, range(graph.n), k):
        top.offer(community_from_vertices(graph, component, aggregator, k))
    return ResultSet(top.ranked())


def tonic_extract(
    graph: Graph,
    k: int,
    r: int,
    top1_solver: Callable[[Graph, set[int]], Community | None],
) -> ResultSet:
    """Generic repeated extraction: top-1 on the remaining graph, delete,
    repeat until r communities or exhaustion.

    ``top1_solver(graph, alive)`` must return the best community within
    the (already k-cored) ``alive`` set, or None when none exists.  This
    is the scheme the paper sketches for running any solver in
    non-overlapping mode.
    """
    if k < 1 or r < 1:
        raise SolverError(f"need k >= 1 and r >= 1, got k={k}, r={r}")
    alive = kcore_of_subset(graph, range(graph.n), k)
    results: list[Community] = []
    while len(results) < r and alive:
        best = top1_solver(graph, alive)
        if best is None:
            break
        if best.vertices - alive:
            raise SolverError(
                "top1_solver returned a community outside the alive set"
            )
        results.append(best)
        alive -= best.vertices
        alive = kcore_of_subset(graph, alive, k)
    return ResultSet(results)
