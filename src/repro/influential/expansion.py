"""Fast single-vertex expansion of candidate communities.

Algorithms 1 and 2 share one hot operation: given a connected k-core
component ``C``, compute the connected k-core components of ``C \\ {v}``
for every ``v`` (the "children" of ``C`` in the search lattice).  Done
naively this is O(|C| * (|C| + |E(C)|)) per expansion because each child
re-cores and re-splits from scratch.

:class:`ExpansionContext` precomputes, once per component:

* the component-local adjacency (children are always subsets of ``C``, so
  the global graph never needs to be consulted again);
* induced degrees;
* the articulation vertices of ``G[C]`` (iterative Tarjan).

Then most removals take the fast path: if no neighbour of ``v`` has
induced degree exactly k (nothing cascades) and ``v`` is not an
articulation vertex (the remainder stays connected), the single child is
literally ``C - {v}`` — one C-level set copy instead of a Python BFS.
Otherwise a localised cascade runs on a copied degree map and only then is
the survivor set split by BFS.

Influence values and Zobrist hashes are carried *incrementally*: a child's
value is the parent's minus the removed weight (sum family) and its hash is
the parent's XORed with the removed tokens, so neither costs a walk over
the child.  ``min_removal_loss`` additionally gives solvers a lower bound
on the value lost by deleting a vertex, letting them skip generating
children that cannot beat the current pruning threshold.

This module is the *set engine* and the shared vocabulary
(:class:`ChildCandidate`, the value/representation helpers, the
:func:`expansion_context` factory).  Its array twin is
:mod:`repro.influential.expansion_csr`, which runs the same lattice
expansion over a component-local CSR; the factory picks between them via
the ``backend=`` switch, and the parity property suite keeps the two
bit-identical — the set engine is the oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.aggregators.base import Aggregator
from repro.graphs.backend import resolve_backend
from repro.graphs.graph import Graph
from repro.influential.community import Community
from repro.utils.zobrist import ZobristHasher


def sum_alpha_of(aggregator: Aggregator) -> float | None:
    """Per-vertex surcharge of a sum-family aggregator, or None.

    ``0.0`` for plain sum, the aggregator's alpha for sum-surplus, None for
    everything else (no cheap incremental value update exists).
    """
    if aggregator.name == "sum":
        return 0.0
    if aggregator.name.startswith("sum-surplus"):
        return float(getattr(aggregator, "alpha", 0.0))
    return None


def removal_loss(weights, removed_sorted) -> float:
    """Total weight of ``removed_sorted`` by sequential accumulation in
    ascending vertex order.

    Both expansion backends compute child values through this one helper so
    the floating-point rounding — and therefore every downstream value
    comparison and result set — is bit-identical across backends.
    """
    total = 0.0
    for u in removed_sorted:
        total += float(weights[u])
    return total


def members_frozenset(members) -> frozenset[int]:
    """Plain-int frozenset view of either community representation
    (``frozenset`` from the set backend, ``MemberArray`` from the CSR
    backend)."""
    if isinstance(members, frozenset):
        return members
    return members.to_frozenset()


@dataclass(frozen=True)
class ChildCandidate:
    """One expansion product: vertex set, influence value, Zobrist hash.

    ``vertices`` is a ``frozenset`` under the set backend and a sorted
    int32 :class:`~repro.influential.expansion_csr.MemberArray` under the
    CSR backend; both are hashable and equality-comparable, so solvers
    treat them uniformly and only convert at the result boundary via
    :meth:`to_community`.
    """

    vertices: "frozenset[int] | object"
    value: float
    key: int

    def to_community(self, aggregator_name: str, k: int) -> Community:
        """The frozenset-backed result object (the boundary conversion)."""
        return Community(
            members_frozenset(self.vertices), self.value, aggregator_name, k
        )


class ExpansionContext:
    """Per-component state for fast child generation.

    ``parent_value`` is ``f(component)`` and ``parent_key`` its Zobrist
    hash; both are updated incrementally into every child.
    """

    __slots__ = (
        "graph",
        "k",
        "component",
        "aggregator",
        "parent_value",
        "parent_key",
        "hasher",
        "local_adj",
        "degree",
        "articulation",
        "weights",
        "_sum_alpha",
    )

    def __init__(
        self,
        graph: Graph,
        component: frozenset[int],
        k: int,
        aggregator: Aggregator,
        parent_value: float,
        hasher: ZobristHasher,
        parent_key: int | None = None,
    ) -> None:
        self.graph = graph
        self.k = k
        self.component = component
        self.aggregator = aggregator
        self.parent_value = parent_value
        self.hasher = hasher
        self.parent_key = (
            parent_key if parent_key is not None else hasher.hash_set(component)
        )
        adj = graph.adjacency
        self.local_adj = {v: adj[v] & component for v in component}
        self.degree = {v: len(neigh) for v, neigh in self.local_adj.items()}
        self.articulation = _articulation_vertices(self.local_adj)
        self.weights = graph.weights
        # Sum-family detection for incremental values: alpha is the
        # per-vertex surcharge (0 for plain sum, None for non-sum-family).
        self._sum_alpha = sum_alpha_of(aggregator)

    def min_removal_loss(self, v: int) -> float:
        """A lower bound on ``f(component) - f(child)`` over all children
        produced by removing ``v``.

        For the sum family the loss is at least the removed vertex's own
        contribution; for other aggregators no cheap bound exists (return
        0, i.e. never skip).
        """
        if self._sum_alpha is None:
            return 0.0
        return float(self.weights[v]) + self._sum_alpha

    def _value_of(self, child: frozenset[int], removed: set[int]) -> float:
        """Child influence value, incrementally for the sum family.

        Non-incremental evaluation walks the members in ascending id order
        (not frozenset order) so both engines sum in the same sequence and
        return bit-identical floats.
        """
        if self._sum_alpha is None:
            return self.aggregator.value(self.graph, sorted(child))
        lost = removal_loss(self.weights, sorted(removed))
        return self.parent_value - lost - self._sum_alpha * len(removed)

    def _key_of(self, removed: set[int]) -> int:
        """Child Zobrist key: parent key XOR removed tokens."""
        key = self.parent_key
        hasher = self.hasher
        for u in removed:
            key = hasher.toggle(key, u)
        return key

    def expand(self, floor=float("-inf")) -> Iterator[ChildCandidate]:
        """All children of the component, one removal at a time.

        Vertices are visited in ascending id order; per vertex, children
        come out in the order of :meth:`children_after_removal`.  ``floor``
        is a value prefilter: removals whose cheapest possible child
        (:meth:`min_removal_loss`) already falls below it generate nothing.
        It may be a float or a zero-argument callable (e.g. the bound
        method ``TopR.threshold``) — a callable is re-read per removal, so
        a threshold that tightens while children are consumed keeps
        pruning mid-batch.  A callable floor must be non-decreasing across
        calls (pruning bounds only tighten): the CSR engine prefilters the
        whole batch against the first reading, so a floor that later
        *dropped* would prune differently there.  The floor is
        conservative either way; callers must still re-check each child
        against their current bound.
        """
        floor_now = floor if callable(floor) else (lambda: floor)
        parent_value = self.parent_value
        for v in sorted(self.component):
            if parent_value - self.min_removal_loss(v) < floor_now():
                continue
            yield from self.children_after_removal(v)

    def children_after_removal(self, v: int) -> list[ChildCandidate]:
        """Connected k-core components of ``component - {v}`` with values."""
        component, k = self.component, self.k
        weak = [u for u in self.local_adj[v] if self.degree[u] == k]
        if not weak and v not in self.articulation:
            # Fast path: no cascade, still connected.
            if len(component) - 1 <= k:
                return []
            child = component - {v}
            removed = {v}
            return [
                ChildCandidate(child, self._value_of(child, removed),
                               self._key_of(removed))
            ]
        # Slow path: localised cascade on a copied degree map.
        degree = self.degree.copy()
        removed = {v}
        stack = [v]
        local_adj = self.local_adj
        while stack:
            x = stack.pop()
            for u in local_adj[x]:
                if u in removed:
                    continue
                degree[u] -= 1
                if degree[u] < k:
                    removed.add(u)
                    stack.append(u)
        survivors = component - removed
        if len(survivors) <= k:
            return []
        pieces = _split_components(local_adj, survivors)
        children = []
        for piece in pieces:
            piece_removed = removed if len(pieces) == 1 else set(component - piece)
            children.append(
                ChildCandidate(
                    piece,
                    self._value_of(piece, piece_removed),
                    self._key_of(piece_removed),
                )
            )
        return children


def community_members(
    vertices: Iterable[int], hasher: ZobristHasher, backend: str = "auto"
) -> tuple[object, int]:
    """Backend-appropriate community representation plus its Zobrist key.

    ``frozenset`` under the set backend, a sorted int32
    :class:`~repro.influential.expansion_csr.MemberArray` under CSR.  Both
    are hashable with Zobrist-consistent keys, so solver bookkeeping
    (dedupers, confirmed sets, expansion maps) is representation-agnostic.
    """
    if resolve_backend(backend) == "csr":
        from repro.influential.expansion_csr import MemberArray

        members = MemberArray.from_iterable(vertices, hasher)
        return members, members.key
    members = frozenset(vertices)
    return members, hasher.hash_set(members)


def expansion_context(
    graph: Graph,
    members,
    k: int,
    aggregator: Aggregator,
    parent_value: float,
    hasher: ZobristHasher,
    parent_key: int | None = None,
    backend: str = "auto",
    pool=None,
):
    """Build the expansion engine for ``members`` on the resolved backend.

    ``members`` may be either representation; it is normalised to what the
    chosen engine expects, so solvers can hand over whatever they carry.
    Returns :class:`ExpansionContext` (set) or
    :class:`~repro.influential.expansion_csr.CSRExpansionContext` (csr);
    the two expose the same ``expand`` / ``children_after_removal`` /
    ``min_removal_loss`` surface and produce bit-identical children.

    ``pool`` may carry a
    :class:`~repro.serving.engine_pool.ExpansionEnginePool`: on the CSR
    backend the pool supplies (and caches across queries) the
    query-independent :class:`~repro.influential.expansion_csr
    .ComponentStructure`, so repeated pops of the same community — within
    one query or across a served batch — skip the relabelling.  The set
    backend ignores it.
    """
    if resolve_backend(backend) == "csr":
        from repro.influential.expansion_csr import CSRExpansionContext

        structure = None
        if pool is not None:
            structure = pool.structure_for(members, k)
        return CSRExpansionContext(
            graph, members, k, aggregator, parent_value, hasher, parent_key,
            structure=structure,
        )
    return ExpansionContext(
        graph,
        members_frozenset(members),
        k,
        aggregator,
        parent_value,
        hasher,
        parent_key,
    )


def seed_candidates(
    graph: Graph,
    k: int,
    aggregator: Aggregator,
    hasher: ZobristHasher,
    backend: str = "auto",
    pool=None,
    labels=None,
) -> Iterator[ChildCandidate]:
    """The Lines-1-2 seeds of Algorithms 1 and 2: every connected component
    of the maximal k-core, as a :class:`ChildCandidate`.

    With ``pool`` set (and the CSR backend) the per-k component split is
    served from the pool's cached core decomposition instead of re-peeling
    the whole graph, and members arrive as already-hashed
    :class:`~repro.influential.expansion_csr.MemberArray` seeds.  Both
    paths emit components in smallest-member order and evaluate the
    aggregator over ascending member ids, so seed values (and every float
    derived from them) are bit-identical.

    ``labels`` (a :class:`~repro.influential.constraints.LabelPredicate`)
    restricts seeding to the maximal k-core *of the induced subgraph of
    matching vertices* — the constrained-query pushdown.  Because every
    expansion step is component-local, children of a constrained seed
    keep the all-members-match invariant, so pruning here, before any
    expansion, is equivalent to solving on ``G[matching]`` (and therefore
    to post-filtering) without paying a subgraph materialisation.
    """
    from repro.core.kcore import connected_kcore_components

    if labels is None:
        if pool is not None and resolve_backend(backend) == "csr":
            for members in pool.seed_members(k):
                value = aggregator.value(graph, members.ids.tolist())
                yield ChildCandidate(members, value, members.key)
            return
        for component in connected_kcore_components(
            graph, range(graph.n), k, backend=backend
        ):
            members, key = community_members(component, hasher, backend)
            # Ascending member order keeps the float summation sequence —
            # and therefore the seed values — identical across backends.
            value = aggregator.value(graph, sorted(component))
            yield ChildCandidate(members, value, key)
        return

    if pool is not None and resolve_backend(backend) == "csr":
        for members in pool.constrained_seed_members(k, labels):
            value = aggregator.value(graph, members.ids.tolist())
            yield ChildCandidate(members, value, members.key)
        return
    from repro.influential.constraints import matching_mask

    matching = [int(v) for v in np.flatnonzero(matching_mask(graph, labels))]
    for component in connected_kcore_components(
        graph, matching, k, backend=backend
    ):
        members, key = community_members(component, hasher, backend)
        value = aggregator.value(graph, sorted(component))
        yield ChildCandidate(members, value, key)


def _split_components(
    local_adj: dict[int, set[int]], survivors: set[int]
) -> list[frozenset[int]]:
    """Connected components of the survivor set under component-local
    adjacency, ordered by smallest member."""
    remaining = set(survivors)
    components: list[frozenset[int]] = []
    while remaining:
        seed = next(iter(remaining))
        remaining.discard(seed)
        stack = [seed]
        members = {seed}
        while stack:
            u = stack.pop()
            for w in local_adj[u] & remaining:
                remaining.discard(w)
                members.add(w)
                stack.append(w)
        components.append(frozenset(members))
    components.sort(key=min)
    return components


def _articulation_vertices(local_adj: dict[int, set[int]]) -> set[int]:
    """Articulation (cut) vertices of the graph given by ``local_adj``.

    Iterative Tarjan lowpoint algorithm — recursion-free because component
    sizes reach thousands and CPython's stack does not.
    """
    visited: set[int] = set()
    depth: dict[int, int] = {}
    low: dict[int, int] = {}
    articulation: set[int] = set()
    for root in local_adj:
        if root in visited:
            continue
        root_children = 0
        # Each frame: (vertex, parent, iterator over neighbours).
        stack = [(root, None, iter(local_adj[root]))]
        visited.add(root)
        depth[root] = 0
        low[root] = 0
        while stack:
            v, parent, neighbours = stack[-1]
            advanced = False
            for u in neighbours:
                if u == parent:
                    continue
                if u in visited:
                    if depth[u] < low[v]:
                        low[v] = depth[u]
                else:
                    visited.add(u)
                    depth[u] = depth[v] + 1
                    low[u] = depth[u]
                    if v == root:
                        root_children += 1
                    stack.append((u, v, iter(local_adj[u])))
                    advanced = True
                    break
            if advanced:
                continue
            stack.pop()
            if parent is not None:
                if low[v] < low[parent]:
                    low[parent] = low[v]
                if parent != root and low[v] >= depth[parent]:
                    articulation.add(parent)
        if root_children > 1:
            articulation.add(root)
    return articulation
