"""Algorithm 1 — SUM-NAIVE (paper Section IV.A).

The baseline polynomial algorithm for the size-unconstrained top-r problem
under size-proportional aggregators (sum, sum-surplus):

1. compute the disjoint connected components of the maximal k-core — these
   are the best candidates (Lines 1-2);
2. repeatedly try to delete each vertex from every current top-r community
   containing it, re-core the remainder, and merge the resulting components
   back into the top-r list (Lines 3-10).

Correctness rests on Corollary 2: under sum (non-negative weights) every
removal strictly lowers the value, so a community outside the current
top-r can be pruned together with all its subgraphs (Theorem 5).  The
paper writes the outer loop as a single pass ``for i <- 1 to |V|`` over an
evolving list; we run that pass to a fixpoint — once a full sweep changes
nothing, no candidate generated from any retained community can enter the
top-r, which is exactly the Theorem 5 argument (DESIGN.md Section 5).  The
vertex/community loops are interchanged (equivalent per sweep) so each
community's expansion context is built once, and children are generated
through the batched ``expand`` pass of the backend-selected engine
(:func:`repro.influential.expansion.expansion_context`): dict/set walks
under ``backend="set"``, the flat-array CSR engine of
:mod:`repro.influential.expansion_csr` under ``backend="csr"``.  Candidate
communities stay in the engine's native representation (frozensets or
sorted int32 arrays) until the result boundary.

Complexity: O(n * r * (n + m)) per sweep, as analysed in the paper — the
point of this baseline is to lose to Algorithm 2, which expands only the
communities that can still influence the answer.
"""

from __future__ import annotations

from repro.aggregators.base import Aggregator
from repro.aggregators.registry import get_aggregator
from repro.aggregators.summation import Sum
from repro.errors import SolverError
from repro.graphs.backend import resolve_backend
from repro.graphs.graph import Graph
from repro.influential.expansion import (
    ChildCandidate,
    expansion_context,
    seed_candidates,
)
from repro.influential.results import ResultSet
from repro.utils.topr import TopR
from repro.utils.zobrist import CommunityDeduper, ZobristHasher


def sum_naive(
    graph: Graph,
    k: int,
    r: int,
    f: "str | Aggregator | None" = None,
    max_sweeps: int | None = None,
    backend: str = "auto",
    engine_pool=None,
    labels=None,
) -> ResultSet:
    """Top-r size-unconstrained k-influential communities (Algorithm 1).

    ``f`` defaults to sum; any decreasing-under-removal aggregator works
    (the paper's Discussion paragraph names sum-surplus).  ``max_sweeps``
    caps the fixpoint iteration for diagnostics; None runs to convergence.
    ``backend`` selects the expansion engine (see
    :mod:`repro.graphs.backend`); both produce identical results.
    ``engine_pool`` may carry a
    :class:`~repro.serving.engine_pool.ExpansionEnginePool` sharing seed
    components, expansion structures and the Zobrist table across queries
    (CSR backend only; a pure cache — results are unchanged).
    ``labels`` restricts the search to all-members-match communities by
    seeding from the constrained k-core (see
    :func:`~repro.influential.expansion.seed_candidates`).
    """
    aggregator = get_aggregator(f) if f is not None else Sum()
    if not aggregator.decreases_under_removal:
        raise SolverError(
            f"Algorithm 1 requires an aggregator that decreases under vertex "
            f"removal (Corollary 2); {aggregator.name!r} does not — use local "
            f"search instead (Remark 1)"
        )
    if k < 1 or r < 1:
        raise SolverError(f"need k >= 1 and r >= 1, got k={k}, r={r}")
    resolved = resolve_backend(backend)
    pool = engine_pool if resolved == "csr" else None

    # Lines 1-2: components of the maximal k-core, kept as a top-r list.
    # Candidates carry (representation, value, key) so expansion contexts
    # can derive child values and Zobrist keys incrementally.
    top: TopR[ChildCandidate] = TopR(r, key=lambda c: c.value)
    hasher = pool.hasher if pool is not None else ZobristHasher(graph.n)
    seen = CommunityDeduper(hasher)
    for seed in seed_candidates(
        graph, k, aggregator, hasher, resolved, pool, labels=labels
    ):
        seen.add(seed.vertices, seed.key)
        top.offer(seed)

    # Lines 3-10, iterated to a fixpoint.  Each sweep expands every vertex
    # of every retained community exactly once — the naive full scan.
    expanded: set[object] = set()
    sweeps = 0
    changed = True
    while changed and (max_sweeps is None or sweeps < max_sweeps):
        changed = False
        sweeps += 1
        for candidate in top.ranked():
            if candidate.vertices in expanded:
                continue
            expanded.add(candidate.vertices)
            context = expansion_context(
                graph, candidate.vertices, k, aggregator,
                candidate.value, hasher, candidate.key, backend=resolved,
                pool=pool,
            )
            for child in context.expand():
                if not seen.add(child.vertices, child.key):
                    continue
                if top.offer(child):
                    changed = True
    return ResultSet(
        candidate.to_community(aggregator.name, k)
        for candidate in top.ranked()
    )
