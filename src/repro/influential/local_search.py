"""Algorithm 4 — LOCAL SEARCH (paper Section V.B).

The heuristic for the NP-hard size-constrained problems (and, with
``s = |V|``, for the NP-hard unconstrained ones like avg):

1. restrict to the maximal k-core (Line 1);
2. for every surviving seed vertex, collect its ``s`` nearest neighbours
   by BFS — expanding to 2-hop and beyond when the immediate
   neighbourhood is too small (Line 4, and the paper's footnote);
3. greedy mode sorts that neighbourhood by descending weight (Lines 5-6);
   random mode keeps BFS discovery order;
4. a per-aggregator strategy turns the ordered set into candidate
   communities and merges them into the running top-r (Line 7);
5. return the top-r sorted by value (Lines 8-9).

The non-overlapping variant (for Problem 2 / TONIC) removes each accepted
community from the graph before continuing, exactly as the paper's
"Non-overlapping" paragraph prescribes; seeds are then visited heaviest
first so high-value regions are claimed before their vertices can be
absorbed by weaker neighbours.

Complexity: O(n * k * s^2) per the paper (plus O(s log s) sorting per seed
in greedy mode); Remark 2's caveat — local search works when the result
community's diameter is small — carries over unchanged.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.aggregators.base import Aggregator
from repro.aggregators.registry import get_aggregator
from repro.core.kcore import maximal_kcore
from repro.errors import SolverError
from repro.graphs.backend import resolve_backend
from repro.graphs.csr import membership_mask
from repro.graphs.graph import Graph
from repro.influential.community import Community
from repro.influential.results import ResultSet
from repro.influential.strategies import strategy_for
from repro.utils.rng import make_rng
from repro.utils.topr import TopR


def s_nearest_neighbors(
    graph: Graph,
    seed: int,
    s: int,
    within: set[int],
    within_mask: np.ndarray | None = None,
) -> list[int]:
    """The first ``s`` vertices (seed included) in BFS order from ``seed``.

    Traversal is restricted to ``within`` (the alive k-core).  Neighbour
    visits are sorted so the "random" strategy is still deterministic for
    a fixed graph — the randomness the paper contrasts with greedy is the
    *absence of weight sorting*, not nondeterminism.

    ``within_mask``, when provided (the CSR path of :func:`local_search`),
    is a boolean array equivalent of ``within``: the per-vertex restriction
    then becomes one vectorised filter of the already-sorted CSR neighbour
    run instead of a set intersection plus sort, visiting vertices in
    exactly the same order.
    """
    order = [seed]
    seen = {seed}
    queue = deque([seed])
    if within_mask is not None:
        csr = graph.csr
        while queue and len(order) < s:
            u = queue.popleft()
            neigh = csr.neighbors(u)
            for v in neigh[within_mask[neigh]].tolist():
                if v not in seen:
                    seen.add(v)
                    order.append(v)
                    queue.append(v)
                    if len(order) >= s:
                        break
        return order
    adj = graph.adjacency
    while queue and len(order) < s:
        u = queue.popleft()
        for v in sorted(adj[u] & within):
            if v not in seen:
                seen.add(v)
                order.append(v)
                queue.append(v)
                if len(order) >= s:
                    break
    return order


def _ordered_seeds(
    graph: Graph, alive: set[int], seed_order: str, rng_seed: int | None
) -> list[int]:
    seeds = sorted(alive)
    if seed_order == "weight":
        weights = graph.weights
        seeds.sort(key=lambda v: (-weights[v], v))
    elif seed_order == "shuffled":
        rng = make_rng(rng_seed)
        permutation = rng.permutation(len(seeds))
        seeds = [seeds[i] for i in permutation]
    elif seed_order != "id":
        raise SolverError(f"unknown seed_order {seed_order!r}")
    return seeds


def _alive_mask(graph: Graph, alive: set[int], backend: str) -> np.ndarray | None:
    """Boolean alive-set view for the CSR neighbour filter, or None for
    the set backend."""
    if resolve_backend(backend) != "csr":
        return None
    return membership_mask(graph.n, alive)


def local_search(
    graph: Graph,
    k: int,
    r: int,
    s: int,
    f: "str | Aggregator",
    greedy: bool = True,
    non_overlapping: bool = False,
    seed_order: str | None = None,
    rng_seed: int | None = None,
    backend: str = "auto",
) -> ResultSet:
    """Top-r size-constrained k-influential communities (Algorithm 4).

    ``greedy`` selects the paper's Greedy variant (descending-weight sort
    of each seed neighbourhood) versus Random (BFS order).  ``seed_order``
    controls the outer loop: ``"id"`` is the paper's ``i = 1..|V|`` and
    the default for TIC; ``"weight"`` visits heavy seeds first and is the
    default for TONIC; ``"shuffled"`` randomises with ``rng_seed``.
    ``backend`` selects the graph kernels and the neighbourhood-collection
    path; both produce identical results.
    """
    aggregator = get_aggregator(f)
    if k < 1 or r < 1:
        raise SolverError(f"need k >= 1 and r >= 1, got k={k}, r={r}")
    if s < k + 1:
        raise SolverError(
            f"size bound s={s} cannot hold a k-core (needs >= {k + 1})"
        )
    if seed_order is None:
        seed_order = "weight" if non_overlapping else "id"
    resolved = resolve_backend(backend)

    alive = maximal_kcore(graph, k, backend=resolved)  # Line 1
    seeds = _ordered_seeds(graph, alive, seed_order, rng_seed)
    strategy = strategy_for(graph, k, s, aggregator, greedy)
    weights = graph.weights

    if non_overlapping:
        return _tonic_local_search(
            graph, k, r, s, alive, seeds, strategy, greedy, resolved
        )

    alive_mask = _alive_mask(graph, alive, resolved)
    top: TopR[Community] = TopR(r, key=lambda c: c.value)
    for seed in seeds:  # Lines 2-7
        if seed not in alive:  # Line 3: "if vi is not removed"
            continue
        neighbourhood = s_nearest_neighbors(
            graph, seed, s, alive, alive_mask
        )  # Line 4
        if len(neighbourhood) <= k:
            continue
        if greedy:  # Lines 5-6
            neighbourhood.sort(key=lambda v: (-weights[v], v))
        strategy.offer_candidates(neighbourhood, top)  # Line 7
    return ResultSet(top.ranked())  # Lines 8-9


def _tonic_local_search(
    graph: Graph,
    k: int,
    r: int,
    s: int,
    alive: set[int],
    seeds: list[int],
    strategy,
    greedy: bool,
    backend: str,
) -> ResultSet:
    """Non-overlapping variant: accept-and-remove, then keep the best r.

    Each accepted community permanently claims its vertices ("we could
    remove each k-influential community once it is obtained").  Because
    acceptance is final, candidates are taken unconditionally (fresh
    single-slot accumulator per seed) rather than threshold-filtered, and
    quality comes from the heavy-seeds-first visiting order.
    """
    from repro.core.kcore import kcore_of_subset

    weights = graph.weights
    accepted: list[Community] = []
    alive_mask = _alive_mask(graph, alive, backend)
    for seed in seeds:
        if seed not in alive:
            continue
        # Re-core the survivors around this seed: removals may have left
        # vertices below degree k which must not join candidates.
        neighbourhood = s_nearest_neighbors(graph, seed, s, alive, alive_mask)
        if len(neighbourhood) <= k:
            continue
        if greedy:
            neighbourhood.sort(key=lambda v: (-weights[v], v))
        slot: TopR[Community] = TopR(1, key=lambda c: c.value)
        strategy.offer_candidates(neighbourhood, slot)
        if len(slot):
            community = slot.best()
            accepted.append(community)
            alive -= community.vertices
            alive.intersection_update(
                kcore_of_subset(graph, alive, k, backend=backend)
            )
            if alive_mask is not None:
                alive_mask = membership_mask(graph.n, alive)
    return ResultSet(sorted(accepted)[:r])
