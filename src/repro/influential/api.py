"""High-level query API: one entry point, paper-faithful dispatch.

:func:`top_r_communities` routes a query to the right algorithm the way
the paper's Table I and Sections IV-V lay it out:

===================  ==================  =====================================
problem              aggregation          algorithm
===================  ==================  =====================================
unconstrained        min / max            dedicated peel / anchor sweep
unconstrained        sum / sum-surplus    Algorithm 2 (exact at eps=0)
unconstrained        avg / densities      Algorithm 4 with s = |V| (heuristic)
size-constrained     any                  Algorithm 4 (greedy or random)
size-constrained     any (tiny graphs)    Algorithm 3 via ``method="exact"``
===================  ==================  =====================================

Non-overlapping (TONIC) requests use the disjoint-component shortcut for
size-proportional aggregators, greedy disjoint selection over the full
family for min/max, and accept-and-remove local search otherwise.

Parameter names are the paper's symbols (see ``docs/API.md`` for the
full mapping): ``k`` is the degree constraint of the connected-k-core
community model (Definition 2), ``r`` the number of communities
returned, ``f`` the aggregation function f ∈ {sum, avg, min, max,
sum-surplus_α, weight-density_β, balanced-density} applied to the
member weights, ``s`` the optional size cap |H| <= s of Problem 3,
``eps`` the ε of Algorithm 2's (1−ε)-approximate pruned search (ε = 0
is exact), and ``non_overlapping`` the TONIC variant (Problem 2).
``backend`` is not paper notation — it picks the execution engine
("csr" vectorised, "set" reference) and never changes answers.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.aggregators.base import Aggregator
from repro.errors import SolverError
from repro.graphs.backend import use_backend
from repro.graphs.graph import Graph
from repro.influential.community import Community
from repro.influential.constraints import LabelPredicate, matching_mask
from repro.influential.exact import tic_exact
from repro.influential.improved import tic_improved
from repro.influential.local_search import local_search
from repro.influential.minmax_solvers import (
    max_communities,
    min_communities,
    top_r_max,
    top_r_min,
)
from repro.influential.naive_sum import sum_naive
from repro.influential.nonoverlap import (
    greedy_disjoint,
    tonic_sum_unconstrained,
)
from repro.influential.results import ResultSet
from repro.influential.spec import ProblemSpec

#: Recognised ``method`` values.
METHODS = ("auto", "naive", "improved", "approx", "exact", "local", "bruteforce")


def top_r_communities(
    graph: Graph,
    k: int,
    r: int,
    f: "str | Aggregator" = "sum",
    s: int | None = None,
    method: str = "auto",
    eps: float = 0.0,
    non_overlapping: bool = False,
    greedy: bool = True,
    seed_order: str | None = None,
    rng_seed: int | None = None,
    backend: str = "auto",
    engine_pool=None,
    labels=None,
) -> ResultSet:
    """Find the top-r (non-overlapping) (size-constrained) communities.

    Parameters mirror the paper: degree constraint ``k``, output count
    ``r``, aggregation function ``f`` (name or instance), optional size
    constraint ``s``, approximation ratio ``eps`` (only used by the
    Approx method), ``non_overlapping`` for Problem 2, and ``greedy``
    selecting the local-search variant.  ``method`` forces a specific
    algorithm; ``"auto"`` follows the dispatch table above.

    ``backend`` selects the graph-kernel backend ("set" or "csr"; "auto"
    keeps the ambient default) for every kernel the chosen solver runs —
    see :mod:`repro.graphs.backend` — including the candidate-expansion
    engine of Algorithms 1 and 2 (:mod:`repro.influential.expansion` vs
    :mod:`repro.influential.expansion_csr`).  Both backends return
    identical results; "set" exists for parity checking and debugging.

    Degenerate-but-well-posed queries return empty result sets rather
    than raising: a graph with no vertices, or ``k >= |V|`` (no induced
    subgraph can reach minimum degree k), short-circuit to an empty
    :class:`ResultSet` before any solver runs.  Malformed *specs* (k or r
    below 1, infeasible or oversized ``s`` on a non-degenerate graph,
    unknown methods) still raise.

    ``engine_pool`` optionally carries a
    :class:`~repro.serving.engine_pool.ExpansionEnginePool` of shared
    expansion state (seed components, relabelled local CSRs, Zobrist
    tables); :class:`~repro.serving.service.QueryService` threads one
    through every query it serves.  Pools are pure caches — results are
    byte-identical with or without one.

    ``labels`` optionally constrains the answer to communities whose
    members *all* match a label predicate (a
    :class:`~repro.influential.constraints.LabelPredicate`, or any wire
    shape its ``from_json`` accepts: ``"x"``, ``["a", "b"]``,
    ``{"eq"|"any"|"prefix": ...}``).  The constrained problem equals the
    unconstrained one on the induced subgraph of matching vertices —
    expansion-family solvers prune at the seed-component filter without
    materialising it; every other route solves on the materialised
    subgraph and maps ids back.  Requires a labeled graph
    (:class:`~repro.errors.SpecError` otherwise).
    """
    spec = ProblemSpec.create(
        k, r, f, s, non_overlapping, labels=LabelPredicate.from_json(labels)
    )
    if method not in METHODS:
        raise SolverError(f"unknown method {method!r}; expected one of {METHODS}")
    if spec.label_constrained and graph.labels is None and graph.n > 0:
        # Fail loudly before the degenerate-query short-circuits: asking a
        # label-constrained question of an unlabeled graph is a caller
        # error, not an empty answer.
        matching_mask(graph, spec.labels)
    if spec.infeasible_for(graph):
        # Empty/singleton graphs and k >= |V|: no community can exist, so
        # every solver's answer is the empty set — return it well-formed
        # instead of bouncing serving traffic with an exception.
        return ResultSet(())
    spec.validate_for(graph)
    # The explicit backend= is passed to the solvers that have their own
    # engine switch *and* scoped ambiently, so kernels reached without an
    # explicit argument (components, truss peels, strategies) follow too.
    with use_backend(backend) as resolved:
        if (
            engine_pool is not None
            and method == "auto"
            and k > engine_pool.kmax
            # Parameters that only a *solver* validates must keep failing
            # identically with or without a pool, so any value a dispatch
            # target could reject falls through to the normal path (and
            # raises there, exactly as a cold call would).
            and 0.0 <= eps < 1.0
            and seed_order in (None, "id", "weight", "shuffled")
        ):
            # The pool's cached core decomposition proves no k-core exists;
            # every auto-dispatch family (constrained or not — the
            # constrained k-core is a subset) returns empty on such queries.
            return ResultSet(())
        if spec.label_constrained:
            return _dispatch_constrained(
                graph, spec, method, eps, greedy, seed_order, rng_seed,
                resolved, engine_pool,
            )
        return _dispatch(
            graph, spec, method, eps, greedy, seed_order, rng_seed, resolved,
            engine_pool,
        )


def _dispatch(
    graph: Graph,
    spec: ProblemSpec,
    method: str,
    eps: float,
    greedy: bool,
    seed_order: str | None,
    rng_seed: int | None,
    backend: str = "auto",
    engine_pool=None,
) -> ResultSet:
    aggregator = spec.f
    k, r, s = spec.k, spec.r, spec.s
    non_overlapping = spec.non_overlapping

    if method == "bruteforce":
        from repro.influential.bruteforce import (
            bruteforce_top_r,
            bruteforce_top_r_nonoverlapping,
        )

        if non_overlapping:
            return bruteforce_top_r_nonoverlapping(graph, k, r, aggregator, s)
        return bruteforce_top_r(graph, k, r, aggregator, s)

    if method == "exact":
        if non_overlapping:
            raise SolverError("TIC-EXACT does not implement the TONIC variant")
        bound = spec.effective_size_bound(graph)
        return tic_exact(graph, k, r, bound, aggregator)

    if method == "naive":
        if non_overlapping:
            return tonic_sum_unconstrained(graph, k, r, aggregator)
        if spec.size_constrained:
            raise SolverError("Algorithm 1 solves the size-unconstrained problem")
        return sum_naive(
            graph, k, r, aggregator, backend=backend, engine_pool=engine_pool
        )

    if method == "improved" or method == "approx":
        if non_overlapping:
            return tonic_sum_unconstrained(graph, k, r, aggregator)
        if spec.size_constrained:
            raise SolverError("Algorithm 2 solves the size-unconstrained problem")
        use_eps = eps if method == "approx" else 0.0
        return tic_improved(
            graph, k, r, aggregator, eps=use_eps, backend=backend,
            engine_pool=engine_pool,
        )

    if method == "local":
        bound = spec.effective_size_bound(graph)
        return local_search(
            graph, k, r, bound, aggregator,
            greedy=greedy, non_overlapping=non_overlapping,
            seed_order=seed_order, rng_seed=rng_seed, backend=backend,
        )

    return _auto_dispatch(
        graph, spec, eps, greedy, seed_order, rng_seed, backend, engine_pool
    )


def _dispatch_constrained(
    graph: Graph,
    spec: ProblemSpec,
    method: str,
    eps: float,
    greedy: bool,
    seed_order: str | None,
    rng_seed: int | None,
    backend: str = "auto",
    engine_pool=None,
) -> ResultSet:
    """Label-constrained dispatch: seed pushdown or induced-subgraph solve.

    The "all members match" semantics makes the constrained query equal
    to the unconstrained query on ``G[matching]``.  Two routes realise
    that:

    * **Seed pushdown** (expansion solvers — Algorithms 1/2 and their
      auto-dispatch use): seed the lattice from the k-core components of
      ``G[matching]`` on the *original* graph.  Expansion is
      component-local, so every descendant keeps the invariant; no ids
      are remapped and the shared engine pool serves structures as for
      unconstrained traffic.
    * **Induced-subgraph fallback** (min/max peels, local search, exact,
      brute force, TONIC): materialise ``G[matching]`` — the remap is
      monotone, so float-summation order and tie-breaks are preserved —
      solve unconstrained, and map member ids back.

    Both routes produce identical answers (the remap argument above);
    which one runs is a pure performance decision.
    """
    aggregator = spec.f
    predicate = spec.labels

    pushdown = (
        not spec.non_overlapping
        and not spec.size_constrained
        and (
            method in ("naive", "improved", "approx")
            or (
                method == "auto"
                and aggregator.decreases_under_removal
                and not aggregator.is_node_dominated
            )
        )
    )
    if pushdown:
        if method == "naive":
            return sum_naive(
                graph, spec.k, spec.r, aggregator, backend=backend,
                engine_pool=engine_pool, labels=predicate,
            )
        use_eps = eps if method in ("approx", "auto") else 0.0
        return tic_improved(
            graph, spec.k, spec.r, aggregator, eps=use_eps, backend=backend,
            engine_pool=engine_pool, labels=predicate,
        )

    from repro.graphs.views import induced_subgraph

    matching = [int(v) for v in np.flatnonzero(matching_mask(graph, predicate))]
    subgraph, __ = induced_subgraph(graph, matching)
    inner = replace(spec, labels=None)
    if inner.infeasible_for(subgraph):
        return ResultSet(())
    result = _dispatch(
        subgraph, inner, method, eps, greedy, seed_order, rng_seed, backend,
        None,
    )
    # induced_subgraph numbers new ids by sorted original id, so
    # ``matching[new_id]`` inverts the mapping; the remap being monotone,
    # re-sorting in ResultSet reproduces the subgraph ranking exactly.
    return ResultSet(
        Community(
            frozenset(matching[v] for v in community.vertices),
            community.value,
            community.aggregator,
            community.k,
        )
        for community in result
    )


def _auto_dispatch(
    graph: Graph,
    spec: ProblemSpec,
    eps: float,
    greedy: bool,
    seed_order: str | None,
    rng_seed: int | None,
    backend: str = "auto",
    engine_pool=None,
) -> ResultSet:
    aggregator, k, r = spec.f, spec.k, spec.r

    if not spec.size_constrained:
        if aggregator.is_node_dominated:
            if aggregator.name == "min":
                family = min_communities(graph, k)
                if spec.non_overlapping:
                    return greedy_disjoint(family, r)
                return top_r_min(graph, k, r)
            family = max_communities(graph, k)
            if spec.non_overlapping:
                return greedy_disjoint(family, r)
            return top_r_max(graph, k, r)
        if aggregator.decreases_under_removal:
            if spec.non_overlapping:
                return tonic_sum_unconstrained(graph, k, r, aggregator)
            return tic_improved(
                graph, k, r, aggregator, eps=eps, backend=backend,
                engine_pool=engine_pool,
            )
        # NP-hard unconstrained (avg, densities): the paper's recourse is
        # local search with s = |V| (Sections III/V).

    bound = spec.effective_size_bound(graph)
    return local_search(
        graph, k, r, bound, aggregator,
        greedy=greedy, non_overlapping=spec.non_overlapping,
        seed_order=seed_order, rng_seed=rng_seed, backend=backend,
    )


def top_r_many(
    graph: "Graph | None",
    queries,
    backend: str = "auto",
    cache_size: int = 1024,
    workers: int | None = None,
    service=None,
    snapshot=None,
) -> "list[ResultSet]":
    """Answer a batch of queries over one graph with shared serving state.

    ``queries`` is an iterable of
    :class:`~repro.serving.query.InfluentialQuery` (or mappings accepted
    by :meth:`~repro.serving.query.InfluentialQuery.create`).  A transient
    :class:`~repro.serving.service.QueryService` is stood up around
    ``graph`` — CSR warmed, decompositions cached, one expansion-engine
    pool, an LRU result cache of ``cache_size`` — and the batch is
    answered in submission order; ``workers > 1`` shards the batch across
    a process pool.  Results are byte-identical to calling
    :func:`top_r_communities` per query; long-lived callers should hold a
    :class:`~repro.serving.service.QueryService` themselves so the caches
    survive across batches.

    Two alternatives to ``graph`` skip the cold construction cost:
    ``service=`` answers through an existing
    :class:`~repro.serving.service.QueryService` (its caches persist for
    the caller), and ``snapshot=`` stands the service up from a snapshot
    directory written by :func:`repro.serving.store.save_snapshot` —
    mmapped arrays, no decomposition recomputed.  Exactly one of
    ``graph``/``service``/``snapshot`` must be given.
    """
    from repro.serving.service import QueryService

    sources = sum(x is not None for x in (graph, service, snapshot))
    if sources != 1:
        raise SolverError(
            "top_r_many needs exactly one of graph=, service= or snapshot="
        )
    if service is None:
        if snapshot is not None:
            from repro.serving.store import load_service

            service = load_service(
                snapshot, backend=backend, cache_size=cache_size
            )
        else:
            service = QueryService(
                graph, backend=backend, cache_size=cache_size
            )
    return service.submit_many(queries, workers=workers)
