"""High-level query API: one entry point, paper-faithful dispatch.

:func:`top_r_communities` routes a query to the right algorithm the way
the paper's Table I and Sections IV-V lay it out:

===================  ==================  =====================================
problem              aggregation          algorithm
===================  ==================  =====================================
unconstrained        min / max            dedicated peel / anchor sweep
unconstrained        sum / sum-surplus    Algorithm 2 (exact at eps=0)
unconstrained        avg / densities      Algorithm 4 with s = |V| (heuristic)
size-constrained     any                  Algorithm 4 (greedy or random)
size-constrained     any (tiny graphs)    Algorithm 3 via ``method="exact"``
===================  ==================  =====================================

Non-overlapping (TONIC) requests use the disjoint-component shortcut for
size-proportional aggregators, greedy disjoint selection over the full
family for min/max, and accept-and-remove local search otherwise.
"""

from __future__ import annotations

from repro.aggregators.base import Aggregator
from repro.errors import SolverError
from repro.graphs.backend import use_backend
from repro.graphs.graph import Graph
from repro.influential.exact import tic_exact
from repro.influential.improved import tic_improved
from repro.influential.local_search import local_search
from repro.influential.minmax_solvers import (
    max_communities,
    min_communities,
    top_r_max,
    top_r_min,
)
from repro.influential.naive_sum import sum_naive
from repro.influential.nonoverlap import (
    greedy_disjoint,
    tonic_sum_unconstrained,
)
from repro.influential.results import ResultSet
from repro.influential.spec import ProblemSpec

#: Recognised ``method`` values.
METHODS = ("auto", "naive", "improved", "approx", "exact", "local", "bruteforce")


def top_r_communities(
    graph: Graph,
    k: int,
    r: int,
    f: "str | Aggregator" = "sum",
    s: int | None = None,
    method: str = "auto",
    eps: float = 0.0,
    non_overlapping: bool = False,
    greedy: bool = True,
    seed_order: str | None = None,
    rng_seed: int | None = None,
    backend: str = "auto",
) -> ResultSet:
    """Find the top-r (non-overlapping) (size-constrained) communities.

    Parameters mirror the paper: degree constraint ``k``, output count
    ``r``, aggregation function ``f`` (name or instance), optional size
    constraint ``s``, approximation ratio ``eps`` (only used by the
    Approx method), ``non_overlapping`` for Problem 2, and ``greedy``
    selecting the local-search variant.  ``method`` forces a specific
    algorithm; ``"auto"`` follows the dispatch table above.

    ``backend`` selects the graph-kernel backend ("set" or "csr"; "auto"
    keeps the ambient default) for every kernel the chosen solver runs —
    see :mod:`repro.graphs.backend` — including the candidate-expansion
    engine of Algorithms 1 and 2 (:mod:`repro.influential.expansion` vs
    :mod:`repro.influential.expansion_csr`).  Both backends return
    identical results; "set" exists for parity checking and debugging.
    """
    spec = ProblemSpec.create(k, r, f, s, non_overlapping)
    spec.validate_for(graph)
    if method not in METHODS:
        raise SolverError(f"unknown method {method!r}; expected one of {METHODS}")
    # The explicit backend= is passed to the solvers that have their own
    # engine switch *and* scoped ambiently, so kernels reached without an
    # explicit argument (components, truss peels, strategies) follow too.
    with use_backend(backend) as resolved:
        return _dispatch(
            graph, spec, method, eps, greedy, seed_order, rng_seed, resolved
        )


def _dispatch(
    graph: Graph,
    spec: ProblemSpec,
    method: str,
    eps: float,
    greedy: bool,
    seed_order: str | None,
    rng_seed: int | None,
    backend: str = "auto",
) -> ResultSet:
    aggregator = spec.f
    k, r, s = spec.k, spec.r, spec.s
    non_overlapping = spec.non_overlapping

    if method == "bruteforce":
        from repro.influential.bruteforce import (
            bruteforce_top_r,
            bruteforce_top_r_nonoverlapping,
        )

        if non_overlapping:
            return bruteforce_top_r_nonoverlapping(graph, k, r, aggregator, s)
        return bruteforce_top_r(graph, k, r, aggregator, s)

    if method == "exact":
        if non_overlapping:
            raise SolverError("TIC-EXACT does not implement the TONIC variant")
        bound = spec.effective_size_bound(graph)
        return tic_exact(graph, k, r, bound, aggregator)

    if method == "naive":
        if non_overlapping:
            return tonic_sum_unconstrained(graph, k, r, aggregator)
        if spec.size_constrained:
            raise SolverError("Algorithm 1 solves the size-unconstrained problem")
        return sum_naive(graph, k, r, aggregator, backend=backend)

    if method == "improved" or method == "approx":
        if non_overlapping:
            return tonic_sum_unconstrained(graph, k, r, aggregator)
        if spec.size_constrained:
            raise SolverError("Algorithm 2 solves the size-unconstrained problem")
        use_eps = eps if method == "approx" else 0.0
        return tic_improved(graph, k, r, aggregator, eps=use_eps, backend=backend)

    if method == "local":
        bound = spec.effective_size_bound(graph)
        return local_search(
            graph, k, r, bound, aggregator,
            greedy=greedy, non_overlapping=non_overlapping,
            seed_order=seed_order, rng_seed=rng_seed, backend=backend,
        )

    return _auto_dispatch(graph, spec, eps, greedy, seed_order, rng_seed, backend)


def _auto_dispatch(
    graph: Graph,
    spec: ProblemSpec,
    eps: float,
    greedy: bool,
    seed_order: str | None,
    rng_seed: int | None,
    backend: str = "auto",
) -> ResultSet:
    aggregator, k, r = spec.f, spec.k, spec.r

    if not spec.size_constrained:
        if aggregator.is_node_dominated:
            if aggregator.name == "min":
                family = min_communities(graph, k)
                if spec.non_overlapping:
                    return greedy_disjoint(family, r)
                return top_r_min(graph, k, r)
            family = max_communities(graph, k)
            if spec.non_overlapping:
                return greedy_disjoint(family, r)
            return top_r_max(graph, k, r)
        if aggregator.decreases_under_removal:
            if spec.non_overlapping:
                return tonic_sum_unconstrained(graph, k, r, aggregator)
            return tic_improved(graph, k, r, aggregator, eps=eps, backend=backend)
        # NP-hard unconstrained (avg, densities): the paper's recourse is
        # local search with s = |V| (Sections III/V).

    bound = spec.effective_size_bound(graph)
    return local_search(
        graph, k, r, bound, aggregator,
        greedy=greedy, non_overlapping=spec.non_overlapping,
        seed_order=seed_order, rng_seed=rng_seed, backend=backend,
    )
