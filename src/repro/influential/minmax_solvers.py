"""Polynomial solvers for the node-dominated aggregators (min and max).

These are the prior-work baselines the paper builds on: Li et al. (VLDB
2015) introduced the min-based influential community model and its peel
algorithm; Bi et al. (VLDB 2018) improved it; the paper notes both extend
to max.  We implement:

* :func:`min_communities` — forward peel: repeatedly record the connected
  component about to lose its minimum-weight vertex, delete that vertex
  (all tied minima together, so recorded values strictly increase along
  each chain) and cascade.  The recorded components are exactly the
  k-influential communities under min: when a component C with minimum
  weight m is recorded, the alive set equals the maximal k-core of
  ``{v : w(v) >= m}`` (peeling preserves sub-k-cores), so any connected
  cohesive superset of C with the same value would sit in the same
  component — i.e. C is maximal.  The family is laminar.

* :func:`max_communities` — descending anchor sweep: process vertices by
  decreasing weight; when an anchor is still alive, the component
  containing it is the maximal community in which that anchor is the
  heaviest vertex; record it, then delete the whole tie-group and cascade.
  Symmetric maximality argument over ``{v : w(v) <= w(anchor)}``.

Both run in O(n * (n + m)) worst case (component splits are re-discovered
by BFS after each cascade), comfortably under the paper's budgets at
stand-in scale.
"""

from __future__ import annotations

from repro.aggregators.minmax import Maximum, Minimum
from repro.core.peeler import PeelingWorkspace
from repro.errors import SolverError
from repro.graphs.components import connected_components_of
from repro.graphs.graph import Graph
from repro.influential.community import Community
from repro.influential.results import ResultSet


def _check(k: int, r: int) -> None:
    if k < 1 or r < 1:
        raise SolverError(f"need k >= 1 and r >= 1, got k={k}, r={r}")


def min_communities(graph: Graph, k: int, limit: int | None = None) -> list[Community]:
    """Every k-influential community under min, in peel (discovery) order.

    ``limit`` stops early after that many communities (top-r callers do not
    need the full laminar family, though it is at most O(n) long).
    """
    if k < 1:
        raise SolverError(f"need k >= 1, got {k}")
    aggregator = Minimum()
    workspace = PeelingWorkspace(graph, k)
    weights = graph.weights
    found: list[Community] = []
    # Worklist of components; each is processed independently (cascades
    # cannot cross component boundaries).
    worklist = workspace.components()
    while worklist:
        component = worklist.pop()
        if not component:
            continue
        minimum = min(weights[v] for v in component)
        found.append(
            Community(frozenset(component), float(minimum), aggregator.name, k)
        )
        if limit is not None and len(found) >= limit:
            return found
        # Delete every vertex holding the minimum (ties together, so the
        # child components' minima strictly exceed this community's value
        # and maximality is preserved), then cascade.
        tied = [v for v in component if weights[v] == minimum]
        removed = set(workspace.remove_all(tied))
        survivors = component - removed
        if survivors:
            worklist.extend(connected_components_of(graph, survivors))
    return found


def max_communities(graph: Graph, k: int, limit: int | None = None) -> list[Community]:
    """Every k-influential community under max, best first.

    Values are non-increasing in discovery order by construction, so the
    first ``limit`` entries are already the top-``limit``.
    """
    if k < 1:
        raise SolverError(f"need k >= 1, got {k}")
    aggregator = Maximum()
    workspace = PeelingWorkspace(graph, k)
    weights = graph.weights
    found: list[Community] = []
    order = sorted(workspace.alive, key=lambda v: (-weights[v], v))
    index = 0
    while index < len(order):
        anchor = order[index]
        if anchor not in workspace.alive:
            index += 1
            continue
        value = float(weights[anchor])
        # Gather the whole tie group at this weight that is still alive.
        tie_group = [anchor]
        j = index + 1
        while j < len(order) and weights[order[j]] == value:
            if order[j] in workspace.alive:
                tie_group.append(order[j])
            j += 1
        # Record each distinct component containing a tie-group member.
        recorded: set[int] = set()
        for v in tie_group:
            if v in recorded or v not in workspace.alive:
                continue
            component = workspace.component_of(v)
            recorded |= component
            found.append(Community(frozenset(component), value, aggregator.name, k))
            if limit is not None and len(found) >= limit:
                return found
        workspace.remove_all(tie_group)
        index = j
    return found


def top_r_min(graph: Graph, k: int, r: int) -> ResultSet:
    """Top-r k-influential communities under min."""
    _check(k, r)
    return ResultSet(sorted(min_communities(graph, k))[:r])


def top_r_max(graph: Graph, k: int, r: int) -> ResultSet:
    """Top-r k-influential communities under max."""
    _check(k, r)
    return ResultSet(max_communities(graph, k, limit=r))


def top_r_min_noncontained(graph: Graph, k: int, r: int) -> ResultSet:
    """Top-r *non-contained* communities under min (Li et al.'s variant).

    The min family is laminar; the non-contained communities are exactly
    its leaves (communities with no recorded strict subset).
    """
    _check(k, r)
    family = min_communities(graph, k)
    leaves = []
    for community in family:
        if not any(
            other.vertices < community.vertices
            for other in family
            if other is not community
        ):
            leaves.append(community)
    return ResultSet(sorted(leaves)[:r])
