"""Container for ranked top-r query answers."""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.graphs.graph import Graph
from repro.influential.community import Community


class ResultSet(Sequence[Community]):
    """An immutable ranked list of communities (best first).

    Thin sequence wrapper adding the accessors experiments need: the r-th
    value (the quantity plotted in the paper's Figures 12-13), disjointness
    checks for TONIC outputs, and pretty-printing.
    """

    __slots__ = ("_communities",)

    def __init__(self, communities: Iterable[Community]) -> None:
        self._communities = tuple(sorted(communities))

    def __len__(self) -> int:
        return len(self._communities)

    def __iter__(self) -> Iterator[Community]:
        return iter(self._communities)

    def __getitem__(self, index):  # type: ignore[override]
        return self._communities[index]

    def __repr__(self) -> str:
        return f"ResultSet({len(self._communities)} communities)"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResultSet):
            return NotImplemented
        return self._communities == other._communities

    def __hash__(self) -> int:
        return hash(self._communities)

    def values(self) -> list[float]:
        """Influence values, best first."""
        return [c.value for c in self._communities]

    def rth_value(self, r: int | None = None) -> float:
        """Value of the r-th community (1-based; default: the last one).

        This is the effectiveness metric of the paper's Exp-VII.  Returns
        ``-inf`` when fewer than r communities were found, so comparisons
        "greedy beats random" remain well-defined on sparse instances.
        """
        index = (r if r is not None else len(self._communities)) - 1
        if index < 0 or index >= len(self._communities):
            return float("-inf")
        return self._communities[index].value

    def vertex_sets(self) -> list[frozenset[int]]:
        """Member sets, best first."""
        return [c.vertices for c in self._communities]

    def is_pairwise_disjoint(self) -> bool:
        """True if no two communities overlap (Definition 5)."""
        seen: set[int] = set()
        for community in self._communities:
            if any(v in seen for v in community.vertices):
                return False
            seen.update(community.vertices)
        return True

    def describe(self, graph: Graph | None = None) -> str:
        """Multi-line report, one community per line, rank-prefixed."""
        lines = [
            f"#{rank}: {community.describe(graph)}"
            for rank, community in enumerate(self._communities, start=1)
        ]
        return "\n".join(lines) if lines else "(no communities found)"
