"""Influential community search under the k-truss model (extension).

The paper's introduction points out that the influential community model
generalises from k-core to other cohesiveness metrics "e.g., k-truss";
this module carries the two tractable solver families across:

* :func:`truss_top_r_sum` — under a size-proportional aggregator every
  connected k-truss component dominates its sub-trusses, so the top-r
  components are exact (the truss analogue of Algorithm 2's Lines 1-3, and
  exact for the same Corollary 2 reason when expansion is by best-first
  peeling);
* :func:`truss_min_communities` / :func:`truss_top_r_min` — the min-peel
  carried to trusses: repeatedly record the component about to lose its
  minimum-weight vertex, delete that vertex (edges and all), re-truss,
  recurse on the split parts.  The same maximality argument as the k-core
  case applies over ``{v : w(v) >= m}``.

Definitions mirror Definition 3 with "cohesive" replaced by "every edge of
G[H] used for connectivity closes >= k - 2 triangles in G[H]".
"""

from __future__ import annotations

import numpy as np

from repro.aggregators.base import Aggregator
from repro.aggregators.minmax import Minimum
from repro.aggregators.registry import get_aggregator
from repro.errors import SolverError
from repro.graphs.backend import resolve_backend, use_backend
from repro.graphs.graph import Graph
from repro.influential.community import Community, community_from_vertices
from repro.influential.results import ResultSet
from repro.truss.ktruss import connected_ktruss_components
from repro.utils.topr import TopR


def truss_top_r_sum(
    graph: Graph,
    k: int,
    r: int,
    f: "str | Aggregator | None" = None,
    backend: str = "auto",
) -> ResultSet:
    """Top-r non-overlapping k-truss influential communities, sum family.

    Exactness mirrors the k-core argument: components are disjoint, and a
    size-proportional aggregator cannot prefer a sub-truss to the
    component containing it.  ``backend`` scopes the truss kernels (see
    :mod:`repro.graphs.backend`).
    """
    aggregator = get_aggregator(f) if f is not None else get_aggregator("sum")
    if not aggregator.is_size_proportional:
        raise SolverError(
            f"the truss component shortcut needs a size-proportional "
            f"aggregator; {aggregator.name!r} is not"
        )
    if k < 2 or r < 1:
        raise SolverError(f"need k >= 2 and r >= 1, got k={k}, r={r}")
    top: TopR[Community] = TopR(r, key=lambda c: c.value)
    with use_backend(backend):
        for component in connected_ktruss_components(graph, range(graph.n), k):
            top.offer(community_from_vertices(graph, component, aggregator, k))
    return ResultSet(top.ranked())


def truss_min_communities(
    graph: Graph, k: int, limit: int | None = None, backend: str = "auto"
) -> list[Community]:
    """Every k-truss influential community under min, in discovery order.

    The truss analogue of the Li-et-al. peel: each component is recorded
    with its minimum weight, then all minimum-weight vertices are deleted
    and the remainder re-trussed.  Under the CSR backend the per-component
    minimum and the survivor filter run as array reductions (both exact,
    so results match the set backend bit for bit).
    """
    if k < 2:
        raise SolverError(f"need k >= 2, got {k}")
    aggregator = Minimum()
    weights = graph.weights
    found: list[Community] = []
    resolved = resolve_backend(backend)
    with use_backend(resolved):
        worklist = connected_ktruss_components(graph, range(graph.n), k)
        while worklist:
            component = worklist.pop()
            if not component:
                continue
            if resolved == "csr":
                members = np.fromiter(
                    component, dtype=np.int64, count=len(component)
                )
                member_weights = weights[members]
                minimum = float(member_weights.min())
                survivors = set(
                    members[member_weights != minimum].tolist()
                )
            else:
                minimum = float(min(weights[v] for v in component))
                survivors = {v for v in component if weights[v] != minimum}
            found.append(
                Community(frozenset(component), minimum, aggregator.name, k)
            )
            if limit is not None and len(found) >= limit:
                return found
            if survivors:
                worklist.extend(
                    connected_ktruss_components(graph, survivors, k)
                )
    return found


def truss_top_r_min(
    graph: Graph, k: int, r: int, backend: str = "auto"
) -> ResultSet:
    """Top-r k-truss influential communities under min."""
    if r < 1:
        raise SolverError(f"need r >= 1, got {r}")
    return ResultSet(sorted(truss_min_communities(graph, k, backend=backend))[:r])
