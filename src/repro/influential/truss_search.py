"""Influential community search under the k-truss model (extension).

The paper's introduction points out that the influential community model
generalises from k-core to other cohesiveness metrics "e.g., k-truss";
this module carries the two tractable solver families across:

* :func:`truss_top_r_sum` — under a size-proportional aggregator every
  connected k-truss component dominates its sub-trusses, so the top-r
  components are exact (the truss analogue of Algorithm 2's Lines 1-3, and
  exact for the same Corollary 2 reason when expansion is by best-first
  peeling);
* :func:`truss_min_communities` / :func:`truss_top_r_min` — the min-peel
  carried to trusses: repeatedly record the component about to lose its
  minimum-weight vertex, delete that vertex (edges and all), re-truss,
  recurse on the split parts.  The same maximality argument as the k-core
  case applies over ``{v : w(v) >= m}``.

Definitions mirror Definition 3 with "cohesive" replaced by "every edge of
G[H] used for connectivity closes >= k - 2 triangles in G[H]".
"""

from __future__ import annotations

from repro.aggregators.base import Aggregator
from repro.aggregators.minmax import Minimum
from repro.aggregators.registry import get_aggregator
from repro.errors import SolverError
from repro.graphs.graph import Graph
from repro.influential.community import Community, community_from_vertices
from repro.influential.results import ResultSet
from repro.truss.ktruss import connected_ktruss_components
from repro.utils.topr import TopR


def truss_top_r_sum(
    graph: Graph,
    k: int,
    r: int,
    f: "str | Aggregator | None" = None,
) -> ResultSet:
    """Top-r non-overlapping k-truss influential communities, sum family.

    Exactness mirrors the k-core argument: components are disjoint, and a
    size-proportional aggregator cannot prefer a sub-truss to the
    component containing it.
    """
    aggregator = get_aggregator(f) if f is not None else get_aggregator("sum")
    if not aggregator.is_size_proportional:
        raise SolverError(
            f"the truss component shortcut needs a size-proportional "
            f"aggregator; {aggregator.name!r} is not"
        )
    if k < 2 or r < 1:
        raise SolverError(f"need k >= 2 and r >= 1, got k={k}, r={r}")
    top: TopR[Community] = TopR(r, key=lambda c: c.value)
    for component in connected_ktruss_components(graph, range(graph.n), k):
        top.offer(community_from_vertices(graph, component, aggregator, k))
    return ResultSet(top.ranked())


def truss_min_communities(
    graph: Graph, k: int, limit: int | None = None
) -> list[Community]:
    """Every k-truss influential community under min, in discovery order.

    The truss analogue of the Li-et-al. peel: each component is recorded
    with its minimum weight, then all minimum-weight vertices are deleted
    and the remainder re-trussed.
    """
    if k < 2:
        raise SolverError(f"need k >= 2, got {k}")
    aggregator = Minimum()
    weights = graph.weights
    found: list[Community] = []
    worklist = connected_ktruss_components(graph, range(graph.n), k)
    while worklist:
        component = worklist.pop()
        if not component:
            continue
        minimum = min(weights[v] for v in component)
        found.append(
            Community(frozenset(component), float(minimum), aggregator.name, k)
        )
        if limit is not None and len(found) >= limit:
            return found
        survivors = {v for v in component if weights[v] != minimum}
        if survivors:
            worklist.extend(connected_ktruss_components(graph, survivors, k))
    return found


def truss_top_r_min(graph: Graph, k: int, r: int) -> ResultSet:
    """Top-r k-truss influential communities under min."""
    if r < 1:
        raise SolverError(f"need r >= 1, got {r}")
    return ResultSet(sorted(truss_min_communities(graph, k))[:r])
