"""Candidate-construction strategies for the local search (Algorithm 4).

A strategy receives the ordered neighbourhood ``V_i`` of a seed vertex and
the current top-r list ``L`` and decides which prefix-based candidate
communities to offer.  The paper gives two:

* :class:`SumStrategy` (Procedure SumStrategy) — take the first ``s``
  vertices as a block, then shrink from the tail until the block is a
  k-core whose value beats the current r-th best;
* :class:`AvgStrategy` (Procedure AvgStrategy) — grow the prefix one
  vertex at a time, testing every intermediate prefix; in greedy mode the
  first qualifying prefix wins (later vertices only lower the average, so
  it is safe to stop), otherwise the best qualifying prefix is kept.

Both evaluate ``f`` through incrementally maintained weight statistics, so
a strategy invocation costs O(s^2) set operations for the k-core checks,
matching the paper's complexity accounting.

Strategies are registered by aggregator family in ``strategy_for``; new
aggregators fall back to :class:`AvgStrategy`'s grow-and-test scheme, which
makes no monotonicity assumption (paper Remark 1).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from repro.aggregators.base import Aggregator
from repro.core.kcore import is_kcore_subset
from repro.graphs.components import is_connected_subset
from repro.graphs.graph import Graph
from repro.influential.community import Community, community_from_vertices
from repro.utils.stats import IncrementalStats
from repro.utils.topr import TopR


def _is_candidate(graph: Graph, vertices: Sequence[int], k: int) -> bool:
    """The strategies' "C is k-core" test.

    Cohesiveness (min induced degree >= k) plus connectivity — Definition 3
    requires both, and a greedy weight-sorted prefix can be disconnected
    even when its BFS origin was connected.
    """
    subset = set(vertices)
    return is_kcore_subset(graph, subset, k) and is_connected_subset(graph, subset)


class Strategy(ABC):
    """Turns an ordered seed neighbourhood into candidate communities."""

    def __init__(self, graph: Graph, k: int, s: int, aggregator: Aggregator) -> None:
        self.graph = graph
        self.k = k
        self.s = s
        self.aggregator = aggregator
        self._graph_total = (
            graph.total_weight if aggregator.needs_graph_total else None
        )

    def _value(self, stats: IncrementalStats) -> float:
        return self.aggregator.from_stats(stats.snapshot(), self._graph_total)

    def _make(self, vertices: Sequence[int]) -> Community:
        return community_from_vertices(self.graph, vertices, self.aggregator, self.k)

    @abstractmethod
    def offer_candidates(self, ordered: Sequence[int], top: TopR[Community]) -> None:
        """Derive candidates from ``ordered`` and offer them to ``top``."""


class SumStrategy(Strategy):
    """Procedure SumStrategy: block of s, shrink from the tail.

    For size-proportional aggregators the largest feasible prefix has the
    largest value, so the search starts from the full block and drops the
    last (in greedy mode: lightest) vertices until the k-core test passes
    or the value no longer beats the threshold.
    """

    def offer_candidates(self, ordered: Sequence[int], top: TopR[Community]) -> None:
        block = list(ordered[: self.s])  # Lines 3-5: first s vertices
        stats = IncrementalStats()
        weights = self.graph.weights
        for v in block:
            stats.add(float(weights[v]))
        # Lines 6-12: shrink from the tail while worthwhile.
        while len(block) > self.k and self._value(stats) > top.threshold():
            if _is_candidate(self.graph, block, self.k):
                top.offer(self._make(block))
                break
            removed = block.pop()  # C.last
            stats.remove(float(weights[removed]))


class AvgStrategy(Strategy):
    """Procedure AvgStrategy: grow the prefix, test each step.

    ``greedy`` mirrors the paper's flag: with a descending-weight order the
    first qualifying prefix cannot be improved by adding lighter vertices,
    so greedy mode stops there (Lines 6-8); random mode collects every
    qualifying prefix and keeps the best (Lines 9-13).
    """

    def __init__(
        self,
        graph: Graph,
        k: int,
        s: int,
        aggregator: Aggregator,
        greedy: bool,
    ) -> None:
        super().__init__(graph, k, s, aggregator)
        self.greedy = greedy

    def offer_candidates(self, ordered: Sequence[int], top: TopR[Community]) -> None:
        prefix: list[int] = []
        stats = IncrementalStats()
        weights = self.graph.weights
        best: tuple[float, list[int]] | None = None
        for v in ordered[: self.s]:  # Lines 3-10
            prefix.append(v)
            stats.add(float(weights[v]))
            if len(prefix) <= self.k:
                continue
            value = self._value(stats)
            if value > top.threshold() and _is_candidate(self.graph, prefix, self.k):
                if self.greedy:
                    top.offer(self._make(prefix))  # Lines 6-8
                    return
                if best is None or value > best[0]:  # Line 10 collects; 12 argmax
                    best = (value, list(prefix))
        if best is not None:
            top.offer(self._make(best[1]))  # Line 13


def strategy_for(
    graph: Graph,
    k: int,
    s: int,
    aggregator: Aggregator,
    greedy: bool,
) -> Strategy:
    """Pick the paper's strategy for ``aggregator``.

    Size-proportional aggregators get SumStrategy; everything else the
    grow-and-test AvgStrategy (Remark 1's generic fallback).
    """
    if aggregator.is_size_proportional:
        return SumStrategy(graph, k, s, aggregator)
    return AvgStrategy(graph, k, s, aggregator, greedy)
