"""Algorithm 3 — TIC-EXACT (paper Section V.A).

The exact algorithm for the (NP-hard) size-constrained problem: enumerate
every candidate vertex set of size k+1 .. s, keep those inducing a
connected k-core, return the top-r by influence value.

The paper's pseudocode enumerates all C(n, i) subsets; since only connected
subsets can qualify, we enumerate connected induced subgraphs directly
(:mod:`repro.influential.bruteforce`), which is exactly the same candidate
space at a fraction of the cost.  Still exponential — the paper calls this
algorithm "quite time-consuming" and benchmarks only the heuristics; we
use it as the exactness reference on small instances and expose an
explicit size guard.
"""

from __future__ import annotations

from repro.aggregators.base import Aggregator
from repro.aggregators.registry import get_aggregator
from repro.errors import SolverError
from repro.graphs.graph import Graph
from repro.influential.bruteforce import (
    MAX_BRUTE_FORCE_VERTICES,
    enumerate_connected_subgraphs,
)
from repro.influential.community import community_from_vertices
from repro.influential.results import ResultSet
from repro.utils.topr import TopR


def tic_exact(
    graph: Graph,
    k: int,
    r: int,
    s: int,
    f: "str | Aggregator",
    max_vertices: int = MAX_BRUTE_FORCE_VERTICES,
) -> ResultSet:
    """Exact top-r size-constrained k-influential communities.

    Faithful to Algorithm 3's semantics: the candidate space is every
    vertex set of size in [k+1, s] inducing a connected subgraph of
    minimum degree >= k (the pseudocode applies no extra maximality
    filter).  Raises :class:`SolverError` beyond ``max_vertices`` — the
    cost is exponential by Theorem 4's NP-hardness.
    """
    aggregator = get_aggregator(f)
    if k < 1 or r < 1:
        raise SolverError(f"need k >= 1 and r >= 1, got k={k}, r={r}")
    if s < k + 1:
        raise SolverError(f"size bound s={s} below the minimum k-core size {k + 1}")
    if graph.n > max_vertices:
        raise SolverError(
            f"TIC-EXACT on {graph.n} vertices exceeds the guard "
            f"({max_vertices}); use local search for large graphs"
        )
    adj = graph.adjacency
    top: TopR = TopR(r, key=lambda c: c.value)
    for subset in enumerate_connected_subgraphs(graph, max_size=s):
        if len(subset) <= k:
            continue
        if all(len(adj[v] & subset) >= k for v in subset):
            top.offer(community_from_vertices(graph, subset, aggregator, k))
    return ResultSet(top.ranked())
