"""Label predicates: the constrained-query extension (Top-L family).

The Top-L technical report extends influential-community search with
keyword predicates over vertex attributes; this repo's graphs already
carry an optional per-vertex label array, so a :class:`LabelPredicate`
constrains a query to communities whose members *all* match.  That
"every member matches" semantics is what makes constrained search
composable with the paper's machinery: a connected k-core of the induced
subgraph ``G[matching]`` is exactly a community of ``G`` with
all-matching members, so a constrained query equals the unconstrained
query on ``G[matching]`` — and equals post-filtering a brute-force
enumeration, which is how the oracle suite pins it.

Three predicate kinds cover the serving surface:

* ``eq`` — exact label match;
* ``any`` — membership in a label set;
* ``prefix`` — label starts-with (hierarchical labels like ``"ml/nlp"``).

Predicates are frozen, hashable and picklable, so they ride inside
:meth:`repro.serving.query.InfluentialQuery.cache_key` and ship to
process-pool workers unchanged.  :meth:`from_json` accepts the wire
shapes of the v1 HTTP API (``{"eq": ...}``, ``{"any": [...]}``,
``{"prefix": ...}``, plus the shorthands bare-string → ``eq`` and
bare-list → ``any``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SpecError
from repro.graphs.graph import Graph

__all__ = ["LabelPredicate", "matching_mask"]

#: Recognised predicate kinds (also the accepted JSON object keys).
KINDS = ("eq", "any", "prefix")


@dataclass(frozen=True)
class LabelPredicate:
    """One label constraint: ``kind`` plus its value tuple.

    ``values`` holds one string for ``eq``/``prefix`` and a sorted,
    de-duplicated tuple for ``any`` — the canonical form, so two
    spellings of the same constraint (``{"any": ["b", "a", "a"]}`` and
    ``{"any": ["a", "b"]}``) collapse to one cache identity.
    """

    kind: str
    values: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise SpecError(
                f"unknown label predicate kind {self.kind!r}; "
                f"expected one of {KINDS}"
            )
        if not isinstance(self.values, tuple) or not self.values:
            raise SpecError("label predicate needs at least one value")
        for value in self.values:
            if not isinstance(value, str):
                raise SpecError(
                    f"label predicate values must be strings, got {value!r}"
                )
        if self.kind in ("eq", "prefix") and len(self.values) != 1:
            raise SpecError(
                f"label predicate {self.kind!r} takes exactly one value, "
                f"got {len(self.values)}"
            )
        if self.kind == "any":
            canonical = tuple(sorted(set(self.values)))
            if canonical != self.values:
                object.__setattr__(self, "values", canonical)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_json(
        cls, spec: "LabelPredicate | str | list | tuple | dict | None"
    ) -> "LabelPredicate | None":
        """Parse the wire shape of a ``labels`` constraint (None passes
        through, so callers can thread optional constraints verbatim)."""
        if spec is None or isinstance(spec, LabelPredicate):
            return spec
        if isinstance(spec, str):
            return cls("eq", (spec,))
        if isinstance(spec, (list, tuple, set, frozenset)):
            values = tuple(spec)
            for value in values:
                if not isinstance(value, str):
                    raise SpecError(
                        f"label list entries must be strings, got {value!r}"
                    )
            return cls("any", values)
        if isinstance(spec, dict):
            if len(spec) != 1:
                raise SpecError(
                    f"a labels constraint takes exactly one of {KINDS}, "
                    f"got keys {sorted(map(str, spec))}"
                )
            ((kind, value),) = spec.items()
            if kind not in KINDS:
                raise SpecError(
                    f"unknown labels constraint key {kind!r}; "
                    f"expected one of {KINDS}"
                )
            if kind == "any":
                if not isinstance(value, (list, tuple, set, frozenset)):
                    raise SpecError(
                        f"labels constraint 'any' takes a list, got {value!r}"
                    )
                return cls("any", tuple(value))
            if not isinstance(value, str):
                raise SpecError(
                    f"labels constraint {kind!r} takes a string, got {value!r}"
                )
            return cls(kind, (value,))
        raise SpecError(
            f"cannot interpret {type(spec).__name__} as a labels constraint"
        )

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def matches(self, label: str) -> bool:
        """Does one label satisfy the predicate?"""
        if self.kind == "eq":
            return label == self.values[0]
        if self.kind == "any":
            return label in self.values
        return label.startswith(self.values[0])

    def mask_for(self, graph: Graph) -> np.ndarray:
        """Boolean matching mask over the graph's vertices.

        Raises :class:`~repro.errors.SpecError` when the graph carries no
        labels — a constrained query against an unlabeled graph is a
        caller error, not an empty answer.
        """
        return matching_mask(graph, self)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def to_json(self) -> dict[str, object]:
        """The canonical wire form (inverse of :meth:`from_json`)."""
        if self.kind == "any":
            return {"any": list(self.values)}
        return {self.kind: self.values[0]}

    def describe(self) -> str:
        """Compact rendering for query describe lines and logs."""
        if self.kind == "any":
            return "labels∈{" + ",".join(self.values) + "}"
        if self.kind == "prefix":
            return f"labels={self.values[0]}*"
        return f"labels={self.values[0]}"


def matching_mask(graph: Graph, predicate: LabelPredicate) -> np.ndarray:
    """Vectorised predicate evaluation over ``graph.labels``.

    The ``any`` kind goes through a set for O(1) membership; ``eq`` and
    ``prefix`` run one numpy string comparison over the label array.
    """
    labels = graph.labels
    if labels is None:
        raise SpecError(
            "graph carries no vertex labels; a labels constraint needs a "
            "labeled graph (Graph.with_labels or an ingested dataset)"
        )
    if graph.n == 0:
        return np.zeros(0, dtype=bool)
    arr = np.asarray(labels, dtype=object)
    if predicate.kind == "eq":
        return arr == predicate.values[0]
    if predicate.kind == "any":
        allowed = set(predicate.values)
        return np.fromiter(
            (label in allowed for label in labels), dtype=bool, count=graph.n
        )
    prefix = predicate.values[0]
    return np.fromiter(
        (label.startswith(prefix) for label in labels),
        dtype=bool,
        count=graph.n,
    )
