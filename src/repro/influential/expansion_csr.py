"""CSR-native expansion engine: the search-lattice hot loop on flat arrays.

Algorithms 1 (SUM-NAIVE) and 2 (TIC-IMPROVED) spend their time generating
the children of a popped community ``C`` — the connected k-core components
of ``C \\ {v}`` for each ``v`` (Alg. 1 Lines 4-7, Alg. 2 Lines 11-13).  The
set-backend :class:`~repro.influential.expansion.ExpansionContext` does
this over dict/set structures; this module is the vectorised rewrite.  A
popped component is relabelled once into the dense local id space
``0..c-1`` and every per-removal operation then runs over numpy arrays.

Mapping from the paper's pseudocode to the arrays held here
(``i`` is the local id of the removed vertex ``v = members.ids[i]``):

=====================================  ====================================
pseudocode step                        array operation
=====================================  ====================================
"for each vertex v in C"               ``np.flatnonzero(eligible)`` — the
(Alg. 1 L4, Alg. 2 L11)                value prefilter of ``expand`` is one
                                       vectorised comparison instead of a
                                       per-vertex Python check
"compute the k-core of C - {v}"        fast path: no neighbour of ``i`` has
(Alg. 1 L5, Alg. 2 L12's re-core)      induced degree k (``has_weak``) and
                                       ``i`` is not an articulation vertex
                                       (``articulation``) — the child is
                                       literally ``np.delete(ids, i)``;
                                       slow path: mask-peel cascade via
                                       :meth:`CSRAdjacency.peel_to_kcore`
                                       on the component-local CSR
"split into connected components"      :meth:`CSRAdjacency.components_of_
(Alg. 1 L5, Alg. 2 L12)                mask` frontier BFS over local ids
"f(H) for each child H"                sum family: ``parent_value`` minus
(Alg. 1 L6, Alg. 2 L13's f(H))         the removed weights, accumulated in
                                       ascending id order by the shared
                                       ``removal_loss`` helper so values
                                       are bit-identical to the set engine
duplicate detection                    Zobrist keys carried incrementally:
(Alg. 2's candidate list L)            ``parent_key ^ xor(tokens[removed])``

Candidate communities stay sorted int32 :class:`MemberArray` instances all
the way through the solver frontier; the frozenset-backed
:class:`~repro.influential.community.Community` is only materialised at
the result boundary (``ChildCandidate.to_community``).  On a G(50k, 400k)
random graph this engine is the difference between seconds and minutes per
query — see ``benchmarks/bench_solvers.py`` / ``BENCH_solver_expansion.json``.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator

import numpy as np

from repro.aggregators.base import Aggregator
from repro.graphs.csr import CSRAdjacency
from repro.graphs.graph import Graph
from repro.influential.expansion import (
    ChildCandidate,
    removal_loss,
    sum_alpha_of,
)
from repro.utils.parallel import expansion_executor
from repro.utils.zobrist import ZobristHasher

__all__ = ["MemberArray", "ComponentStructure", "CSRExpansionContext"]


class MemberArray:
    """A candidate community as a sorted int32 global-id array.

    Hash is the community's Zobrist key (consistent with equality: equal
    vertex sets always hash identically under one hasher; colliding keys
    are resolved by exact array comparison), so instances drop into the
    same dicts/sets/dedupers the set backend uses for frozensets.
    """

    __slots__ = ("ids", "key")

    def __init__(self, ids: np.ndarray, key: int) -> None:
        self.ids = ids
        self.key = key

    @classmethod
    def from_iterable(
        cls, vertices: Iterable[int], hasher: ZobristHasher
    ) -> "MemberArray":
        """Sorted id array plus from-scratch Zobrist key."""
        if isinstance(vertices, MemberArray):
            return vertices
        ids = np.fromiter(vertices, dtype=np.int64)
        ids.sort()
        if ids.size == 0 or ids[-1] <= np.iinfo(np.int32).max:
            ids = ids.astype(np.int32)
        return cls(ids, hasher.hash_members(ids))

    def __len__(self) -> int:
        return self.ids.size

    def __iter__(self) -> Iterator[int]:
        return iter(self.ids.tolist())

    def __hash__(self) -> int:
        return self.key

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MemberArray):
            return NotImplemented
        return self.ids.size == other.ids.size and bool(
            np.array_equal(self.ids, other.ids)
        )

    def to_frozenset(self) -> frozenset[int]:
        """Boundary conversion to the frozenset representation."""
        return frozenset(self.ids.tolist())

    def __repr__(self) -> str:
        return f"MemberArray(size={self.ids.size}, key={self.key:#x})"


class ComponentStructure:
    """Query-independent expansion state of one candidate community.

    Everything a :class:`CSRExpansionContext` derives from the *topology*
    (and the per-graph weight/token arrays) lives here: the component-local
    CSR, induced degrees, the ``has_weak`` cascade predicate, the lazily
    computed articulation mask, plus the gathered member weights and
    Zobrist tokens.  None of it depends on the aggregator, the parent
    value, or the query's ``r``/``eps`` — which is what makes a structure
    safe to cache and share across queries.  A structure is only valid for
    the ``k`` it was built with (``has_weak`` thresholds at exactly ``k``);
    the serving-layer engine pool keys its cache by ``(k, members)``.

    ``substructure`` relabels a community that lives *inside* this one
    against the component-local CSR instead of the global graph: pops that
    share a maximal k-core component never pay the global gather (or its
    O(n) membership heuristics) again.
    """

    __slots__ = (
        "members",
        "local",
        "degree",
        "local_weights",
        "local_tokens",
        "has_weak",
        "_articulation",
    )

    def __init__(
        self,
        members: MemberArray,
        local: CSRAdjacency,
        degree: np.ndarray,
        local_weights: np.ndarray,
        local_tokens: np.ndarray,
        has_weak: np.ndarray,
    ) -> None:
        self.members = members
        self.local = local
        self.degree = degree
        self.local_weights = local_weights
        self.local_tokens = local_tokens
        self.has_weak = has_weak
        # Articulation detection is the one per-component cost that cannot
        # be a numpy reduction; it is computed lazily because value-pruned
        # expansions (the steady state of Algorithm 2) never need it.
        self._articulation: np.ndarray | None = None

    @classmethod
    def build(
        cls, graph: Graph, members: MemberArray, k: int, hasher: ZobristHasher
    ) -> "ComponentStructure":
        """Structure of ``members`` relabelled against the global CSR."""
        ids64 = members.ids.astype(np.int64)
        local = graph.csr.induced_local(ids64)
        return cls._finish(
            members, local, k, graph.weights[ids64], hasher.tokens[ids64]
        )

    @classmethod
    def _finish(
        cls,
        members: MemberArray,
        local: CSRAdjacency,
        k: int,
        local_weights: np.ndarray,
        local_tokens: np.ndarray,
    ) -> "ComponentStructure":
        degree = local.degrees()
        # One vectorised pass computes, for every vertex, whether any
        # neighbour sits at induced degree exactly k (= removal cascades).
        c = len(members)
        owners = np.repeat(np.arange(c, dtype=np.int64), np.diff(local.indptr))
        weak_edge = degree[local.indices] == k
        has_weak = np.bincount(owners[weak_edge], minlength=c) > 0
        return cls(members, local, degree, local_weights, local_tokens, has_weak)

    def substructure(self, members: MemberArray, k: int) -> "ComponentStructure":
        """Structure of a community contained in this one.

        ``members`` must be a subset of ``self.members``; both are sorted,
        so one monotone searchsorted maps global ids to positions inside
        this component and the induced CSR is built from the (much
        smaller) component-local arrays.
        """
        pos = np.searchsorted(self.members.ids, members.ids).astype(np.int64)
        if pos.size and (
            pos[-1] >= self.members.ids.size
            or not np.array_equal(self.members.ids[pos], members.ids)
        ):
            raise ValueError(
                "substructure members are not a subset of the component"
            )
        local = self.local.induced_local(pos)
        return self._finish(
            members, local, k, self.local_weights[pos], self.local_tokens[pos]
        )

    def reweight(self, weights: np.ndarray) -> None:
        """Re-gather member weights after a ``with_weights``-style update.

        Topology, tokens, degrees and articulation are weight-independent,
        so a cached structure survives a weight update at the cost of one
        fancy-indexing gather.
        """
        self.local_weights = weights[self.members.ids.astype(np.int64)]

    @property
    def articulation(self) -> np.ndarray:
        """Boolean mask over local ids: True at articulation vertices."""
        if self._articulation is None:
            self._articulation = _articulation_mask(
                self.local.indptr, self.local.indices
            )
        return self._articulation

    def __repr__(self) -> str:
        return (
            f"ComponentStructure(size={len(self.members)}, "
            f"m={self.local.m})"
        )


class CSRExpansionContext:
    """Per-component expansion state over a component-local CSR.

    The drop-in array twin of
    :class:`~repro.influential.expansion.ExpansionContext`: same
    constructor shape, same ``expand`` / ``children_after_removal`` /
    ``min_removal_loss`` surface, children carrying identical values and
    Zobrist keys — the property suite holds the two in lockstep.

    The query-independent arrays live in a :class:`ComponentStructure`;
    passing a prebuilt ``structure`` (the serving-layer engine pool does)
    skips the relabelling entirely.  The context never mutates the
    structure's arrays, so one structure can back any number of
    concurrent contexts.
    """

    __slots__ = (
        "graph",
        "k",
        "members",
        "aggregator",
        "parent_value",
        "parent_key",
        "hasher",
        "structure",
        "_sum_alpha",
    )

    def __init__(
        self,
        graph: Graph,
        members,
        k: int,
        aggregator: Aggregator,
        parent_value: float,
        hasher: ZobristHasher,
        parent_key: int | None = None,
        structure: ComponentStructure | None = None,
    ) -> None:
        self.graph = graph
        self.k = k
        self.members = (
            structure.members
            if structure is not None
            else MemberArray.from_iterable(members, hasher)
        )
        self.aggregator = aggregator
        self.parent_value = parent_value
        self.hasher = hasher
        self.parent_key = (
            parent_key if parent_key is not None else self.members.key
        )
        if structure is None:
            structure = ComponentStructure.build(graph, self.members, k, hasher)
        self.structure = structure
        self._sum_alpha = sum_alpha_of(aggregator)

    # ------------------------------------------------------------------
    # Solver surface (global vertex ids, mirroring ExpansionContext)
    # ------------------------------------------------------------------
    @property
    def component(self) -> frozenset[int]:
        """Frozenset view of the component (debug/test convenience)."""
        return self.members.to_frozenset()

    @property
    def local(self) -> CSRAdjacency:
        """The component-local CSR (local id ``i`` = ``members.ids[i]``)."""
        return self.structure.local

    @property
    def degree(self) -> np.ndarray:
        """Induced degree per local id."""
        return self.structure.degree

    @property
    def local_weights(self) -> np.ndarray:
        """Member weights gathered into local id order."""
        return self.structure.local_weights

    @property
    def local_tokens(self) -> np.ndarray:
        """Member Zobrist tokens gathered into local id order."""
        return self.structure.local_tokens

    @property
    def has_weak(self) -> np.ndarray:
        """True at local ids whose removal cascades (a degree-k neighbour)."""
        return self.structure.has_weak

    @property
    def articulation(self) -> np.ndarray:
        """Boolean mask over local ids: True at articulation vertices."""
        return self.structure.articulation

    def min_removal_loss(self, v: int) -> float:
        """Lower bound on ``f(component) - f(child)`` for removals of ``v``
        (same contract and arithmetic as the set engine)."""
        if self._sum_alpha is None:
            return 0.0
        return float(self.graph.weights[v]) + self._sum_alpha

    def children_after_removal(self, v: int) -> list[ChildCandidate]:
        """Connected k-core components of ``component - {v}`` with values."""
        ids = self.members.ids
        i = int(np.searchsorted(ids, v))
        if i >= ids.size or ids[i] != v:
            raise KeyError(f"vertex {v} is not in the component")
        if not self.has_weak[i] and not self.articulation[i]:
            if ids.size - 1 <= self.k:
                return []
            return [self._fast_child(i)]
        return self._cascade_children(i)

    def expand(self, floor=float("-inf")) -> Iterator[ChildCandidate]:
        """All children of the component in one batched pass.

        Vertex order and per-child output order match the set engine's
        ``expand`` exactly, including the float-or-callable ``floor``
        contract (a callable floor must be non-decreasing across calls —
        see the set engine's docstring).  The initial prefilter, child
        values and child keys for fast-path removals are computed as
        whole-component vectors up front; a callable floor is then
        re-read per surviving removal (one scalar comparison) so a
        threshold that tightens mid-batch keeps pruning — only removals
        that clear the live bound materialise arrays.

        When the process-wide expansion pool is active (compiled kernels
        installed, or ``REPRO_EXPANSION_THREADS`` set — see
        :func:`repro.utils.parallel.expansion_executor`) and the batch
        carries more than one cascading removal, the per-removal child
        computations are dispatched to threads speculatively and replayed
        here in the original order, with the live floor applied at yield
        time — the emitted sequence is byte-identical to the sequential
        path; a floor that tightens mid-batch merely turns some
        already-computed children into discarded speculation.
        """
        ids = self.members.ids
        c = ids.size
        if c == 0:
            return
        floor_now = floor if callable(floor) else (lambda: floor)
        parent_value = self.parent_value
        start_floor = floor_now()
        if self._sum_alpha is not None:
            # Vectorised twin of the per-vertex min_removal_loss prefilter.
            losses = self.local_weights + self._sum_alpha
            eligible = np.flatnonzero(parent_value - losses >= start_floor)
        elif parent_value - 0.0 < start_floor:
            return
        else:
            losses = None
            eligible = np.arange(c, dtype=np.int64)
        if eligible.size == 0:
            return
        articulation = self.articulation
        has_weak = self.has_weak
        small = c - 1 <= self.k
        loss_list = losses[eligible].tolist() if losses is not None else None
        executor, window = expansion_executor()
        if executor is not None:
            cascades = int(
                np.count_nonzero(has_weak[eligible] | articulation[eligible])
            )
            if cascades >= 2:
                yield from self._expand_threaded(
                    eligible.tolist(),
                    loss_list,
                    floor_now,
                    small,
                    executor,
                    window,
                )
                return
        for pos, i in enumerate(eligible.tolist()):
            if loss_list is not None:
                if parent_value - loss_list[pos] < floor_now():
                    continue
            elif parent_value < floor_now():
                return
            if has_weak[i] or articulation[i]:
                yield from self._cascade_children(i)
            elif not small:
                yield self._fast_child(i)

    def _children_of_removal(self, i: int, small: bool) -> list[ChildCandidate]:
        """Children of removing local id ``i`` — the unit of threaded work.

        Reads only immutable structure arrays and allocates fresh
        scratch, so any number of these may run concurrently against one
        :class:`ComponentStructure` (``articulation`` is forced by the
        caller before dispatch, so the lazy init never races).
        """
        if self.has_weak[i] or self.articulation[i]:
            return self._cascade_children(i)
        if small:
            return []
        return [self._fast_child(i)]

    def _expand_threaded(
        self,
        eligible: list[int],
        loss_list: "list[float] | None",
        floor_now,
        small: bool,
        executor,
        window: int,
    ) -> Iterator[ChildCandidate]:
        """Speculative threaded expansion with in-order replay.

        A sliding window of at most ``window`` removals runs ahead on the
        pool; results are consumed strictly in submission order and the
        live floor is evaluated at the same point of the consumption
        sequence as the sequential path — identical output, with the
        pruned removals' work wasted rather than skipped (bounded by the
        window).  The compiled kernels release the GIL inside the peel
        and BFS loops, which is where the overlap comes from.
        """
        parent_value = self.parent_value
        pending: deque = deque()
        submitted = 0
        try:
            while submitted < len(eligible) or pending:
                while submitted < len(eligible) and len(pending) < window:
                    i = eligible[submitted]
                    pending.append(
                        (
                            submitted,
                            executor.submit(self._children_of_removal, i, small),
                        )
                    )
                    submitted += 1
                pos, future = pending.popleft()
                children = future.result()
                if loss_list is not None:
                    if parent_value - loss_list[pos] < floor_now():
                        continue
                elif parent_value < floor_now():
                    return
                yield from children
        finally:
            # An abandoned or floor-terminated generator must not leave
            # speculative work queued behind it on the shared pool.
            for __, future in pending:
                future.cancel()

    # ------------------------------------------------------------------
    # Child construction
    # ------------------------------------------------------------------
    def _fast_child(self, i: int) -> ChildCandidate:
        """No cascade, still connected: the child is ``C`` minus one id."""
        ids = self.members.ids
        key = self.parent_key ^ int(self.local_tokens[i])
        child = MemberArray(np.delete(ids, i), key)
        if self._sum_alpha is None:
            # Ascending member order, like the set engine's _value_of, so
            # the float summation sequence (and result) is identical.
            value = self.aggregator.value(self.graph, child.ids.tolist())
        else:
            # Same expression shape as the set engine's _value_of:
            # (parent - lost) - alpha * |removed|, with |removed| = 1.
            lost = float(self.local_weights[i])
            value = self.parent_value - lost - self._sum_alpha * 1
        return ChildCandidate(child, value, key)

    def _cascade_children(self, i: int) -> list[ChildCandidate]:
        """Localised cascade peel plus survivor split, all on local ids."""
        local, k = self.local, self.k
        c = self.members.ids.size
        mask = np.ones(c, dtype=bool)
        mask[i] = False
        degrees = self.degree.copy()
        degrees[local.neighbors(i)] -= 1
        local.peel_to_kcore(mask, k, degrees=degrees)
        survivors = np.flatnonzero(mask)
        if survivors.size <= k:
            return []
        pieces = local.components_of_mask(mask)
        removed_all = np.flatnonzero(~mask)
        ids = self.members.ids
        children = []
        for piece in pieces:
            if len(pieces) == 1:
                piece_removed = removed_all
            else:
                complement = np.ones(c, dtype=bool)
                complement[piece] = False
                piece_removed = np.flatnonzero(complement)
            removed_global = ids[piece_removed]
            key = self.hasher.toggle_many(self.parent_key, removed_global)
            child = MemberArray(ids[piece], key)
            if self._sum_alpha is None:
                value = self.aggregator.value(self.graph, child.ids.tolist())
            else:
                lost = removal_loss(self.graph.weights, removed_global)
                value = (
                    self.parent_value
                    - lost
                    - self._sum_alpha * len(piece_removed)
                )
            children.append(ChildCandidate(child, value, key))
        return children


def _articulation_mask(indptr: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Articulation vertices of a local CSR graph, as a boolean mask.

    The same iterative Tarjan lowpoint walk as the set engine, but over the
    flat CSR arrays with an explicit per-vertex edge cursor instead of
    per-frame neighbour iterators.  The arrays are converted to Python
    lists once: the walk is inherently sequential, and list indexing beats
    numpy scalar indexing several-fold in that regime.
    """
    n = len(indptr) - 1
    ip = indptr.tolist()
    idx = indices.tolist()
    visited = bytearray(n)
    articulation = bytearray(n)
    depth = [0] * n
    low = [0] * n
    parent = [-1] * n
    cursor = list(ip[:n])
    for root in range(n):
        if visited[root]:
            continue
        visited[root] = 1
        root_children = 0
        stack = [root]
        while stack:
            v = stack[-1]
            e = cursor[v]
            if e < ip[v + 1]:
                cursor[v] = e + 1
                u = idx[e]
                if u == parent[v]:
                    continue
                if visited[u]:
                    if depth[u] < low[v]:
                        low[v] = depth[u]
                else:
                    visited[u] = 1
                    parent[u] = v
                    depth[u] = depth[v] + 1
                    low[u] = depth[u]
                    if v == root:
                        root_children += 1
                    stack.append(u)
            else:
                stack.pop()
                p = parent[v]
                if p != -1:
                    if low[v] < low[p]:
                        low[p] = low[v]
                    if p != root and low[v] >= depth[p]:
                        articulation[p] = 1
        if root_children > 1:
            articulation[root] = 1
    return np.frombuffer(bytes(articulation), dtype=bool)
