"""Dataset access layer for the benchmark harness.

Datasets are the deterministic Table III stand-ins (see
:mod:`repro.graphs.generators.snap_like`); construction takes a second or
two each, so instances are memoised per process.  ``SMALL`` and ``LARGE``
mirror the paper's grouping (small datasets swept at k in {4..10}, large
ones at the scaled-down {8..20}).
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.decomposition import kmax
from repro.graphs.generators.snap_like import SNAP_LIKE_SPECS, snap_like_graph
from repro.graphs.graph import Graph
from repro.utils.tables import format_table

#: The paper's small/large grouping (Section VI "Parameters").
SMALL = ("domainpub", "email", "dblp", "youtube")
LARGE = ("orkut", "livejournal", "friendster")

#: Datasets used in the running-time figures (the paper plots 6 of the 7;
#: DomainPub only appears in Table III).
FIGURE_DATASETS = ("email", "dblp", "youtube", "orkut", "livejournal", "friendster")


@lru_cache(maxsize=None)
def get_dataset(name: str) -> Graph:
    """The weighted stand-in graph for ``name`` (memoised)."""
    return snap_like_graph(name)


def default_k(name: str) -> int:
    """The paper's default k for this dataset (4 small / scaled 8 large)."""
    return SNAP_LIKE_SPECS[name].default_k


def k_sweep(name: str) -> tuple[int, ...]:
    """The k values this dataset is swept over in the figures."""
    return SNAP_LIKE_SPECS[name].k_sweep


def dataset_statistics_table() -> str:
    """Render Table III: paper numbers beside the stand-in's measured ones."""
    rows = []
    for name, spec in SNAP_LIKE_SPECS.items():
        graph = get_dataset(name)
        rows.append(
            [
                name,
                f"{spec.paper_n:,}",
                f"{spec.paper_m:,}",
                spec.paper_dmax,
                spec.paper_davg,
                spec.paper_kmax,
                graph.n,
                graph.m,
                graph.max_degree,
                round(graph.avg_degree, 2),
                kmax(graph),
            ]
        )
    return format_table(
        [
            "dataset",
            "paper n", "paper m", "paper dmax", "paper davg", "paper kmax",
            "ours n", "ours m", "ours dmax", "ours davg", "ours kmax",
        ],
        rows,
        title="Table III — datasets (paper vs scaled stand-in)",
    )
