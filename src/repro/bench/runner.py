"""Timed sweep execution for the experiment definitions.

The paper plots running time against one swept parameter per figure, with
one curve per algorithm.  :class:`SweepResult` is that figure in data
form: a swept axis, a set of named series, and (optionally) a quality
metric per point (the Exp-VII figures plot the r-th influence value
instead of time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.bench.clock import Clock, perf_clock
from repro.utils.charts import ascii_chart
from repro.utils.tables import format_markdown_table, format_table


def time_call(
    fn: Callable[[], object], clock: "Clock | None" = None
) -> tuple[float, object]:
    """Run ``fn`` once, returning (wall seconds, result).

    ``clock`` is injectable (see :mod:`repro.bench.clock`) so tests pin
    timing logic deterministically; the default is the real
    ``time.perf_counter``.
    """
    clock = clock if clock is not None else perf_clock
    start = clock()
    result = fn()
    return clock() - start, result


@dataclass
class SweepResult:
    """One figure's worth of measurements.

    ``series[name][i]`` is the measurement of algorithm ``name`` at
    ``axis_values[i]`` — seconds for timing figures, an influence value
    for effectiveness figures.  ``None`` marks a skipped point (the
    paper's "missing point indicates the algorithm cannot terminate").
    """

    title: str
    axis_name: str
    axis_values: list[object]
    series: dict[str, list[float | None]] = field(default_factory=dict)
    unit: str = "seconds"
    notes: list[str] = field(default_factory=list)

    def add_point(self, series_name: str, value: float | None) -> None:
        """Append a measurement to a series (created on first use)."""
        self.series.setdefault(series_name, []).append(value)

    def _rows(self) -> list[list[object]]:
        rows = []
        for i, x in enumerate(self.axis_values):
            row: list[object] = [x]
            for name in self.series:
                values = self.series[name]
                value = values[i] if i < len(values) else None
                row.append("-" if value is None else value)
            rows.append(row)
        return rows

    def headers(self) -> list[str]:
        return [self.axis_name] + list(self.series)

    def render_text(self, chart: bool = True) -> str:
        table = format_table(self.headers(), self._rows(), title=self.title)
        if chart and self.series:
            drawing = ascii_chart(
                self.axis_values,
                self.series,
                log_scale=self.unit == "seconds",
                y_label=self.unit,
            )
            table += "\n" + drawing
        if self.notes:
            table += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        return table

    def render_markdown(self) -> str:
        parts = [f"### {self.title}", ""]
        parts.append(f"*unit: {self.unit}*")
        parts.append("")
        parts.append(format_markdown_table(self.headers(), self._rows()))
        for note in self.notes:
            parts.append("")
            parts.append(f"> {note}")
        return "\n".join(parts)


def run_sweep(
    title: str,
    axis_name: str,
    axis_values: list[object],
    algorithms: dict[str, Callable[[object], object]],
    unit: str = "seconds",
    measure: str = "time",
    skip: Callable[[str, object], bool] | None = None,
    clock: "Clock | None" = None,
) -> SweepResult:
    """Execute a (parameter x algorithm) grid.

    ``algorithms`` maps a series name to a callable of the swept value.
    With ``measure="time"`` the series record wall seconds; with
    ``measure="value"`` the callable's float return value is recorded (the
    Exp-VII quality metric).  ``skip(name, x)`` marks points to omit.
    ``clock`` threads through to :func:`time_call` for deterministic tests.
    """
    result = SweepResult(title, axis_name, list(axis_values), unit=unit)
    for x in axis_values:
        for name, fn in algorithms.items():
            if skip is not None and skip(name, x):
                result.add_point(name, None)
                continue
            seconds, returned = time_call(lambda: fn(x), clock=clock)
            if measure == "time":
                result.add_point(name, round(seconds, 6))
            else:
                result.add_point(
                    name, float(returned) if returned is not None else None
                )
    return result
