"""The declarative experiment grid: Section VI's evaluation as data.

The paper evaluates over a parameter grid (dataset × k × r × aggregator ×
ε); this repo's performance claims add three more axes — graph backend,
worker count, and *serving tier* (cold solver call, pooled
:class:`~repro.serving.service.QueryService`, precomputed index).  A
:class:`GridSpec` names one such grid declaratively; :func:`run_grid`
executes every cell best-of-N and appends the outcome to a
:class:`~repro.bench.history.HistoryDB`, keyed by
``(commit, config_hash, cell)`` with a done / error / skipped status per
cell — errors are recorded, never raised, so one broken cell cannot hide
the rest of the sweep.

Each done cell also records a digest of the *answer* it measured: cells
that differ only in engine axes (tier, backend, workers) must agree, and
the comparator (:func:`repro.bench.compare.compare_grid_runs`) fails the
run when they do not.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import asdict, dataclass, replace
from typing import Callable, Mapping

from repro.bench.clock import Clock
from repro.bench.history import CellRecord, HistoryDB
from repro.bench.runner import time_call

__all__ = [
    "GRIDS",
    "GridCell",
    "GridSpec",
    "grid_spec",
    "run_grid",
]


@dataclass(frozen=True)
class GridSpec:
    """One declarative grid.  Frozen: its JSON is the config hash."""

    name: str
    graphs: tuple[tuple[int, int], ...]  # (n, m) G(n, m) random graphs
    ks: tuple[int, ...]
    rs: tuple[int, ...]
    aggregators: tuple[str, ...]
    backends: tuple[str, ...]
    workers: tuple[int, ...]
    tiers: tuple[str, ...]  # "cold" | "service" | "index"
    #: Label-constraint axis: ``"none"`` or compact predicate specs like
    #: ``"eq:deg:high"`` / ``"any:deg:mid,deg:high"`` / ``"prefix:deg:"``
    #: evaluated against the executor's degree-tercile labels.
    constrained: tuple[str, ...] = ("none",)
    eps: float = 0.1
    seed: int = 7
    repeats: int = 3
    index_depth: int = 32

    def config_hash(self) -> str:
        """Fingerprint of the grid definition (not of any measurement)."""
        canonical = json.dumps(asdict(self), sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()

    def cells(self) -> list["GridCell"]:
        """Every cell, in deterministic enumeration order."""
        out = []
        for (n, m), k, r, f, backend, workers, tier, constrained in (
            itertools.product(
                self.graphs,
                self.ks,
                self.rs,
                self.aggregators,
                self.backends,
                self.workers,
                self.tiers,
                self.constrained,
            )
        ):
            out.append(
                GridCell(
                    n=n, m=m, k=k, r=r, aggregator=f, backend=backend,
                    workers=workers, tier=tier, eps=self.eps,
                    constrained=constrained,
                )
            )
        return out


@dataclass(frozen=True)
class GridCell:
    """One grid point; ``cell_id`` is its stable history key."""

    n: int
    m: int
    k: int
    r: int
    aggregator: str
    backend: str
    workers: int
    tier: str
    eps: float
    constrained: str = "none"

    @property
    def cell_id(self) -> str:
        # The constraint segment appears only when set, so unconstrained
        # cell ids (the history keys of every pre-axis run) stay stable.
        constraint = (
            "" if self.constrained == "none" else f"/c={self.constrained}"
        )
        return (
            f"g{self.n}x{self.m}/k{self.k}/r{self.r}/f={self.aggregator}"
            f"/b={self.backend}/w{self.workers}{constraint}/{self.tier}"
        )

    @property
    def axes(self) -> dict[str, object]:
        return {
            "graph": f"g{self.n}x{self.m}",
            "k": self.k,
            "r": self.r,
            "f": self.aggregator,
            "backend": self.backend,
            "workers": self.workers,
            "tier": self.tier,
            "eps": self.eps,
            "constrained": self.constrained,
        }

    def skip_reason(self) -> "str | None":
        """Why this cell is inapplicable (``None`` = runnable).

        The workers axis shards batches through the service tier only,
        and the precomputed index serves the sum aggregator — other
        combinations are recorded as ``skipped`` so the grid's shape
        stays visible in history.
        """
        if self.workers > 0 and self.tier != "service":
            return "workers axis applies to the service tier only"
        if self.tier == "index" and self.aggregator != "sum":
            return "index tier serves the sum aggregator only"
        if self.tier == "index" and self.constrained != "none":
            return "the precomputed index serves unconstrained queries only"
        return None


# ----------------------------------------------------------------------
# Named grids
# ----------------------------------------------------------------------
#: ``smoke`` exercises the machinery in seconds (CLI tests, local sanity);
#: ``ci`` is the gating PR-sized grid (small graph, both backends — the
#: cross-backend digest check rides on it); ``full`` is the nightly sweep.
#: The aggregator axis pairs ``sum`` (the headline expansion solvers +
#: index) with ``min`` (the minmax solver family); ``avg`` is excluded
#: from timed grids on purpose — its local-search solver runs minutes per
#: cell even on tiny graphs, which belongs in the paper-figure harness
#: (``repro bench --exp fig7``), not a gating sweep.
GRIDS: dict[str, GridSpec] = {
    "smoke": GridSpec(
        name="smoke",
        graphs=((200, 800),),
        ks=(3,),
        rs=(3,),
        aggregators=("sum",),
        backends=("csr",),
        workers=(0,),
        tiers=("cold", "service"),
        repeats=2,
    ),
    "ci": GridSpec(
        name="ci",
        graphs=((1_000, 8_000),),
        ks=(4, 8),
        rs=(5,),
        aggregators=("sum", "min"),
        backends=("csr", "set"),
        workers=(0,),
        tiers=("cold", "service", "index"),
        # The constrained leg gates the label-pushdown path per PR: same
        # digest across backends and tiers, timed like everything else.
        constrained=("none", "eq:deg:high"),
    ),
    "full": GridSpec(
        name="full",
        graphs=((8_000, 64_000), (50_000, 400_000)),
        ks=(4, 8, 16),
        rs=(5, 20),
        aggregators=("sum", "min"),
        backends=("csr",),
        workers=(0, 2),
        tiers=("cold", "service", "index"),
    ),
}


def grid_spec(name: str, repeats: "int | None" = None) -> GridSpec:
    """Look up a named grid, optionally overriding the repeat count."""
    if name not in GRIDS:
        known = ", ".join(sorted(GRIDS))
        raise ValueError(f"unknown grid {name!r}; expected one of: {known}")
    spec = GRIDS[name]
    if repeats is not None:
        spec = replace(spec, repeats=repeats)
    return spec


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CellOutcome:
    """What one executed cell measured."""

    run_seconds: tuple[float, ...]
    result_digest: "str | None" = None


class CellExecutor:
    """Default cell runner: real graphs, real solvers, real services.

    Graphs and services are cached across cells — one
    :class:`~repro.serving.service.QueryService` per (graph, backend),
    built outside any timed region, exactly like a warm deployment.
    """

    def __init__(self, spec: GridSpec, clock: "Clock | None" = None) -> None:
        self._spec = spec
        self._clock = clock
        self._graphs: dict[tuple[int, int], object] = {}
        self._services: dict[tuple[int, int, str], object] = {}
        self._indexed: dict[tuple[int, int, str], object] = {}

    def _graph(self, n: int, m: int):
        key = (n, m)
        if key not in self._graphs:
            from repro.graphs.generators.random_graphs import gnm_random_graph
            from repro.utils.rng import make_rng

            graph = gnm_random_graph(n, m, seed=self._spec.seed)
            rng = make_rng(self._spec.seed + 1)
            graph = graph.with_weights(rng.uniform(0.0, 100.0, graph.n))
            if any(value != "none" for value in self._spec.constrained):
                from repro.graphs.io import degree_quantile_labels

                graph = graph.with_labels(degree_quantile_labels(graph))
            graph.csr  # noqa: B018 — flatten once, outside every timing
            self._graphs[key] = graph
        return self._graphs[key]

    def _service(self, n: int, m: int, backend: str):
        key = (n, m, backend)
        if key not in self._services:
            from repro.serving.service import QueryService

            self._services[key] = QueryService(
                self._graph(n, m), backend=backend
            )
        return self._services[key]

    def _indexed_service(self, n: int, m: int, backend: str):
        key = (n, m, backend)
        if key not in self._indexed:
            from repro.serving.service import QueryService

            service = QueryService(self._graph(n, m), backend=backend)
            service.enable_index(depth=self._spec.index_depth)
            self._indexed[key] = service
        return self._indexed[key]

    def __call__(self, cell: GridCell) -> CellOutcome:
        if cell.tier == "cold":
            return self._run_cold(cell)
        if cell.tier in ("service", "index"):
            return self._run_served(cell)
        raise ValueError(f"unknown serving tier {cell.tier!r}")

    def _run_cold(self, cell: GridCell) -> CellOutcome:
        from repro.influential.api import top_r_communities

        graph = self._graph(cell.n, cell.m)
        labels = _constraint_spec(cell.constrained)
        times, result = [], None
        for __ in range(self._spec.repeats):
            seconds, result = time_call(
                lambda: top_r_communities(
                    graph, cell.k, cell.r, f=cell.aggregator,
                    eps=cell.eps, backend=cell.backend, labels=labels,
                ),
                clock=self._clock,
            )
            times.append(seconds)
        return CellOutcome(tuple(times), _digest(result))

    def _run_served(self, cell: GridCell) -> CellOutcome:
        from repro.serving.query import InfluentialQuery

        if cell.tier == "index":
            service = self._indexed_service(cell.n, cell.m, cell.backend)
        else:
            service = self._service(cell.n, cell.m, cell.backend)
        predicate = _constraint_spec(cell.constrained)
        constraints = None if predicate is None else {"labels": predicate}
        query = InfluentialQuery(
            k=cell.k, r=cell.r, f=cell.aggregator, eps=cell.eps,
            constraints=constraints,
        )
        if cell.workers > 0:
            # Sharded batches need distinct queries to spread: an r-sweep
            # around the cell's query is the smallest honest workload.
            batch = [
                InfluentialQuery(
                    k=cell.k, r=rank, f=cell.aggregator, eps=cell.eps,
                    constraints=constraints,
                )
                for rank in range(1, 2 * cell.workers + 1)
            ]
            def solve():
                return service.submit_many(batch, workers=cell.workers)
        else:
            def solve():
                return service.submit(query)
        solve()  # warm the engine pool / index outside every timed repeat
        times, result = [], None
        for __ in range(self._spec.repeats):
            # Invalidate the result cache each repeat so the measurement is
            # the pool-warm serving path, not a dict hit.
            service.invalidate()
            seconds, returned = time_call(solve, clock=self._clock)
            times.append(seconds)
            result = returned
        if cell.workers > 0:
            answer = service.submit(query)  # digest the cell's own query
        else:
            answer = result
        return CellOutcome(tuple(times), _digest(answer))


def _constraint_spec(value: str) -> "dict | None":
    """Parse one ``constrained`` axis value into a labels-predicate spec.

    ``"none"`` means unconstrained; otherwise the value is
    ``kind:argument`` where kind is a predicate kind — the argument may
    itself contain colons (labels like ``deg:high``), and ``any`` takes a
    comma-separated label list.
    """
    if value == "none":
        return None
    kind, __, argument = value.partition(":")
    if kind == "eq":
        return {"eq": argument}
    if kind == "prefix":
        return {"prefix": argument}
    if kind == "any":
        return {"any": argument.split(",")}
    raise ValueError(
        f"unknown constrained axis value {value!r}; expected 'none' or "
        f"'eq:LABEL' / 'prefix:PREFIX' / 'any:LABEL,LABEL,...'"
    )


def _digest(result) -> "str | None":
    """A canonical fingerprint of one answer (value + member sets)."""
    if result is None:
        return None
    payload = [
        [round(float(value), 9), sorted(members)]
        for value, members in zip(result.values(), result.vertex_sets())
    ]
    return hashlib.sha256(json.dumps(payload).encode()).hexdigest()


def run_grid(
    spec: GridSpec,
    db: "HistoryDB | str",
    commit: str,
    started_at: str,
    runner: "Callable[[GridCell], CellOutcome] | None" = None,
    clock: "Clock | None" = None,
    meta: "Mapping[str, object] | None" = None,
    log: "Callable[[str], None] | None" = None,
) -> int:
    """Execute every cell of ``spec`` and append one run to ``db``.

    ``runner`` is injectable (tests pin the timing bookkeeping with a
    fake); the default :class:`CellExecutor` measures real solves with
    ``clock`` threaded into every :func:`~repro.bench.runner.time_call`.
    Returns the recorded run id.
    """
    owns = not isinstance(db, HistoryDB)
    history = db if isinstance(db, HistoryDB) else HistoryDB(db)
    execute = runner if runner is not None else CellExecutor(spec, clock)
    records = []
    for cell in spec.cells():
        reason = cell.skip_reason()
        if reason is not None:
            records.append(
                CellRecord(
                    cell_id=cell.cell_id, axes=cell.axes, status="skipped",
                    error=reason,
                )
            )
            continue
        if log is not None:
            log(f"grid[{spec.name}] {cell.cell_id} ...")
        try:
            outcome = execute(cell)
        except Exception as exc:  # recorded, never raised: see module doc
            records.append(
                CellRecord(
                    cell_id=cell.cell_id, axes=cell.axes, status="error",
                    error=f"{type(exc).__name__}: {exc}",
                )
            )
            continue
        records.append(
            CellRecord(
                cell_id=cell.cell_id,
                axes=cell.axes,
                status="done",
                best_seconds=min(outcome.run_seconds),
                run_seconds=outcome.run_seconds,
                result_digest=outcome.result_digest,
            )
        )
    try:
        return history.record_run(
            grid_name=spec.name,
            config_hash=spec.config_hash(),
            commit_sha=commit,
            started_at=started_at,
            cells=records,
            meta=meta,
        )
    finally:
        if owns:
            history.close()
