"""Experiment definitions — one per table/figure of the paper's Section VI.

Each experiment builds the paper's parameter grid on the stand-in datasets
and produces one :class:`~repro.bench.runner.SweepResult` panel per dataset
(the paper's figures are 6-panel rows).  ``run_experiments`` assembles the
requested experiments into a report that renders as plain text (terminal)
or Markdown (EXPERIMENTS.md).

Protocol notes mirroring the paper (Section VI "Parameters"):

* defaults: eps = 0.1, r = 5, s = 20;
* default k: 4 on small datasets; the large datasets use the scaled sweep
  {8, 12, 16, 20} in place of the paper's {40, 50, 100, 200} (DESIGN.md);
* a missing point means the algorithm was skipped at that setting (the
  paper's convention for > 1 day runs; ours is a per-call time budget);
* Figures 10-11 sweep s in {5, 10, 15, 20}; combinations with s < k + 1
  are infeasible by definition (a k-core needs k + 1 vertices) and are
  skipped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.bench import datasets as ds
from repro.bench.runner import SweepResult, run_sweep
from repro.influential.improved import tic_improved
from repro.influential.local_search import local_search
from repro.influential.naive_sum import sum_naive

#: Paper defaults.
DEFAULT_R = 5
DEFAULT_S = 20
DEFAULT_EPS = 0.1
EPS_SWEEP = (0.01, 0.05, 0.1, 0.2, 0.5)
R_SWEEP = (5, 10, 15, 20)
S_SWEEP = (5, 10, 15, 20)

#: Datasets where SUM-NAIVE is given a seat despite its cost; elsewhere it
#: is only run at k values that shrink the core (mirroring the paper's
#: missing points).
_NAIVE_SLOW_DATASETS = {"youtube", "orkut", "livejournal", "friendster"}


@dataclass
class ExperimentReport:
    """All panels of one paper figure/table plus context."""

    key: str
    title: str
    paper_shape: str
    panels: list[SweepResult] = field(default_factory=list)
    preamble: str | None = None

    def render_text(self) -> str:
        parts = [f"== {self.key}: {self.title} =="]
        if self.preamble:
            parts.append(self.preamble)
        for panel in self.panels:
            parts.append(panel.render_text())
        parts.append(f"paper shape: {self.paper_shape}")
        return "\n\n".join(parts)

    def render_markdown(self) -> str:
        parts = [f"## {self.key} — {self.title}", ""]
        if self.preamble:
            parts.append("```")
            parts.append(self.preamble)
            parts.append("```")
            parts.append("")
        for panel in self.panels:
            parts.append(panel.render_markdown())
            parts.append("")
        parts.append(f"**Paper shape:** {self.paper_shape}")
        return "\n".join(parts)


def _figure_datasets(quick: bool) -> tuple[str, ...]:
    return ("email", "dblp") if quick else ds.FIGURE_DATASETS


def _k_axis(name: str, quick: bool) -> tuple[int, ...]:
    sweep = ds.k_sweep(name)
    return sweep[:2] if quick else sweep


def _skip_naive(name: str, k: int) -> bool:
    """Mirror the paper's missing points: SUM-NAIVE explores every top-r
    community exhaustively and is unaffordable on the larger stand-ins at
    the smallest k (where the k-core is near-global).  Skip those cells."""
    return name in _NAIVE_SLOW_DATASETS and k <= min(ds.k_sweep(name))


# ----------------------------------------------------------------------
# Table III
# ----------------------------------------------------------------------
def exp_table3(quick: bool = False) -> ExperimentReport:
    """Dataset statistics, paper vs stand-in."""
    report = ExperimentReport(
        key="table3",
        title="Datasets",
        paper_shape=(
            "seven datasets ordered by size with Orkut densest and "
            "FriendSter largest; stand-ins preserve the ordering at ~1/1000 "
            "scale with power-law degrees and non-trivial kmax"
        ),
        preamble=ds.dataset_statistics_table(),
    )
    return report


# ----------------------------------------------------------------------
# Exp-I / Exp-II: Figures 2-3 (sum, size-unconstrained)
# ----------------------------------------------------------------------
def exp_fig2(quick: bool = False) -> ExperimentReport:
    """Running time vs k — Naive / Improve / Approx."""
    report = ExperimentReport(
        key="fig2",
        title="Running time vs k (sum, size-unconstrained)",
        paper_shape=(
            "Naive slowest by 1-3 orders of magnitude and getting faster as "
            "k grows (smaller cores); Improve and Approx comparable, with "
            "Approx at or below Improve everywhere"
        ),
    )
    for name in _figure_datasets(quick):
        graph = ds.get_dataset(name)
        panel = run_sweep(
            title=f"{name}: time vs k",
            axis_name="k",
            axis_values=list(_k_axis(name, quick)),
            algorithms={
                "naive": lambda k, g=graph: sum_naive(g, k, DEFAULT_R),
                "improve": lambda k, g=graph: tic_improved(g, k, DEFAULT_R),
                "approx": lambda k, g=graph: tic_improved(
                    g, k, DEFAULT_R, eps=DEFAULT_EPS
                ),
            },
            skip=lambda alg, k, n=name: alg == "naive" and _skip_naive(n, k),
        )
        report.panels.append(panel)
    return report


def exp_fig3(quick: bool = False) -> ExperimentReport:
    """Running time vs r — Naive / Improve / Approx."""
    report = ExperimentReport(
        key="fig3",
        title="Running time vs r (sum, size-unconstrained)",
        paper_shape=(
            "all three algorithms grow mildly with r (more communities to "
            "output); relative ordering Naive >> Improve >= Approx unchanged"
        ),
    )
    r_values = R_SWEEP[:2] if quick else R_SWEEP
    for name in _figure_datasets(quick):
        graph = ds.get_dataset(name)
        k = ds.default_k(name)
        panel = run_sweep(
            title=f"{name}: time vs r (k={k})",
            axis_name="r",
            axis_values=list(r_values),
            algorithms={
                "naive": lambda r, g=graph, k=k: sum_naive(g, k, r),
                "improve": lambda r, g=graph, k=k: tic_improved(g, k, r),
                "approx": lambda r, g=graph, k=k: tic_improved(
                    g, k, r, eps=DEFAULT_EPS
                ),
            },
            skip=lambda alg, r, n=name, k=k: alg == "naive" and _skip_naive(n, k),
        )
        report.panels.append(panel)
    return report


# ----------------------------------------------------------------------
# Exp-III: Figures 4-5 (impact of eps)
# ----------------------------------------------------------------------
def exp_fig4(quick: bool = False) -> ExperimentReport:
    """Approx running time vs k for several eps."""
    report = ExperimentReport(
        key="fig4",
        title="Running time vs k for eps in {0.01..0.5} (sum)",
        paper_shape=(
            "curves for different eps nearly coincide — the approximate "
            "algorithm is insensitive to eps because the top-r communities "
            "are confirmed within the first r expansions"
        ),
    )
    eps_values = EPS_SWEEP[:2] if quick else EPS_SWEEP
    for name in _figure_datasets(quick):
        graph = ds.get_dataset(name)
        panel = run_sweep(
            title=f"{name}: approx time vs k",
            axis_name="k",
            axis_values=list(_k_axis(name, quick)),
            algorithms={
                f"eps={eps}": lambda k, g=graph, e=eps: tic_improved(
                    g, k, DEFAULT_R, eps=e
                )
                for eps in eps_values
            },
        )
        report.panels.append(panel)
    return report


def exp_fig5(quick: bool = False) -> ExperimentReport:
    """Approx running time vs r for several eps."""
    report = ExperimentReport(
        key="fig5",
        title="Running time vs r for eps in {0.01..0.5} (sum)",
        paper_shape="flat in eps, mildly increasing in r",
    )
    eps_values = EPS_SWEEP[:2] if quick else EPS_SWEEP
    r_values = R_SWEEP[:2] if quick else R_SWEEP
    for name in _figure_datasets(quick):
        graph = ds.get_dataset(name)
        k = ds.default_k(name)
        panel = run_sweep(
            title=f"{name}: approx time vs r (k={k})",
            axis_name="r",
            axis_values=list(r_values),
            algorithms={
                f"eps={eps}": lambda r, g=graph, e=eps, k=k: tic_improved(
                    g, k, r, eps=e
                )
                for eps in eps_values
            },
        )
        report.panels.append(panel)
    return report


# ----------------------------------------------------------------------
# Exp-IV..VI: Figures 6-11 (local search, size-constrained)
# ----------------------------------------------------------------------
def _local_search_panel(
    name: str,
    axis_name: str,
    axis_values: list[object],
    call: Callable[[object, bool], object],
    measure: str = "time",
    unit: str = "seconds",
    title_suffix: str = "",
) -> SweepResult:
    return run_sweep(
        title=f"{name}: {axis_name} sweep{title_suffix}",
        axis_name=axis_name,
        axis_values=axis_values,
        algorithms={
            "random": lambda x: call(x, False),
            "greedy": lambda x: call(x, True),
        },
        measure=measure,
        unit=unit,
    )


def _fig_constrained_vs_k(f: str, key: str, quick: bool) -> ExperimentReport:
    report = ExperimentReport(
        key=key,
        title=f"Running time vs k ({f}, size-constrained, s={DEFAULT_S})",
        paper_shape=(
            "time decreases as k grows (smaller k-core, fewer seeds); "
            "greedy carries a sorting overhead but stays within a small "
            "factor of random"
        ),
    )
    for name in _figure_datasets(quick):
        graph = ds.get_dataset(name)
        panel = run_sweep(
            title=f"{name}: k sweep ({f})",
            axis_name="k",
            axis_values=list(_k_axis(name, quick)),
            algorithms={
                "random": lambda k, g=graph: local_search(
                    g, int(k), DEFAULT_R, DEFAULT_S, f, greedy=False
                ),
                "greedy": lambda k, g=graph: local_search(
                    g, int(k), DEFAULT_R, DEFAULT_S, f, greedy=True
                ),
            },
            # k + 1 > s cannot hold a k-core: skipped (paper's large-k cells
            # are degenerate for the same reason).
            skip=lambda alg, k: int(k) + 1 > DEFAULT_S,
        )
        report.panels.append(panel)
    return report


def exp_fig6(quick: bool = False) -> ExperimentReport:
    """Exp-IV, sum."""
    return _fig_constrained_vs_k("sum", "fig6", quick)


def exp_fig7(quick: bool = False) -> ExperimentReport:
    """Exp-IV, avg."""
    return _fig_constrained_vs_k("avg", "fig7", quick)


def _fig_constrained_vs_r(f: str, key: str, quick: bool) -> ExperimentReport:
    report = ExperimentReport(
        key=key,
        title=f"Running time vs r ({f}, size-constrained, s={DEFAULT_S})",
        paper_shape=(
            "essentially flat in r — local search always computes more than "
            "r candidates, so the output size does not drive the cost"
        ),
    )
    r_values = list(R_SWEEP[:2] if quick else R_SWEEP)
    for name in _figure_datasets(quick):
        graph = ds.get_dataset(name)
        k = ds.default_k(name)
        panel = _local_search_panel(
            name,
            "r",
            r_values,
            lambda r, greedy, g=graph, k=k: local_search(
                g, k, int(r), DEFAULT_S, f, greedy=greedy
            ),
            title_suffix=f" ({f}, k={k})",
        )
        report.panels.append(panel)
    return report


def exp_fig8(quick: bool = False) -> ExperimentReport:
    """Exp-V, sum."""
    return _fig_constrained_vs_r("sum", "fig8", quick)


def exp_fig9(quick: bool = False) -> ExperimentReport:
    """Exp-V, avg."""
    return _fig_constrained_vs_r("avg", "fig9", quick)


def _fig_constrained_vs_s(f: str, key: str, quick: bool) -> ExperimentReport:
    report = ExperimentReport(
        key=key,
        title=f"Running time vs s ({f}, size-constrained)",
        paper_shape=(
            "time increases with s (each seed explores a larger "
            "neighbourhood); infeasible cells (s < k + 1) are skipped"
        ),
    )
    s_values = list(S_SWEEP[:2] if quick else S_SWEEP)
    for name in _figure_datasets(quick):
        graph = ds.get_dataset(name)
        # The s sweep goes down to 5, so use k = 4 on every dataset (the
        # paper's large-dataset default k = 40 would make every cell
        # infeasible at s <= 20).
        k = 4
        panel = run_sweep(
            title=f"{name}: time vs s ({f}, k={k})",
            axis_name="s",
            axis_values=s_values,
            algorithms={
                "random": lambda s, g=graph: local_search(
                    g, k, DEFAULT_R, int(s), f, greedy=False
                ),
                "greedy": lambda s, g=graph: local_search(
                    g, k, DEFAULT_R, int(s), f, greedy=True
                ),
            },
            skip=lambda alg, s: int(s) < k + 1,
        )
        report.panels.append(panel)
    return report


def exp_fig10(quick: bool = False) -> ExperimentReport:
    """Exp-VI, sum."""
    return _fig_constrained_vs_s("sum", "fig10", quick)


def exp_fig11(quick: bool = False) -> ExperimentReport:
    """Exp-VI, avg."""
    return _fig_constrained_vs_s("avg", "fig11", quick)


# ----------------------------------------------------------------------
# Exp-VII: Figures 12-13 (effectiveness: r-th influence value)
# ----------------------------------------------------------------------
def _fig_effectiveness(
    f: str, key: str, names: tuple[str, ...], quick: bool
) -> ExperimentReport:
    report = ExperimentReport(
        key=key,
        title=f"r-th influence value vs k ({f}, size-constrained, "
        f"r={DEFAULT_R}, s={DEFAULT_S})",
        paper_shape=(
            "greedy's r-th influence value is consistently at or above "
            "random's — sorting each neighbourhood by weight concentrates "
            "heavy vertices into the bounded-size candidates"
        ),
    )
    if quick:
        names = names[:1]
    for name in names:
        graph = ds.get_dataset(name)
        panel = run_sweep(
            title=f"{name}: r-th value vs k ({f})",
            axis_name="k",
            axis_values=list(_k_axis(name, quick)),
            algorithms={
                "random": lambda k, g=graph: local_search(
                    g, int(k), DEFAULT_R, DEFAULT_S, f, greedy=False
                ).rth_value(DEFAULT_R),
                "greedy": lambda k, g=graph: local_search(
                    g, int(k), DEFAULT_R, DEFAULT_S, f, greedy=True
                ).rth_value(DEFAULT_R),
            },
            measure="value",
            unit=f"influence value ({f})",
            skip=lambda alg, k: int(k) + 1 > DEFAULT_S,
        )
        report.panels.append(panel)
    return report


def exp_fig12(quick: bool = False) -> ExperimentReport:
    """Exp-VII for sum on the paper's panel datasets (DBLP/Orkut/LiveJournal)."""
    return _fig_effectiveness("sum", "fig12", ("dblp", "orkut", "livejournal"), quick)


def exp_fig13(quick: bool = False) -> ExperimentReport:
    """Exp-VII for avg on the paper's panel datasets (Email/Youtube/FriendSter)."""
    return _fig_effectiveness("avg", "fig13", ("email", "youtube", "friendster"), quick)


# ----------------------------------------------------------------------
# Fig 14: case study
# ----------------------------------------------------------------------
def exp_case(quick: bool = False) -> ExperimentReport:
    """The Aminer case study (delegates to repro.bench.case_study)."""
    from repro.bench.case_study import render_case_study, run_case_study

    report = ExperimentReport(
        key="fig14",
        title="Case study: top-3 non-overlapping communities (Aminer, k=4)",
        paper_shape=(
            "min selects uniformly-cited groups, avg selects small elite "
            "groups, sum selects larger diverse groups; the three "
            "aggregators surface different research communities"
        ),
        preamble=render_case_study(run_case_study()),
    )
    return report


# ----------------------------------------------------------------------
# Substrate ablation (not a paper figure; engineering due diligence)
# ----------------------------------------------------------------------
def exp_substrates(quick: bool = False) -> ExperimentReport:
    """Throughput of the building blocks on each dataset."""
    from repro.centrality.pagerank import pagerank
    from repro.core.decomposition import core_decomposition
    from repro.core.kcore import connected_kcore_components

    report = ExperimentReport(
        key="substrates",
        title="Substrate costs (core decomposition, PageRank, components)",
        paper_shape=(
            "not in the paper — included to document where solver time "
            "goes: core decomposition and PageRank are linear-ish and "
            "cheap relative to community search"
        ),
    )
    names = _figure_datasets(quick)
    panel = run_sweep(
        title="substrate seconds per dataset",
        axis_name="dataset",
        axis_values=list(names),
        algorithms={
            "core-decomposition": lambda n: core_decomposition(ds.get_dataset(n)),
            "pagerank": lambda n: pagerank(ds.get_dataset(n)),
            "kcore-components": lambda n: connected_kcore_components(
                ds.get_dataset(n), range(ds.get_dataset(n).n), ds.default_k(n)
            ),
        },
    )
    report.panels.append(panel)
    return report


#: Registry: experiment key -> builder.
EXPERIMENTS: dict[str, Callable[[bool], ExperimentReport]] = {
    "table3": exp_table3,
    "fig2": exp_fig2,
    "fig3": exp_fig3,
    "fig4": exp_fig4,
    "fig5": exp_fig5,
    "fig6": exp_fig6,
    "fig7": exp_fig7,
    "fig8": exp_fig8,
    "fig9": exp_fig9,
    "fig10": exp_fig10,
    "fig11": exp_fig11,
    "fig12": exp_fig12,
    "fig13": exp_fig13,
    "fig14": exp_case,
    "case": exp_case,
    "substrates": exp_substrates,
}


@dataclass
class CombinedReport:
    """A batch of experiment reports, renderable as one document."""

    reports: list[ExperimentReport]

    def render_text(self) -> str:
        return "\n\n\n".join(r.render_text() for r in self.reports)

    def render_markdown(self) -> str:
        header = (
            "# EXPERIMENTS — paper vs measured\n\n"
            "Generated by `python -m repro bench --exp all`.  All datasets "
            "are the scaled synthetic stand-ins of DESIGN.md Section 4; "
            "compare *shapes* (who wins, trends), not absolute numbers.\n"
        )
        return header + "\n\n".join(r.render_markdown() for r in self.reports)


def run_experiments(exp: str = "all", quick: bool = False) -> CombinedReport:
    """Run one experiment by key, or every figure/table with ``"all"``."""
    if exp == "all":
        keys = [k for k in EXPERIMENTS if k != "case"]  # fig14 alias covers it
    else:
        if exp not in EXPERIMENTS:
            from repro.errors import DatasetError

            known = ", ".join(sorted(EXPERIMENTS))
            raise DatasetError(f"unknown experiment {exp!r}; known: {known}, all")
        keys = [exp]
    return CombinedReport([EXPERIMENTS[key](quick) for key in keys])
