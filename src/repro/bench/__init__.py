"""Benchmark harness reproducing the paper's Section VI evaluation.

* :mod:`repro.bench.datasets` — cached construction of the Table III
  stand-in datasets;
* :mod:`repro.bench.runner` — timed parameter sweeps;
* :mod:`repro.bench.experiments` — one definition per paper table/figure
  (Exp-I .. Exp-VII), producing text/Markdown reports;
* :mod:`repro.bench.case_study` — the Fig 14 Aminer case study;
* :mod:`repro.bench.grid` / :mod:`repro.bench.history` /
  :mod:`repro.bench.compare` / :mod:`repro.bench.report` — the regression
  harness: a declarative experiment grid executed into sqlite history,
  judged by a gating noise-band comparator (``repro bench grid ...``).

The same experiment definitions back both the standalone harness
(``python -m repro bench``) and the pytest-benchmark wrappers in
``benchmarks/``.
"""

from repro.bench.clock import ManualClock
from repro.bench.compare import (
    ComparisonReport,
    compare_grid_runs,
    compare_ratio_metrics,
    compare_value,
    load_waivers,
)
from repro.bench.datasets import get_dataset, dataset_statistics_table
from repro.bench.experiments import EXPERIMENTS, run_experiments
from repro.bench.grid import GRIDS, GridSpec, grid_spec, run_grid
from repro.bench.history import CellRecord, HistoryDB
from repro.bench.runner import SweepResult, time_call

__all__ = [
    "EXPERIMENTS",
    "GRIDS",
    "CellRecord",
    "ComparisonReport",
    "GridSpec",
    "HistoryDB",
    "ManualClock",
    "SweepResult",
    "compare_grid_runs",
    "compare_ratio_metrics",
    "compare_value",
    "dataset_statistics_table",
    "get_dataset",
    "grid_spec",
    "load_waivers",
    "run_experiments",
    "run_grid",
    "time_call",
]
