"""Benchmark harness reproducing the paper's Section VI evaluation.

* :mod:`repro.bench.datasets` — cached construction of the Table III
  stand-in datasets;
* :mod:`repro.bench.runner` — timed parameter sweeps;
* :mod:`repro.bench.experiments` — one definition per paper table/figure
  (Exp-I .. Exp-VII), producing text/Markdown reports;
* :mod:`repro.bench.case_study` — the Fig 14 Aminer case study.

The same experiment definitions back both the standalone harness
(``python -m repro bench``) and the pytest-benchmark wrappers in
``benchmarks/``.
"""

from repro.bench.datasets import get_dataset, dataset_statistics_table
from repro.bench.experiments import EXPERIMENTS, run_experiments
from repro.bench.runner import SweepResult, time_call

__all__ = [
    "EXPERIMENTS",
    "SweepResult",
    "dataset_statistics_table",
    "get_dataset",
    "run_experiments",
    "time_call",
]
