"""The gating regression comparator.

Everything CI gates on funnels through this module:

* :func:`compare_value` — one metric against one baseline value, with a
  tolerance and a *noise band* derived from best-of-N spread.  Higher- and
  lower-is-better metrics share one rule; a fresh value at least as good
  as its baseline can never be flagged (improvement asymmetry).
* :func:`compare_ratio_metrics` — the per-bench ``--baseline`` diff the
  ``benchmarks/bench_*.py`` emitters run (ratios only, band zero), now
  returning a hard PASS/FAIL :class:`ComparisonReport` instead of the old
  warn-only exit 0.
* :func:`compare_grid_runs` — two experiment-grid history databases
  (:mod:`repro.bench.history`): cell statuses, cross-tier/backend answer
  digests, and tier-speedup ratios under the noise band.

Intentional regressions are acknowledged in a *waiver file*
(``benchmarks/waivers.json``): a matching waiver flips a ``regressed``
metric to ``waived`` — still rendered, but not failing the build.  Every
waiver carries a human reason; there is no silent opt-out.
"""

from __future__ import annotations

import fnmatch
import json
import pathlib
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.bench.history import CellRecord, HistoryDB, RunRecord

__all__ = [
    "ComparisonReport",
    "MetricVerdict",
    "Waiver",
    "compare_grid_runs",
    "compare_ratio_metrics",
    "compare_value",
    "load_waivers",
]

#: Default regression tolerance: a ratio below 70% of baseline regresses.
DEFAULT_TOLERANCE = 0.7
#: Noise bands wider than this are capped — a benchmark so noisy that the
#: band would excuse any slowdown must be fixed, not auto-waived.
MAX_NOISE_BAND = 0.5

_OK = "ok"
_REGRESSED = "regressed"
_WAIVED = "waived"
_SKIPPED = "skipped"


@dataclass(frozen=True)
class Waiver:
    """One acknowledged regression: glob patterns plus a mandatory reason."""

    bench: str
    metric: str
    reason: str

    def matches(self, bench: str, metric: str) -> bool:
        return fnmatch.fnmatchcase(bench, self.bench) and fnmatch.fnmatchcase(
            metric, self.metric
        )


def load_waivers(path: "str | pathlib.Path | None") -> tuple[Waiver, ...]:
    """Parse a waiver file; a missing path is an empty waiver set.

    Format: ``{"waivers": [{"bench": ..., "metric": ..., "reason": ...}]}``
    with fnmatch globs in ``bench``/``metric``.  Entries without a
    non-empty reason are rejected — the file documents *why* a regression
    was accepted, not just that it was.
    """
    if path is None:
        return ()
    path = pathlib.Path(path)
    if not path.exists():
        return ()
    payload = json.loads(path.read_text())
    waivers = []
    for entry in payload.get("waivers", []):
        reason = str(entry.get("reason", "")).strip()
        if not reason:
            raise ValueError(f"waiver {entry!r} has no reason")
        waivers.append(
            Waiver(
                bench=str(entry["bench"]),
                metric=str(entry["metric"]),
                reason=reason,
            )
        )
    return tuple(waivers)


@dataclass(frozen=True)
class MetricVerdict:
    """One compared metric and its outcome."""

    metric: str
    status: str  # ok | regressed | waived | skipped
    fresh: "float | None" = None
    baseline: "float | None" = None
    threshold: "float | None" = None
    detail: str = ""


@dataclass
class ComparisonReport:
    """The comparator's full output for one bench (or grid) run."""

    bench: str
    metrics: list[MetricVerdict] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    context: dict[str, str] = field(default_factory=dict)
    tolerance: float = DEFAULT_TOLERANCE

    @property
    def regressions(self) -> list[MetricVerdict]:
        return [m for m in self.metrics if m.status == _REGRESSED]

    @property
    def waived(self) -> list[MetricVerdict]:
        return [m for m in self.metrics if m.status == _WAIVED]

    @property
    def verdict(self) -> str:
        return "FAIL" if self.regressions else "PASS"

    @property
    def exit_code(self) -> int:
        return 1 if self.regressions else 0


def compare_value(
    metric: str,
    fresh: float,
    baseline: float,
    tolerance: float = DEFAULT_TOLERANCE,
    band: float = 0.0,
    higher_is_better: bool = True,
    detail: str = "",
) -> MetricVerdict:
    """Judge one metric against its baseline.

    ``tolerance`` is the accepted fraction of the baseline (0.7 = up to a
    30% drop passes); ``band`` is the relative best-of-N noise estimate,
    which *widens* the allowance — never narrows it.  The rule, for
    higher-is-better metrics::

        regressed  iff  fresh < baseline * tolerance / (1 + band)

    and mirrored (``fresh > baseline / tolerance * (1 + band)``) when
    lower is better.  Two properties hold by construction and are pinned
    by the Hypothesis suite: a fresh value at least as good as its
    baseline never regresses (``tolerance <= 1``, ``band >= 0``), and the
    verdict is monotone in the fresh value.
    """
    if not 0.0 < tolerance <= 1.0:
        raise ValueError(f"tolerance must be in (0, 1], got {tolerance}")
    if band < 0.0:
        raise ValueError(f"noise band must be >= 0, got {band}")
    band = min(float(band), MAX_NOISE_BAND)
    fresh_value, base_value = float(fresh), float(baseline)
    if higher_is_better:
        threshold = base_value * tolerance / (1.0 + band)
        regressed = fresh_value < threshold
    else:
        threshold = base_value / tolerance * (1.0 + band)
        regressed = fresh_value > threshold
    return MetricVerdict(
        metric=metric,
        status=_REGRESSED if regressed else _OK,
        fresh=fresh_value,
        baseline=base_value,
        threshold=threshold,
        detail=detail,
    )


def apply_waivers(
    report: ComparisonReport, waivers: Sequence[Waiver]
) -> ComparisonReport:
    """Flip regressed metrics matching a waiver to ``waived`` (in place)."""
    for i, metric in enumerate(report.metrics):
        if metric.status != _REGRESSED:
            continue
        for waiver in waivers:
            if waiver.matches(report.bench, metric.metric):
                report.metrics[i] = MetricVerdict(
                    metric=metric.metric,
                    status=_WAIVED,
                    fresh=metric.fresh,
                    baseline=metric.baseline,
                    threshold=metric.threshold,
                    detail=f"waived: {waiver.reason}",
                )
                break
    return report


def compare_ratio_metrics(
    bench: str,
    metrics: Iterable[Sequence[object]],
    tolerance: float = DEFAULT_TOLERANCE,
    notes: Iterable[str] = (),
    failures: Iterable[str] = (),
    waivers: Sequence[Waiver] = (),
) -> ComparisonReport:
    """The per-bench speedup diff: ``(label, fresh, baseline)`` triples.

    Ratios carry no per-run spread information, so the band is zero and
    ``tolerance`` alone absorbs runner noise (the historical 0.7).
    ``failures`` are non-numeric hard failures — a fresh run whose fast
    path *disagrees* with its oracle, for example — reported as regressed
    metrics so they gate (and can be waived) exactly like a slowdown.
    """
    report = ComparisonReport(bench=bench, tolerance=tolerance)
    for label, fresh, baseline in metrics:
        report.metrics.append(
            compare_value(str(label), float(fresh), float(baseline), tolerance)
        )
    for failure in failures:
        report.metrics.append(
            MetricVerdict(metric=str(failure), status=_REGRESSED)
        )
    report.notes.extend(str(note) for note in notes)
    return apply_waivers(report, waivers)


# ----------------------------------------------------------------------
# Grid-history comparison
# ----------------------------------------------------------------------
def _pair_band(
    fresh_ref: CellRecord,
    fresh_cell: CellRecord,
    base_ref: CellRecord,
    base_cell: CellRecord,
) -> float:
    """Noise band for a speedup ratio: the worse run's summed spreads."""
    fresh_noise = fresh_ref.noise + fresh_cell.noise
    base_noise = base_ref.noise + base_cell.noise
    return min(MAX_NOISE_BAND, max(fresh_noise, base_noise))


def _cold_key(cell: CellRecord) -> "tuple | None":
    """The reference (tier="cold", workers=0) coordinates for a cell."""
    axes = dict(cell.axes)
    if axes.get("tier") == "cold" or axes.get("workers", 0) != 0:
        return None
    axes["tier"] = "cold"
    return tuple(sorted((k, str(v)) for k, v in axes.items()))


def _axes_key(cell: CellRecord) -> tuple:
    return tuple(sorted((k, str(v)) for k, v in dict(cell.axes).items()))


def _answer_group(cell: CellRecord) -> tuple:
    """Cells that must return identical answers: axes minus the engine."""
    axes = dict(cell.axes)
    for engine_axis in ("tier", "backend", "workers"):
        axes.pop(engine_axis, None)
    return tuple(sorted((k, str(v)) for k, v in axes.items()))


def _digest_mismatches(cells: Mapping[str, CellRecord]) -> list[str]:
    groups: dict[tuple, dict[str, str]] = {}
    for cell in cells.values():
        if cell.status != "done" or cell.result_digest is None:
            continue
        groups.setdefault(_answer_group(cell), {})[cell.cell_id] = (
            cell.result_digest
        )
    mismatches = []
    for members in groups.values():
        if len(set(members.values())) > 1:
            mismatches.append(
                "answers diverge across engines: "
                + ", ".join(
                    f"{cell_id}={digest[:10]}"
                    for cell_id, digest in sorted(members.items())
                )
            )
    return sorted(mismatches)


def compare_grid_runs(
    fresh: "HistoryDB | str | pathlib.Path",
    baseline: "HistoryDB | str | pathlib.Path | None" = None,
    grid_name: "str | None" = None,
    commit: "str | None" = None,
    tolerance: float = DEFAULT_TOLERANCE,
    absolute: bool = False,
    waivers: Sequence[Waiver] = (),
) -> ComparisonReport:
    """Judge the newest grid run in ``fresh`` against stored history.

    The baseline run is the newest run with the *same grid name and
    config hash* in ``baseline`` (a separate history DB — the committed
    CI baseline, typically), or, when ``baseline`` is None, the newest
    older-commit run in ``fresh`` itself.  No comparable baseline is a
    bootstrap PASS with an explanatory note, never a failure.

    Three checks gate:

    * every fresh cell that *errored* (and is not skipped by design);
    * answer digests diverging across tiers/backends inside the fresh
      run (the grid's correctness parity);
    * each tier cell's speedup-over-cold falling below
      ``baseline * tolerance / (1 + band)``, where ``band`` is the
      best-of-N spread of the cells involved.  With ``absolute=True``
      (same-machine nightly history) raw per-cell seconds are compared
      under the mirrored lower-is-better rule as well.
    """
    fresh_db = fresh if isinstance(fresh, HistoryDB) else HistoryDB(fresh)
    fresh_run = fresh_db.latest_run(grid_name=grid_name)
    if fresh_run is None:
        raise ValueError(f"no runs recorded in {fresh_db.path}")
    report = ComparisonReport(
        bench=f"grid:{fresh_run.grid_name}", tolerance=tolerance
    )
    report.context["fresh commit"] = fresh_run.commit_sha
    report.context["config"] = fresh_run.config_hash[:12]
    fresh_cells = fresh_db.run_cells(fresh_run.run_id)

    # 1. The fresh run must execute clean: an errored cell gates whether
    #    or not history has an opinion about it.
    for cell in fresh_cells.values():
        if cell.status == "error":
            report.metrics.append(
                MetricVerdict(
                    metric=f"{cell.cell_id} status",
                    status=_REGRESSED,
                    detail=f"cell errored: {cell.error}",
                )
            )

    # 2. Cross-engine answer parity inside the fresh run.
    for mismatch in _digest_mismatches(fresh_cells):
        report.metrics.append(
            MetricVerdict(metric=mismatch, status=_REGRESSED)
        )

    # 3. Timing against the baseline run, if one is comparable.
    base_run, base_cells = _baseline_run(
        fresh_db, fresh_run, baseline, commit
    )
    if base_run is None:
        report.notes.append(
            "no comparable baseline run for this grid/config — recording "
            "bootstrap history, timing checks skipped"
        )
    else:
        report.context["baseline commit"] = base_run.commit_sha
        report.context["baseline recorded"] = base_run.started_at
        _timing_metrics(
            report, fresh_cells, base_cells, tolerance, absolute
        )
    if not isinstance(fresh, HistoryDB):
        fresh_db.close()
    return apply_waivers(report, waivers)


def _baseline_run(
    fresh_db: HistoryDB,
    fresh_run: RunRecord,
    baseline: "HistoryDB | str | pathlib.Path | None",
    commit: "str | None",
) -> tuple["RunRecord | None", dict[str, CellRecord]]:
    owns = False
    if baseline is None:
        base_db = fresh_db
        base_run = base_db.latest_run(
            grid_name=fresh_run.grid_name,
            config_hash=fresh_run.config_hash,
            exclude_commit=commit or fresh_run.commit_sha,
        )
    else:
        if isinstance(baseline, HistoryDB):
            base_db = baseline
        else:
            base_db = HistoryDB(baseline)
            owns = True
        base_run = base_db.latest_run(
            grid_name=fresh_run.grid_name, config_hash=fresh_run.config_hash
        )
    cells = {} if base_run is None else base_db.run_cells(base_run.run_id)
    if owns:
        base_db.close()
    return base_run, cells


def _timing_metrics(
    report: ComparisonReport,
    fresh_cells: Mapping[str, CellRecord],
    base_cells: Mapping[str, CellRecord],
    tolerance: float,
    absolute: bool,
) -> None:
    fresh_by_axes = {_axes_key(c): c for c in fresh_cells.values()}
    base_by_axes = {_axes_key(c): c for c in base_cells.values()}
    for cell_id in sorted(base_cells):
        base_cell = base_cells[cell_id]
        if base_cell.status != "done":
            continue
        fresh_cell = fresh_cells.get(cell_id)
        if fresh_cell is None:
            report.notes.append(
                f"{cell_id}: in baseline but absent from fresh run"
            )
            continue
        if fresh_cell.status != "done":
            # Errors were already reported; a newly *skipped* cell is a
            # grid-definition change worth a note, not a timing verdict.
            if fresh_cell.status == "skipped":
                report.notes.append(
                    f"{cell_id}: done in baseline, now skipped"
                )
            continue
        _ratio_metric(
            report, fresh_cell, base_cell, fresh_by_axes, base_by_axes,
            tolerance,
        )
        if absolute:
            band = min(
                MAX_NOISE_BAND, max(fresh_cell.noise, base_cell.noise)
            )
            report.metrics.append(
                compare_value(
                    f"{cell_id} seconds",
                    float(fresh_cell.best_seconds or 0.0),
                    float(base_cell.best_seconds or 0.0),
                    tolerance=tolerance,
                    band=band,
                    higher_is_better=False,
                )
            )
    for cell_id in sorted(set(fresh_cells) - set(base_cells)):
        if fresh_cells[cell_id].status == "done":
            report.notes.append(f"{cell_id}: new cell, no history yet")


def _ratio_metric(
    report: ComparisonReport,
    fresh_cell: CellRecord,
    base_cell: CellRecord,
    fresh_by_axes: Mapping[tuple, CellRecord],
    base_by_axes: Mapping[tuple, CellRecord],
    tolerance: float,
) -> None:
    cold_key = _cold_key(fresh_cell)
    if cold_key is None:
        return
    fresh_ref = fresh_by_axes.get(cold_key)
    base_ref = base_by_axes.get(cold_key)
    usable = (
        fresh_ref is not None
        and base_ref is not None
        and fresh_ref.status == "done"
        and base_ref.status == "done"
        and (fresh_ref.best_seconds or 0.0) > 0.0
        and (base_ref.best_seconds or 0.0) > 0.0
        and (fresh_cell.best_seconds or 0.0) > 0.0
        and (base_cell.best_seconds or 0.0) > 0.0
    )
    if not usable:
        return
    fresh_ratio = fresh_ref.best_seconds / fresh_cell.best_seconds
    base_ratio = base_ref.best_seconds / base_cell.best_seconds
    band = _pair_band(fresh_ref, fresh_cell, base_ref, base_cell)
    report.metrics.append(
        compare_value(
            f"{fresh_cell.cell_id} speedup vs cold",
            fresh_ratio,
            base_ratio,
            tolerance=tolerance,
            band=band,
        )
    )
