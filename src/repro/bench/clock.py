"""Injectable clocks for the timing harness.

Every timing path in :mod:`repro.bench` — :func:`repro.bench.runner.time_call`,
the sweep runner, and the experiment-grid executor — takes an optional
``clock`` callable returning monotonic seconds, defaulting to
:func:`time.perf_counter`.  Tests inject a :class:`ManualClock` so timing
*logic* (best-of-N selection, noise bands, sweep bookkeeping) is pinned
deterministically without a single real ``sleep``.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable

Clock = Callable[[], float]

__all__ = ["Clock", "ManualClock", "perf_clock"]

#: The production clock: monotonic, high resolution.
perf_clock: Clock = time.perf_counter


class ManualClock:
    """A deterministic fake clock.

    Each call returns the current reading; between a (start, stop) pair the
    clock advances by the next scripted duration from ``durations`` (cycled
    forever), so ``time_call`` observes exactly the scripted seconds.  An
    explicit :meth:`advance` models work that happens outside a timed
    region.
    """

    def __init__(self, durations: Iterable[float] = (1.0,), start: float = 0.0):
        self._durations = list(durations)
        if not self._durations:
            raise ValueError("ManualClock needs at least one duration")
        self._index = 0
        self._now = float(start)
        self._pending = False

    def __call__(self) -> float:
        if self._pending:
            # Second read of a (start, stop) pair: advance by the next
            # scripted duration so the pair brackets exactly that many
            # seconds.
            self._now += self._durations[self._index % len(self._durations)]
            self._index += 1
            self._pending = False
        else:
            self._pending = True
        return self._now

    def advance(self, seconds: float) -> None:
        """Move time forward outside a timed region."""
        self._now += float(seconds)

    @property
    def now(self) -> float:
        return self._now
