"""Figure 14 case study: research groups on the synthetic Aminer network.

The paper runs top-3 *non-overlapping* k-influential community search with
k = 4 on the Aminer co-authorship graph and contrasts three aggregators:

* ``min`` with an i10-index-like weight — groups where *everyone* is
  solidly cited;
* ``avg`` with a G-index-like weight — small elite groups;
* ``sum`` with raw citation mass — larger, more diverse groups.

We reproduce that protocol on the synthetic network (DESIGN.md Section 4):
same k, same non-overlap constraint, same per-aggregator weighting, with a
size cap matching the senior-group sizes so the avg/sum heuristics return
research-group-shaped answers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.generators.aminer import AminerSpec, generate_aminer
from repro.graphs.graph import Graph
from repro.influential.api import top_r_communities
from repro.influential.results import ResultSet

#: Paper parameters: k = 4, top-3, non-overlapping.
CASE_K = 4
CASE_R = 3
#: Senior groups have 5-8 members; cap communities accordingly.
CASE_S = 8

#: Aggregator -> weight kind, following the paper's discussion
#: ("G-index is suitable for avg, while i-10 index is appropriate for min";
#: sum "could discover high-quality research community with more diversity"
#: on raw citation counts).
CASE_WEIGHTS = {"min": "i10", "avg": "g", "sum": "citations"}

#: The same three roles recast for ingested SNAP graphs, which carry no
#: citation metadata: core number is the robustness-flavoured stand-in
#: for i10 (min), PageRank the smooth prestige proxy for g (avg), and
#: degree the raw-mass proxy for citation counts (sum).
INGESTED_WEIGHTS = {"min": "core", "avg": "pagerank", "sum": "degree"}


@dataclass
class CaseStudyResult:
    """One aggregator's panel of Figure 14."""

    aggregator: str
    weight_kind: str
    communities: ResultSet
    graph: Graph


def run_case_study(
    spec: AminerSpec | None = None,
    graph: Graph | None = None,
    k: int = CASE_K,
    r: int = CASE_R,
    s: int | None = CASE_S,
) -> list[CaseStudyResult]:
    """Run the three-aggregator comparison; returns one panel per row.

    With no arguments this reproduces Figure 14 on the synthetic Aminer
    network, weighting each aggregator by its citation-metadata kind.
    Passing ``graph`` (e.g. one ingested from a published SNAP edge list
    via :func:`repro.graphs.io.ingest_edge_list`) runs the identical
    protocol with structural stand-in weights (``INGESTED_WEIGHTS``) —
    the route by which the case study runs on real downloaded datasets.
    """
    if graph is not None:
        from repro.graphs.io import synthetic_influence_weights

        base_graph = graph
        weights_by_aggregator = INGESTED_WEIGHTS
        weight_arrays = {
            kind: synthetic_influence_weights(base_graph, kind)
            for kind in set(INGESTED_WEIGHTS.values())
        }
    else:
        spec = spec or AminerSpec()
        base_graph, metadata = generate_aminer(spec)
        weights_by_aggregator = CASE_WEIGHTS
        weight_arrays = {
            "i10": metadata.i10_index,
            "g": metadata.g_index,
            "citations": metadata.citations,
        }
    panels = []
    for aggregator, weight_kind in weights_by_aggregator.items():
        weighted = base_graph.with_weights(weight_arrays[weight_kind])
        result = top_r_communities(
            weighted,
            k=k,
            r=r,
            f=aggregator,
            s=s,
            non_overlapping=True,
            greedy=False,
        )
        panels.append(CaseStudyResult(aggregator, weight_kind, result, weighted))
    return panels


def render_case_study(panels: list[CaseStudyResult]) -> str:
    """Figure 14 as text: per aggregator, the top-3 groups with names."""
    lines = ["Case study (synthetic Aminer, k=4, top-3 non-overlapping):"]
    for panel in panels:
        lines.append("")
        lines.append(
            f"[{panel.aggregator}] weighted by {panel.weight_kind}-index"
        )
        if not len(panel.communities):
            lines.append("  (no qualifying community)")
            continue
        for rank, community in enumerate(panel.communities, start=1):
            names = ", ".join(community.labels(panel.graph))
            lines.append(
                f"  top-{rank} ({panel.aggregator}={community.value:.1f}, "
                f"size={community.size}): {names}"
            )
    return "\n".join(lines)
