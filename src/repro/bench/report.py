"""Markdown rendering for comparator verdicts and grid history.

Two consumers share these renderers: the CI step summary (every gating
baseline diff and the grid compare step append their table to
``$GITHUB_STEP_SUMMARY``) and the ``repro bench grid report`` command.
The output is deliberately byte-stable — floats are rounded then
``%g``-formatted, rows are emitted in sorted/recorded order, and nothing
depends on dict iteration of external data — so the golden tests can pin
it across Python versions.
"""

from __future__ import annotations

import os
import pathlib

from repro.bench.compare import ComparisonReport, MetricVerdict
from repro.bench.history import HistoryDB

__all__ = [
    "append_step_summary",
    "render_comparison",
    "render_history",
]

_STATUS_BADGES = {
    "ok": "✅ ok",
    "regressed": "❌ regressed",
    "waived": "🟡 waived",
    "skipped": "⏭️ skipped",
}


def _num(value: "float | None") -> str:
    if value is None:
        return "-"
    return f"{round(float(value), 4):g}"


def _metric_row(metric: MetricVerdict) -> str:
    badge = _STATUS_BADGES.get(metric.status, metric.status)
    cells = [
        metric.metric,
        _num(metric.fresh),
        _num(metric.baseline),
        _num(metric.threshold),
        badge + (f" — {metric.detail}" if metric.detail else ""),
    ]
    return "| " + " | ".join(cells) + " |"


def render_comparison(report: ComparisonReport) -> str:
    """The verdict block CI appends to the step summary."""
    verdict_badge = "✅ PASS" if report.verdict == "PASS" else "❌ FAIL"
    lines = [f"### `{report.bench}` vs baseline — {verdict_badge}", ""]
    for key, value in report.context.items():
        lines.append(f"- {key}: `{value}`")
    if report.context:
        lines.append("")
    if report.metrics:
        lines += [
            f"| metric | fresh | baseline | threshold "
            f"(tol {report.tolerance:.0%} + noise band) | status |",
            "|---|---:|---:|---:|:---|",
        ]
        lines += [_metric_row(metric) for metric in report.metrics]
    else:
        lines.append("*(no comparable metrics)*")
    for note in report.notes:
        lines.append(f"> {note}")
    lines.append("")
    return "\n".join(lines)


def render_history(
    db: HistoryDB,
    grid_name: "str | None" = None,
    limit: int = 10,
) -> str:
    """A human-readable tour of the stored grid history.

    Newest ``limit`` runs in a summary table, then the newest run's full
    per-cell breakdown (status, best-of-N seconds, spread, digest).
    """
    runs = db.runs(grid_name)
    lines = ["## Experiment-grid history", ""]
    if not runs:
        lines += ["*(no runs recorded)*", ""]
        return "\n".join(lines)
    recent = runs[-limit:]
    lines += [
        f"{len(runs)} run(s) recorded; showing the newest {len(recent)}.",
        "",
        "| run | grid | commit | config | recorded | done | error | skipped |",
        "|---:|---|---|---|---|---:|---:|---:|",
    ]
    for run in recent:
        cells = db.run_cells(run.run_id).values()
        counts = {"done": 0, "error": 0, "skipped": 0}
        for cell in cells:
            counts[cell.status] = counts.get(cell.status, 0) + 1
        lines.append(
            f"| {run.run_id} | {run.grid_name} | `{run.commit_sha[:12]}` "
            f"| `{run.config_hash[:12]}` | {run.started_at} "
            f"| {counts['done']} | {counts['error']} | {counts['skipped']} |"
        )
    newest = recent[-1]
    lines += [
        "",
        f"### Newest run {newest.run_id} "
        f"(`{newest.commit_sha[:12]}`, {newest.started_at})",
        "",
        "| cell | status | best s | repeats | noise | digest |",
        "|---|:---|---:|---:|---:|---|",
    ]
    for cell in db.run_cells(newest.run_id).values():
        digest = "-" if cell.result_digest is None else cell.result_digest[:10]
        detail = cell.error if cell.status == "error" else ""
        status = cell.status + (f" — {detail}" if detail else "")
        lines.append(
            f"| {cell.cell_id} | {status} | {_num(cell.best_seconds)} "
            f"| {len(cell.run_seconds)} | {_num(cell.noise)} | `{digest}` |"
        )
    lines.append("")
    return "\n".join(lines)


def append_step_summary(text: str) -> None:
    """Append to ``$GITHUB_STEP_SUMMARY`` when Actions provides one."""
    raw = os.environ.get("GITHUB_STEP_SUMMARY", "").strip()
    if not raw:
        return
    with open(pathlib.Path(raw), "a", encoding="utf-8") as handle:
        handle.write(text if text.endswith("\n") else text + "\n")
