"""Self-verification: solvers vs the exhaustive oracle on random instances.

``repro verify`` gives a user who just installed the library a one-command
confidence check (beyond the unit tests): it generates a batch of small
random weighted graphs and certifies, per instance,

* Algorithm 1 and Algorithm 2 (eps=0) against brute force under sum;
* the Theorem 6 bound for Approx at several eps;
* min/max peel solvers against the Definition 3 oracle;
* local-search outputs against the certifier (validity, size, disjointness);
* the Theorem 4 clique gadget round trip.

Returns a structured report; any failure names the instance seed so it can
be replayed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graphs.generators.random_graphs import gnp_random_graph
from repro.graphs.graph import Graph
from repro.hardness.certificates import CertificationError, certify_result_set
from repro.influential.bruteforce import bruteforce_communities, bruteforce_top_r
from repro.influential.improved import tic_improved
from repro.influential.local_search import local_search
from repro.influential.minmax_solvers import max_communities, min_communities
from repro.influential.naive_sum import sum_naive
from repro.utils.rng import make_rng


@dataclass
class VerificationReport:
    """Outcome of one verification batch."""

    checks_run: int = 0
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def record(self, passed: bool, message: str) -> None:
        self.checks_run += 1
        if not passed:
            self.failures.append(message)

    def render(self) -> str:
        lines = [f"verification: {self.checks_run} checks"]
        if self.ok:
            lines.append("all checks passed")
        else:
            lines.append(f"{len(self.failures)} FAILURES:")
            lines.extend(f"  - {msg}" for msg in self.failures)
        return "\n".join(lines)


def _random_instance(seed: int, n: int = 10, p: float = 0.4) -> Graph:
    graph = gnp_random_graph(n, p, seed=seed)
    rng = make_rng(seed + 10_000)
    return graph.with_weights(np.round(rng.uniform(0.5, 9.5, size=n), 3))


def verify_solvers(
    instances: int = 8,
    base_seed: int = 1_000,
    k_values: tuple[int, ...] = (1, 2, 3),
    r: int = 4,
) -> VerificationReport:
    """Run the oracle cross-checks; see the module docstring."""
    report = VerificationReport()
    for index in range(instances):
        seed = base_seed + index
        graph = _random_instance(seed)
        for k in k_values:
            tag = f"seed={seed} k={k}"
            oracle = bruteforce_top_r(graph, k, r, "sum")

            improved = tic_improved(graph, k, r)
            report.record(
                improved.values() == oracle.values()
                or np.allclose(improved.values(), oracle.values()),
                f"{tag}: Algorithm 2 != brute force under sum",
            )
            naive = sum_naive(graph, k, r)
            report.record(
                np.allclose(naive.values(), oracle.values()),
                f"{tag}: Algorithm 1 != brute force under sum",
            )
            for eps in (0.1, 0.5):
                approx = tic_improved(graph, k, r, eps=eps)
                bound_ok = len(oracle) == 0 or (
                    len(approx) >= len(oracle)
                    and approx.rth_value(len(oracle))
                    >= (1 - eps) * oracle.rth_value(len(oracle)) - 1e-9
                )
                report.record(
                    bound_ok, f"{tag} eps={eps}: Theorem 6 bound violated"
                )

            for name, solver in (("min", min_communities), ("max", max_communities)):
                ours = {(c.vertices, c.value) for c in solver(graph, k)}
                expected = {
                    (c.vertices, c.value)
                    for c in bruteforce_communities(graph, k, name)
                }
                report.record(
                    ours == expected,
                    f"{tag}: {name} family != Definition 3 oracle",
                )

            s = k + 2
            if s <= graph.n:
                for greedy in (False, True):
                    result = local_search(
                        graph, k, r, s, "avg",
                        greedy=greedy, non_overlapping=True,
                    )
                    try:
                        certify_result_set(
                            graph, result, k=k, s=s, non_overlapping=True
                        )
                        report.record(True, "")
                    except CertificationError as exc:
                        report.record(
                            False,
                            f"{tag} greedy={greedy}: local search output "
                            f"failed certification ({exc})",
                        )

    # Theorem 4 gadget round trip on fixed instances.
    from repro.graphs.builder import graph_from_edges
    from repro.hardness.reductions import clique_decision_via_tic

    triangle_plus = graph_from_edges(
        [(0, 1), (1, 2), (0, 2), (2, 3)], weights=[1.0] * 4
    )
    c5 = graph_from_edges(
        [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)], weights=[1.0] * 5
    )
    report.record(
        clique_decision_via_tic(triangle_plus, 3) is True,
        "Theorem 4 gadget: planted triangle not detected",
    )
    report.record(
        clique_decision_via_tic(c5, 3) is False,
        "Theorem 4 gadget: false positive on C5",
    )
    return report
