"""Sqlite-backed history of experiment-grid runs.

One database holds every recorded run of every grid.  A *run* is one
execution of a :class:`~repro.bench.grid.GridSpec` at one commit; a *cell*
is one point of that grid with its per-repeat timings and a done / error /
skipped status.  Rows are keyed by ``(commit, config_hash, cell_id)``:
``config_hash`` fingerprints the grid definition itself, so runs of
different grid shapes never get compared to each other.

The schema is append-only on purpose — regressions are judged against
*stored history*, so overwriting old rows would erase the evidence.  The
file format is plain sqlite3 (stdlib), safe to commit as a CI baseline or
upload as a workflow artifact.
"""

from __future__ import annotations

import json
import pathlib
import sqlite3
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

__all__ = ["CellRecord", "HistoryDB", "RunRecord"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_id      INTEGER PRIMARY KEY AUTOINCREMENT,
    grid_name   TEXT NOT NULL,
    config_hash TEXT NOT NULL,
    commit_sha  TEXT NOT NULL,
    started_at  TEXT NOT NULL,
    meta_json   TEXT NOT NULL DEFAULT '{}'
);
CREATE TABLE IF NOT EXISTS cells (
    run_id       INTEGER NOT NULL REFERENCES runs(run_id),
    cell_id      TEXT NOT NULL,
    axes_json    TEXT NOT NULL,
    status       TEXT NOT NULL,
    best_seconds REAL,
    runs_json    TEXT NOT NULL DEFAULT '[]',
    result_digest TEXT,
    error        TEXT,
    PRIMARY KEY (run_id, cell_id)
);
CREATE INDEX IF NOT EXISTS idx_runs_key
    ON runs (grid_name, config_hash, commit_sha);
"""


@dataclass(frozen=True)
class CellRecord:
    """One grid cell's outcome inside one run."""

    cell_id: str
    axes: Mapping[str, object]
    status: str  # "done" | "error" | "skipped"
    best_seconds: float | None = None
    run_seconds: Sequence[float] = ()
    result_digest: str | None = None
    error: str | None = None

    @property
    def noise(self) -> float:
        """Relative best-of-N spread: (median - best) / best.

        Zero when fewer than two repeats were recorded (no spread to
        estimate) or the best time is zero.
        """
        times = sorted(float(t) for t in self.run_seconds)
        if len(times) < 2 or times[0] <= 0.0:
            return 0.0
        median = times[len(times) // 2]
        return (median - times[0]) / times[0]


@dataclass(frozen=True)
class RunRecord:
    """One recorded grid execution (without its cells)."""

    run_id: int
    grid_name: str
    config_hash: str
    commit_sha: str
    started_at: str
    meta: Mapping[str, object] = field(default_factory=dict)


class HistoryDB:
    """The grid results store.  Open with a path; ``close()`` when done."""

    def __init__(self, path: "str | pathlib.Path") -> None:
        self.path = pathlib.Path(path)
        self._conn = sqlite3.connect(str(self.path))
        self._conn.executescript(_SCHEMA)
        self._conn.commit()

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "HistoryDB":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def record_run(
        self,
        grid_name: str,
        config_hash: str,
        commit_sha: str,
        started_at: str,
        cells: Iterable[CellRecord],
        meta: "Mapping[str, object] | None" = None,
    ) -> int:
        """Store one run and its cells atomically; returns the run id."""
        with self._conn:
            cursor = self._conn.execute(
                "INSERT INTO runs (grid_name, config_hash, commit_sha, "
                "started_at, meta_json) VALUES (?, ?, ?, ?, ?)",
                (
                    grid_name,
                    config_hash,
                    commit_sha,
                    started_at,
                    json.dumps(dict(meta or {}), sort_keys=True),
                ),
            )
            run_id = int(cursor.lastrowid)
            self._conn.executemany(
                "INSERT INTO cells (run_id, cell_id, axes_json, status, "
                "best_seconds, runs_json, result_digest, error) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                [
                    (
                        run_id,
                        cell.cell_id,
                        json.dumps(dict(cell.axes), sort_keys=True),
                        cell.status,
                        cell.best_seconds,
                        json.dumps([float(t) for t in cell.run_seconds]),
                        cell.result_digest,
                        cell.error,
                    )
                    for cell in cells
                ],
            )
        return run_id

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def _run_from_row(self, row: Sequence[object]) -> RunRecord:
        return RunRecord(
            run_id=int(row[0]),
            grid_name=str(row[1]),
            config_hash=str(row[2]),
            commit_sha=str(row[3]),
            started_at=str(row[4]),
            meta=json.loads(str(row[5])),
        )

    def runs(self, grid_name: "str | None" = None) -> list[RunRecord]:
        """Every recorded run, oldest first (optionally one grid only)."""
        query = (
            "SELECT run_id, grid_name, config_hash, commit_sha, started_at, "
            "meta_json FROM runs"
        )
        params: tuple[object, ...] = ()
        if grid_name is not None:
            query += " WHERE grid_name = ?"
            params = (grid_name,)
        query += " ORDER BY run_id"
        return [
            self._run_from_row(row)
            for row in self._conn.execute(query, params).fetchall()
        ]

    def latest_run(
        self,
        grid_name: "str | None" = None,
        config_hash: "str | None" = None,
        exclude_commit: "str | None" = None,
    ) -> "RunRecord | None":
        """The most recent run matching the filters, or ``None``.

        ``exclude_commit`` lets the comparator pick a *baseline* run out
        of the same database the fresh run was just recorded into.
        """
        query = (
            "SELECT run_id, grid_name, config_hash, commit_sha, started_at, "
            "meta_json FROM runs WHERE 1=1"
        )
        params: list[object] = []
        if grid_name is not None:
            query += " AND grid_name = ?"
            params.append(grid_name)
        if config_hash is not None:
            query += " AND config_hash = ?"
            params.append(config_hash)
        if exclude_commit is not None:
            query += " AND commit_sha != ?"
            params.append(exclude_commit)
        query += " ORDER BY run_id DESC LIMIT 1"
        row = self._conn.execute(query, params).fetchone()
        return None if row is None else self._run_from_row(row)

    def run_cells(self, run_id: int) -> dict[str, CellRecord]:
        """All cells of one run, keyed by cell id (insertion-ordered)."""
        rows = self._conn.execute(
            "SELECT cell_id, axes_json, status, best_seconds, runs_json, "
            "result_digest, error FROM cells WHERE run_id = ? "
            "ORDER BY rowid",
            (run_id,),
        ).fetchall()
        cells: dict[str, CellRecord] = {}
        for row in rows:
            record = CellRecord(
                cell_id=str(row[0]),
                axes=json.loads(str(row[1])),
                status=str(row[2]),
                best_seconds=None if row[3] is None else float(row[3]),
                run_seconds=tuple(json.loads(str(row[4]))),
                result_digest=None if row[5] is None else str(row[5]),
                error=None if row[6] is None else str(row[6]),
            )
            cells[record.cell_id] = record
        return cells

    def cell_history(
        self, cell_id: str, grid_name: str
    ) -> list[tuple[RunRecord, CellRecord]]:
        """Every recording of one cell across runs, oldest first."""
        out = []
        for run in self.runs(grid_name):
            cell = self.run_cells(run.run_id).get(cell_id)
            if cell is not None:
                out.append((run, cell))
        return out
