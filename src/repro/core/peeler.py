"""A mutable peeling workspace over an immutable graph.

The min/max solvers and the non-overlapping wrappers repeatedly delete
vertices *from the same evolving graph* while keeping the remainder a
k-core — recopying adjacency for every deletion would be quadratic.
:class:`PeelingWorkspace` keeps an alive-set plus per-vertex induced
degrees and performs "remove v and cascade below-k vertices" in time
proportional to the affected region.  It records each cascade so callers
can inspect exactly what a removal cost (the sum solver's child expansion
reasons about that set).

Degree bookkeeping follows the graph backend: under ``"csr"`` (default)
degrees live in a flat int64 array alongside a boolean alive mask, the
initial degrees come from one vectorised bincount and the k-core invariant
is established with the vectorised mask peel; the ``"set"`` backend keeps
the original dict-of-degrees implementation for parity checking.  Either
way the Python-level ``alive`` set stays in sync, because solvers iterate
it directly.

Workspaces are reusable: :meth:`reset` re-seeds the alive set for a new
query, recomputing every degree from scratch so no stale bookkeeping
leaks between queries.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

import numpy as np

from repro.errors import SpecError, VertexError
from repro.graphs.backend import resolve_backend
from repro.graphs.csr import membership_mask
from repro.graphs.graph import Graph


class PeelingWorkspace:
    """Alive-set view of a graph supporting cascade deletions at level k.

    After construction the workspace holds the maximal k-core of the given
    subset (vertices below k are cascaded immediately), so the invariant
    *every alive vertex has alive-degree >= k* holds at all times.
    """

    __slots__ = ("graph", "k", "_alive", "_degree", "_backend", "_deg", "_mask")

    def __init__(
        self,
        graph: Graph,
        k: int,
        vertices: Iterable[int] | None = None,
        backend: str = "auto",
    ) -> None:
        if k < 0:
            raise SpecError(f"degree constraint k must be non-negative, got {k}")
        self.graph = graph
        self.k = k
        self._backend = resolve_backend(backend)
        self._degree: dict[int, int] | None = None
        self._deg: np.ndarray | None = None
        self._mask: np.ndarray | None = None
        self.reset(vertices)

    def reset(self, vertices: Iterable[int] | None = None) -> None:
        """Re-seed the workspace for a new query over ``vertices``.

        All degrees are recomputed from the graph, so bookkeeping from the
        previous query cannot go stale.  The k-core invariant is
        re-established immediately, exactly as in ``__init__``.
        """
        members = None if vertices is None else set(vertices)
        if self._backend == "csr":
            self._reset_csr(members)
        else:
            if members is not None:
                for v in members:
                    self.graph.check_vertex(v)
            self._reset_set(members)

    def _reset_csr(self, members: set[int] | None) -> None:
        csr = self.graph.csr
        n = csr.n
        if members is None:
            mask = np.ones(n, dtype=bool)
            degrees = csr.degrees()
        else:
            mask = membership_mask(n, members)
            degrees = csr.subset_degrees(mask)
        mask, degrees = csr.peel_to_kcore(mask, self.k, degrees)
        self._mask = mask
        self._deg = degrees
        self._alive = set(np.flatnonzero(mask).tolist())

    def _reset_set(self, members: set[int] | None) -> None:
        graph = self.graph
        alive = set(range(graph.n)) if members is None else members
        adj = graph.adjacency
        self._alive = alive
        self._degree = {v: len(adj[v] & alive) for v in alive}
        # Establish the k-core invariant up front.
        underfull = [v for v, d in self._degree.items() if d < self.k]
        self._cascade(underfull)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def alive(self) -> set[int]:
        """The current alive vertex set.  Treat as read-only."""
        return self._alive

    @property
    def backend(self) -> str:
        """Which degree-bookkeeping backend this workspace runs on."""
        return self._backend

    def __len__(self) -> int:
        return len(self._alive)

    def __contains__(self, v: int) -> bool:
        return v in self._alive

    def degree(self, v: int) -> int:
        """Alive-induced degree of an alive vertex."""
        if v not in self._alive:
            raise VertexError(v, self.graph.n)
        if self._backend == "csr":
            return int(self._deg[v])
        return self._degree[v]

    def alive_neighbors(self, v: int) -> set[int]:
        """Alive neighbours of ``v`` (fresh set, safe to keep)."""
        return self.graph.adjacency[v] & self._alive

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _cascade(self, seeds: Iterable[int]) -> list[int]:
        """Remove ``seeds`` and everything that falls below k.  Returns the
        full list of removed vertices (seeds first, cascade order after)."""
        if self._backend == "csr":
            return self._cascade_csr(seeds)
        adj = self.graph.adjacency
        alive, degree, k = self._alive, self._degree, self.k
        removed: list[int] = []
        queue = deque(seeds)
        for v in queue:
            if v in alive:
                alive.discard(v)
                removed.append(v)
        i = 0
        while i < len(removed):
            v = removed[i]
            i += 1
            degree.pop(v, None)
            for u in adj[v] & alive:
                degree[u] -= 1
                if degree[u] < k:
                    alive.discard(u)
                    removed.append(u)
        return removed

    def _cascade_csr(self, seeds: Iterable[int]) -> list[int]:
        """Cascade over the flat arrays: per removed vertex, one CSR slice,
        one masked fancy-index decrement, one below-k scan."""
        csr = self.graph.csr
        indptr, indices = csr.indptr, csr.indices
        alive, mask, degrees, k = self._alive, self._mask, self._deg, self.k
        removed: list[int] = []
        for v in seeds:
            if mask[v]:
                mask[v] = False
                alive.discard(v)
                removed.append(v)
        i = 0
        while i < len(removed):
            v = removed[i]
            i += 1
            neigh = indices[indptr[v] : indptr[v + 1]]
            neigh = neigh[mask[neigh]]
            if neigh.size:
                degrees[neigh] -= 1
                for u in neigh[degrees[neigh] < k].tolist():
                    mask[u] = False
                    alive.discard(u)
                    removed.append(u)
        return removed

    def remove(self, v: int) -> list[int]:
        """Delete alive vertex ``v``; cascade; return all removed vertices."""
        if v not in self._alive:
            raise VertexError(v, self.graph.n)
        return self._cascade([v])

    def remove_all(self, vertices: Iterable[int]) -> list[int]:
        """Delete several vertices at once (e.g. a whole community in the
        non-overlapping wrappers); cascade; return all removed vertices."""
        seeds = [v for v in vertices if v in self._alive]
        return self._cascade(seeds)

    # ------------------------------------------------------------------
    # Component queries on the alive set
    # ------------------------------------------------------------------
    def component_of(self, v: int) -> set[int]:
        """The alive connected component containing ``v``."""
        if v not in self._alive:
            raise VertexError(v, self.graph.n)
        adj = self.graph.adjacency
        alive = self._alive
        seen = {v}
        queue = deque([v])
        while queue:
            u = queue.popleft()
            for w in adj[u] & alive:
                if w not in seen:
                    seen.add(w)
                    queue.append(w)
        return seen

    def components(self) -> list[set[int]]:
        """All alive connected components, ordered by smallest member."""
        from repro.graphs.components import connected_components_of

        return connected_components_of(self.graph, self._alive)
