"""A mutable peeling workspace over an immutable graph.

The min/max solvers and the non-overlapping wrappers repeatedly delete
vertices *from the same evolving graph* while keeping the remainder a
k-core — recopying adjacency for every deletion would be quadratic.
:class:`PeelingWorkspace` keeps an alive-set plus per-vertex induced
degrees and performs "remove v and cascade below-k vertices" in time
proportional to the affected region.  It records each cascade so callers
can inspect exactly what a removal cost (the sum solver's child expansion
reasons about that set).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.errors import SpecError, VertexError
from repro.graphs.graph import Graph


class PeelingWorkspace:
    """Alive-set view of a graph supporting cascade deletions at level k.

    After construction the workspace holds the maximal k-core of the given
    subset (vertices below k are cascaded immediately), so the invariant
    *every alive vertex has alive-degree >= k* holds at all times.
    """

    __slots__ = ("graph", "k", "_alive", "_degree")

    def __init__(
        self, graph: Graph, k: int, vertices: Iterable[int] | None = None
    ) -> None:
        if k < 0:
            raise SpecError(f"degree constraint k must be non-negative, got {k}")
        self.graph = graph
        self.k = k
        if vertices is None:
            self._alive = set(range(graph.n))
        else:
            self._alive = set(vertices)
            for v in self._alive:
                graph.check_vertex(v)
        adj = graph.adjacency
        self._degree = {v: len(adj[v] & self._alive) for v in self._alive}
        # Establish the k-core invariant up front.
        underfull = [v for v, d in self._degree.items() if d < k]
        self._cascade(underfull)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def alive(self) -> set[int]:
        """The current alive vertex set.  Treat as read-only."""
        return self._alive

    def __len__(self) -> int:
        return len(self._alive)

    def __contains__(self, v: int) -> bool:
        return v in self._alive

    def degree(self, v: int) -> int:
        """Alive-induced degree of an alive vertex."""
        if v not in self._alive:
            raise VertexError(v, self.graph.n)
        return self._degree[v]

    def alive_neighbors(self, v: int) -> set[int]:
        """Alive neighbours of ``v`` (fresh set, safe to keep)."""
        return self.graph.adjacency[v] & self._alive

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _cascade(self, seeds: Iterable[int]) -> list[int]:
        """Remove ``seeds`` and everything that falls below k.  Returns the
        full list of removed vertices (seeds first, cascade order after)."""
        adj = self.graph.adjacency
        alive, degree, k = self._alive, self._degree, self.k
        removed: list[int] = []
        queue = deque(seeds)
        for v in queue:
            if v in alive:
                alive.discard(v)
                removed.append(v)
        i = 0
        while i < len(removed):
            v = removed[i]
            i += 1
            degree.pop(v, None)
            for u in adj[v] & alive:
                degree[u] -= 1
                if degree[u] < k:
                    alive.discard(u)
                    removed.append(u)
        return removed

    def remove(self, v: int) -> list[int]:
        """Delete alive vertex ``v``; cascade; return all removed vertices."""
        if v not in self._alive:
            raise VertexError(v, self.graph.n)
        return self._cascade([v])

    def remove_all(self, vertices: Iterable[int]) -> list[int]:
        """Delete several vertices at once (e.g. a whole community in the
        non-overlapping wrappers); cascade; return all removed vertices."""
        seeds = [v for v in vertices if v in self._alive]
        return self._cascade(seeds)

    # ------------------------------------------------------------------
    # Component queries on the alive set
    # ------------------------------------------------------------------
    def component_of(self, v: int) -> set[int]:
        """The alive connected component containing ``v``."""
        if v not in self._alive:
            raise VertexError(v, self.graph.n)
        adj = self.graph.adjacency
        alive = self._alive
        seen = {v}
        queue = deque([v])
        while queue:
            u = queue.popleft()
            for w in adj[u] & alive:
                if w not in seen:
                    seen.add(w)
                    queue.append(w)
        return seen

    def components(self) -> list[set[int]]:
        """All alive connected components, ordered by smallest member."""
        from repro.graphs.components import connected_components_of

        return connected_components_of(self.graph, self._alive)
