"""Maximal k-cores and connected k-core components of vertex subsets.

Two operations dominate the solvers' inner loops:

* ``kcore_of_subset(graph, vertices, k)`` — iteratively delete vertices of
  the induced subgraph with degree < k until a fixpoint; what remains is
  the unique maximal sub-k-core (possibly empty).
* ``connected_kcore_components`` — the same, split into connected
  components; these are exactly the candidate communities of Algorithms
  1 and 2 ("compute the connected k-core of H").

Both run in O(|H| + |E(G[H])|) using a worklist of underfull vertices.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

import numpy as np

from repro.core.decomposition import core_decomposition
from repro.errors import SpecError
from repro.graphs.backend import resolve_backend
from repro.graphs.components import connected_components_of
from repro.graphs.csr import membership_mask
from repro.graphs.graph import Graph


def _check_k(k: int) -> None:
    if k < 0:
        raise SpecError(f"degree constraint k must be non-negative, got {k}")


def maximal_kcore(graph: Graph, k: int, backend: str = "auto") -> set[int]:
    """Vertex set of the maximal k-core of the whole graph.

    Uses the core decomposition (O(n + m)) and thresholds at k, which both
    computes the answer and caches nothing — callers doing many k values
    should threshold :func:`core_decomposition` themselves.
    """
    _check_k(k)
    cores = core_decomposition(graph, backend=backend)
    return set(np.flatnonzero(cores >= k).tolist())


def kcore_of_subset(
    graph: Graph, vertices: Iterable[int], k: int, backend: str = "auto"
) -> set[int]:
    """The maximal sub-k-core of ``G[vertices]`` (empty set if none).

    The result is the unique maximal subset of ``vertices`` whose induced
    subgraph has minimum degree >= k.  The CSR backend peels a boolean
    mask with vectorised frontier rounds
    (:meth:`repro.graphs.csr.CSRAdjacency.peel_to_kcore`) — except for
    subsets tiny relative to the graph, where the O(n) mask rounds would
    dwarf the work and the set peel's subset-proportional cost wins.  The
    set backend runs the standard worklist peel: start from vertices whose
    induced degree is below k, cascade deletions.
    """
    _check_k(k)
    alive = set(vertices)
    if resolve_backend(backend) == "csr" and len(alive) * 16 >= graph.n:
        mask = membership_mask(graph.n, alive)
        mask, __ = graph.csr.peel_to_kcore(mask, k)
        return set(np.flatnonzero(mask).tolist())
    for v in alive:
        graph.check_vertex(v)
    adj = graph.adjacency
    degree = {v: len(adj[v] & alive) for v in alive}
    queue = deque(v for v, d in degree.items() if d < k)
    in_queue = set(queue)
    while queue:
        v = queue.popleft()
        in_queue.discard(v)
        if v not in alive:
            continue
        alive.discard(v)
        for u in adj[v] & alive:
            degree[u] -= 1
            if degree[u] < k and u not in in_queue:
                queue.append(u)
                in_queue.add(u)
    return alive


def connected_kcore_components(
    graph: Graph, vertices: Iterable[int], k: int, backend: str = "auto"
) -> list[set[int]]:
    """Connected components of the maximal sub-k-core of ``G[vertices]``.

    These are the "disjoint connected components of k-core(H)" that
    Algorithms 1 and 2 enumerate.  Ordered by smallest member for
    determinism.
    """
    core = kcore_of_subset(graph, vertices, k, backend=backend)
    if not core:
        return []
    return connected_components_of(graph, core, backend=backend)


def is_kcore_subset(graph: Graph, vertices: Iterable[int], k: int) -> bool:
    """True if ``G[vertices]`` already has minimum induced degree >= k.

    This is the "C is k-core" test of the local-search strategies —
    note it checks cohesiveness only, not connectivity.
    """
    _check_k(k)
    subset = set(vertices)
    if not subset:
        return False
    adj = graph.adjacency
    return all(len(adj[v] & subset) >= k for v in subset)
