"""Core decomposition via the Batagelj–Zaveršnik bucket-peeling algorithm.

The *core number* of a vertex is the largest k such that the vertex belongs
to a (non-empty) k-core.  One O(n + m) pass computes all core numbers,
from which every maximal k-core falls out by thresholding — this is the
preprocessing step of every solver, and it also yields the ``kmax`` column
of the paper's Table III (the largest k with a non-empty k-core).

Two implementations coexist behind the ``backend=`` switch: the original
pointer-chasing BZ peel over set adjacency (``"set"``) and the kernel-tier
flat-array implementation (``"csr"``, the default) — a vectorised
degree-wave peel in pure numpy, or the compiled BZ bucket loop when Numba
is installed (:func:`repro.kernels.core_numbers` dispatches).

Reference: V. Batagelj and M. Zaveršnik, "An O(m) Algorithm for Cores
Decomposition of Networks", 2003.
"""

from __future__ import annotations

import numpy as np

from repro import kernels
from repro.graphs.backend import resolve_backend
from repro.graphs.graph import Graph


def core_decomposition(graph: Graph, backend: str = "auto") -> np.ndarray:
    """Core number of every vertex, O(n + m).

    ``backend="csr"`` dispatches to the kernel tier
    (:func:`repro.kernels.core_numbers`); ``backend="set"`` runs BZ
    bucket peeling: vertices sorted by current
    degree in a flat array with bucket boundaries; repeatedly peel the
    minimum-degree vertex and decrement neighbours, swapping them down a
    bucket.  Both return the identical int64 core-number array.
    """
    n = graph.n
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if resolve_backend(backend) == "csr":
        csr = graph.csr
        return kernels.core_numbers(csr.indptr, csr.indices)
    adj = graph.adjacency
    degree = [len(adj[v]) for v in range(n)]
    max_degree = max(degree)

    # Counting sort of vertices by degree.
    bin_start = [0] * (max_degree + 2)
    for d in degree:
        bin_start[d + 1] += 1
    for d in range(1, max_degree + 2):
        bin_start[d] += bin_start[d - 1]
    # bin_start[d] = first index of the degree-d block in `order`.
    position = [0] * n
    order = [0] * n
    cursor = bin_start[:]
    for v in range(n):
        position[v] = cursor[degree[v]]
        order[position[v]] = v
        cursor[degree[v]] += 1

    core = degree[:]
    for i in range(n):
        v = order[i]
        for u in adj[v]:
            if core[u] > core[v]:
                # Swap u with the first vertex of its degree block, then
                # shrink the block from the left — an O(1) bucket demotion.
                du = core[u]
                pu = position[u]
                pw = bin_start[du]
                w = order[pw]
                if u != w:
                    order[pu], order[pw] = w, u
                    position[u], position[w] = pw, pu
                bin_start[du] += 1
                core[u] -= 1
    return np.asarray(core, dtype=np.int64)


def kmax(graph: Graph) -> int:
    """The largest k for which a non-empty k-core exists (Table III)."""
    if graph.n == 0:
        return 0
    return int(core_decomposition(graph).max())


def core_number_histogram(graph: Graph) -> dict[int, int]:
    """Map core number -> how many vertices have it (diagnostics)."""
    cores = core_decomposition(graph)
    values, counts = np.unique(cores, return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}
