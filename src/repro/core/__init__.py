"""k-core machinery: decomposition, maximal k-core, cascade peeling.

The paper's community model is built entirely on the k-core (Definition 1):
every solver needs (a) the maximal k-core of the graph, (b) connected
k-core components of arbitrary vertex subsets after vertex removals, and
(c) an efficient "remove vertex and cascade" primitive.  This package
provides all three.
"""

from repro.core.decomposition import core_decomposition, core_number_histogram, kmax
from repro.core.kcore import (
    connected_kcore_components,
    is_kcore_subset,
    kcore_of_subset,
    maximal_kcore,
)
from repro.core.peeler import PeelingWorkspace

__all__ = [
    "PeelingWorkspace",
    "connected_kcore_components",
    "core_decomposition",
    "core_number_histogram",
    "is_kcore_subset",
    "kcore_of_subset",
    "kmax",
    "maximal_kcore",
]
