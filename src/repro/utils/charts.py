"""ASCII charts for the benchmark reports.

The paper presents its evaluation as log-scale line plots; the harness's
tables carry the same data, and this module renders them as terminal
charts so the *shape* (who wins, where curves rise and cross) is visible
at a glance without matplotlib.

One column group per x value, one symbol per series, log-10 y scale by
default (matching the paper's axes).
"""

from __future__ import annotations

import math
from typing import Sequence

#: Plot symbols assigned to series in order.
SYMBOLS = "ox+*#@%&"


def _log10(value: float) -> float:
    return math.log10(max(value, 1e-12))


def ascii_chart(
    axis_values: Sequence[object],
    series: dict[str, Sequence[float | None]],
    height: int = 10,
    log_scale: bool = True,
    y_label: str = "seconds",
) -> str:
    """Render named series over a shared x axis as an ASCII chart.

    ``None`` points (skipped measurements) are simply absent.  With
    ``log_scale`` the y axis is log-10, like the paper's running-time
    figures.  Returns a multi-line string; empty series yield a stub.
    """
    points: list[tuple[int, int, str]] = []  # (x index, row, symbol)
    values = [
        v
        for ys in series.values()
        for v in ys
        if v is not None and v > 0
    ]
    if not values or height < 2:
        return "(no data to chart)"
    transform = _log10 if log_scale else float
    lo = min(transform(v) for v in values)
    hi = max(transform(v) for v in values)
    span = hi - lo or 1.0

    symbol_of = {
        name: SYMBOLS[i % len(SYMBOLS)] for i, name in enumerate(series)
    }
    for name, ys in series.items():
        for xi, v in enumerate(ys):
            if v is None or v <= 0:
                continue
            frac = (transform(v) - lo) / span
            row = round(frac * (height - 1))
            points.append((xi, row, symbol_of[name]))

    width_per_x = max(len(str(x)) for x in axis_values) + 2
    grid = [
        [" " for __ in range(width_per_x * len(axis_values))]
        for __ in range(height)
    ]
    for xi, row, symbol in points:
        col = xi * width_per_x + width_per_x // 2
        target = grid[height - 1 - row]
        # Collision: show a '*' where two series coincide.
        target[col] = symbol if target[col] == " " else "*"

    top_value = 10**hi if log_scale else hi
    bottom_value = 10**lo if log_scale else lo
    lines = [f"{y_label} ({'log scale' if log_scale else 'linear'})"]
    for i, row in enumerate(grid):
        if i == 0:
            prefix = f"{top_value:9.3g} |"
        elif i == height - 1:
            prefix = f"{bottom_value:9.3g} |"
        else:
            prefix = " " * 9 + " |"
        lines.append(prefix + "".join(row))
    axis_line = " " * 9 + " +" + "-" * (width_per_x * len(axis_values))
    lines.append(axis_line)
    labels = "".join(str(x).center(width_per_x) for x in axis_values)
    lines.append(" " * 11 + labels)
    legend = "   ".join(f"{sym}={name}" for name, sym in symbol_of.items())
    lines.append(" " * 11 + legend)
    return "\n".join(lines)
