"""Plain-text and Markdown table rendering for the benchmark reports.

The paper reports every experiment as a table or log-scale figure; our
harness prints the same rows as aligned ASCII (for terminals) and Markdown
(for EXPERIMENTS.md).  Cells are stringified with a compact float format so
the tables stay readable.
"""

from __future__ import annotations

from typing import Sequence


def _render_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table.

    >>> print(format_table(["a", "b"], [[1, 2.5]]))
    a | b
    --+----
    1 | 2.5
    """
    str_rows = [[_render_cell(cell) for cell in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def format_markdown_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Render a GitHub-flavoured Markdown table."""
    str_rows = [[_render_cell(cell) for cell in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells but there are {len(headers)} headers"
            )
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join("---" for __ in headers) + "|")
    for row in str_rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)
