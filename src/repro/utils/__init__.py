"""Small self-contained data structures and helpers used across the library.

Nothing in this package knows about graphs or communities; it is the layer
below the substrate: disjoint sets, heaps, incremental set hashing, sorted
multisets, top-r accumulators, timing, seeded randomness and ASCII tables.
"""

from repro.utils.dsu import DisjointSetUnion
from repro.utils.heaps import IndexedMaxHeap, LazyMaxHeap
from repro.utils.rng import make_rng, spawn_seeds
from repro.utils.sortedlist import SortedMultiset
from repro.utils.stats import IncrementalStats, SubsetStats
from repro.utils.tables import format_table, format_markdown_table
from repro.utils.timing import Stopwatch, format_seconds
from repro.utils.topr import TopR
from repro.utils.zobrist import ZobristHasher

__all__ = [
    "DisjointSetUnion",
    "IndexedMaxHeap",
    "LazyMaxHeap",
    "IncrementalStats",
    "SubsetStats",
    "SortedMultiset",
    "Stopwatch",
    "TopR",
    "ZobristHasher",
    "format_markdown_table",
    "format_seconds",
    "format_table",
    "make_rng",
    "spawn_seeds",
]
