"""Weight statistics of vertex subsets, with incremental maintenance.

Every aggregation function in the paper's Table I is a function of the tuple
``(|H|, w(H), min w, max w)`` plus the graph-level total weight (needed only
by balanced density).  :class:`SubsetStats` is the immutable tuple;
:class:`IncrementalStats` maintains it under vertex insertions and removals
so the local-search strategies can re-evaluate ``f(C)`` in O(log s) per move
instead of O(|C|).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.sortedlist import SortedMultiset


@dataclass(frozen=True)
class SubsetStats:
    """Immutable weight statistics of a vertex subset."""

    size: int
    weight_sum: float
    weight_min: float
    weight_max: float

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"size must be non-negative, got {self.size}")
        if self.size == 0 and self.weight_sum != 0.0:
            raise ValueError("empty subset must have zero weight sum")

    @staticmethod
    def empty() -> "SubsetStats":
        """Statistics of the empty set (min/max are +/-inf sentinels)."""
        return SubsetStats(0, 0.0, float("inf"), float("-inf"))

    @staticmethod
    def of(weights: "list[float]") -> "SubsetStats":
        """Compute statistics of an explicit weight list."""
        if not weights:
            return SubsetStats.empty()
        return SubsetStats(len(weights), float(sum(weights)), min(weights), max(weights))


class IncrementalStats:
    """Mutable subset statistics with O(log s) add/remove.

    Minima/maxima are kept exact through a :class:`SortedMultiset`, so unlike
    the common sum-only accumulators this structure supports *removals*
    without ever recomputing from scratch — the property-based tests pin the
    equivalence with recomputation.
    """

    __slots__ = ("_weights", "_sum")

    def __init__(self) -> None:
        self._weights = SortedMultiset()
        self._sum = 0.0

    def __len__(self) -> int:
        return len(self._weights)

    def add(self, weight: float) -> None:
        """Account for one vertex of ``weight`` joining the subset."""
        self._weights.add(weight)
        self._sum += weight

    def remove(self, weight: float) -> None:
        """Account for one vertex of ``weight`` leaving the subset."""
        self._weights.remove(weight)
        self._sum -= weight

    @property
    def size(self) -> int:
        """Current subset cardinality."""
        return len(self._weights)

    @property
    def weight_sum(self) -> float:
        """Current total weight."""
        return self._sum

    def snapshot(self) -> SubsetStats:
        """Freeze the current statistics into a :class:`SubsetStats`."""
        if not self._weights:
            return SubsetStats.empty()
        return SubsetStats(
            len(self._weights), self._sum, self._weights.min(), self._weights.max()
        )
