"""Incremental set hashing (Zobrist hashing) for community de-duplication.

Algorithm 2 (TIC-IMPROVED) expands a community by removing one vertex and
re-coring; different removal orders frequently converge to the same child
community.  Recomputing a canonical key (sorted tuple) per child would cost
O(|H| log |H|) each time; a Zobrist hash instead assigns every vertex a fixed
random 64-bit token and hashes a vertex set as the XOR of its members'
tokens, which updates in O(1) per insertion/removal.

XOR hashing has the usual caveat — distinct sets may collide — so the hash is
used as a *filter key* only: sets mapping to the same key are compared
exactly before being declared duplicates (see ``CommunityDeduper``).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

_TOKEN_DTYPE = np.uint64


class ZobristHasher:
    """Fixed random token per vertex; set hash = XOR of member tokens."""

    __slots__ = ("_tokens",)

    def __init__(self, n: int, seed: int = 0x5EED) -> None:
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        rng = np.random.default_rng(seed)
        self._tokens = rng.integers(
            0, np.iinfo(_TOKEN_DTYPE).max, size=n, dtype=_TOKEN_DTYPE
        )
        # A write anywhere in this array would silently desynchronise the
        # incremental keys (toggle/toggle_many) from hash_set.
        self._tokens.setflags(write=False)

    def __len__(self) -> int:
        return len(self._tokens)

    @property
    def tokens(self) -> np.ndarray:
        """The raw uint64 token array (read-only; index by vertex id).

        Exposed so vectorised callers (the CSR expansion engine) can gather
        per-vertex tokens without a Python loop.
        """
        return self._tokens

    def token(self, vertex: int) -> int:
        """The fixed 64-bit token of ``vertex``."""
        return int(self._tokens[vertex])

    def hash_set(self, vertices: Iterable[int]) -> int:
        """Hash a whole vertex set from scratch (O(|set|))."""
        h = 0
        tokens = self._tokens
        for v in vertices:
            h ^= int(tokens[v])
        return h

    def hash_members(self, vertices: np.ndarray) -> int:
        """Vectorised :meth:`hash_set` over an integer id array.

        XOR is associative/commutative and exact on integers, so the numpy
        reduction returns bit-identical keys to the Python loop.
        """
        if vertices.size == 0:
            return 0
        return int(np.bitwise_xor.reduce(self._tokens[vertices]))

    def toggle(self, current: int, vertex: int) -> int:
        """Hash after adding-or-removing ``vertex`` from a set hashed as
        ``current`` (XOR is its own inverse, so add and remove coincide)."""
        return current ^ int(self._tokens[vertex])

    def toggle_many(self, current: int, vertices: np.ndarray) -> int:
        """Vectorised :meth:`toggle` over an id array (XOR all tokens in)."""
        if vertices.size == 0:
            return current
        return current ^ int(np.bitwise_xor.reduce(self._tokens[vertices]))


class CommunityDeduper:
    """Exact de-duplication of vertex sets with a Zobrist pre-filter.

    ``add`` returns True the first time a set is seen and False on
    duplicates.  Collisions on the 64-bit key are resolved by comparing
    frozensets, so the structure is exact.
    """

    __slots__ = ("_hasher", "_buckets")

    def __init__(self, hasher: ZobristHasher) -> None:
        self._hasher = hasher
        self._buckets: dict[int, list[frozenset[int]]] = {}

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def add(self, vertices: frozenset[int], key: int | None = None) -> bool:
        """Record ``vertices``; True if new, False if already present.

        ``key`` may carry an incrementally maintained Zobrist hash to skip
        the from-scratch hashing.
        """
        if key is None:
            key = self._hasher.hash_set(vertices)
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = [vertices]
            return True
        if any(existing == vertices for existing in bucket):
            return False
        bucket.append(vertices)
        return True

    def seen(self, vertices: frozenset[int], key: int | None = None) -> bool:
        """True if ``vertices`` has been added before (no mutation)."""
        if key is None:
            key = self._hasher.hash_set(vertices)
        bucket = self._buckets.get(key)
        return bucket is not None and any(existing == vertices for existing in bucket)
