"""Bounded top-r accumulator.

Algorithms 1, 2 and 4 all maintain "the current top-r communities" while
streaming in candidates.  :class:`TopR` keeps the best ``r`` items seen so
far under a caller-supplied key, with deterministic tie-breaking, O(log r)
insertion, and O(1) access to the current r-th value (the pruning threshold
``f(Lr)`` used throughout Section V).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Generic, Iterable, Iterator, TypeVar

T = TypeVar("T")


class TopR(Generic[T]):
    """Keep the ``r`` largest items by ``key`` among everything offered.

    Ties on the key are broken by insertion order (earlier wins), which makes
    results reproducible across runs.  ``offer`` returns True when the item
    enters the current top-r.
    """

    __slots__ = ("_r", "_key", "_heap", "_counter")

    def __init__(self, r: int, key: Callable[[T], float]) -> None:
        if r <= 0:
            raise ValueError(f"r must be positive, got {r}")
        self._r = r
        self._key = key
        # Min-heap of (key, -order, item): the root is the weakest member.
        self._heap: list[tuple[float, int, T]] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __iter__(self) -> Iterator[T]:
        """Iterate current members best-first."""
        return iter(self.ranked())

    @property
    def capacity(self) -> int:
        """The ``r`` this accumulator was constructed with."""
        return self._r

    @property
    def is_full(self) -> bool:
        """True once r items are held."""
        return len(self._heap) >= self._r

    def offer(self, item: T) -> bool:
        """Submit ``item``; True if it is (now) part of the top-r."""
        entry = (self._key(item), -next(self._counter), item)
        if len(self._heap) < self._r:
            heapq.heappush(self._heap, entry)
            return True
        if entry > self._heap[0]:
            heapq.heapreplace(self._heap, entry)
            return True
        return False

    def offer_all(self, items: Iterable[T]) -> int:
        """Submit many items; return how many entered the top-r."""
        return sum(1 for item in items if self.offer(item))

    def threshold(self, default: float = float("-inf")) -> float:
        """Key of the current r-th item, or ``default`` if not yet full.

        This is the ``f(Lr)`` pruning bound of Algorithms 2 and 4: only
        candidates strictly better than the threshold can change the result.
        """
        if not self.is_full:
            return default
        return self._heap[0][0]

    def weakest(self) -> T:
        """The current r-th (weakest) item; IndexError when empty."""
        if not self._heap:
            raise IndexError("weakest of empty TopR")
        return self._heap[0][2]

    def best(self) -> T:
        """The current best item; IndexError when empty."""
        if not self._heap:
            raise IndexError("best of empty TopR")
        return max(self._heap)[2]

    def ranked(self) -> list[T]:
        """Members sorted best-first (stable under ties)."""
        return [item for __, __, item in sorted(self._heap, reverse=True)]
