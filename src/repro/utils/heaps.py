"""Heap variants used by the solvers.

Two flavours are provided:

* :class:`IndexedMaxHeap` — a max-heap over integer keys with O(log n)
  ``push``/``pop``/``remove``/``update``.  The peeling algorithms use it to
  always extract the minimum/maximum weight vertex while supporting the
  removal of cascaded vertices.
* :class:`LazyMaxHeap` — a max-heap over arbitrary payloads keyed by a float
  priority, with lazy deletion.  Algorithm 2's candidate community list is
  one of these (communities are pushed once, invalidated by token).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Generic, Iterator, TypeVar

T = TypeVar("T")


class IndexedMaxHeap:
    """Binary max-heap over integer items with an index for random removal.

    Items are arbitrary (hashable) integers; each item has a float priority.
    Pass ``reverse=True`` for min-heap behaviour.  Ties are broken by item id
    (ascending) so iteration orders are deterministic.
    """

    __slots__ = ("_heap", "_pos", "_prio", "_sign")

    def __init__(self, reverse: bool = False) -> None:
        self._heap: list[int] = []
        self._pos: dict[int, int] = {}
        self._prio: dict[int, float] = {}
        self._sign = 1.0 if not reverse else -1.0

    def __len__(self) -> int:
        return len(self._heap)

    def __contains__(self, item: int) -> bool:
        return item in self._pos

    def _less(self, a: int, b: int) -> bool:
        # True if item a should sit *below* item b (a is worse than b).
        pa, pb = self._sign * self._prio[a], self._sign * self._prio[b]
        if pa != pb:
            return pa < pb
        return a > b

    def _swap(self, i: int, j: int) -> None:
        heap, pos = self._heap, self._pos
        heap[i], heap[j] = heap[j], heap[i]
        pos[heap[i]], pos[heap[j]] = i, j

    def _sift_up(self, i: int) -> None:
        heap = self._heap
        while i > 0:
            parent = (i - 1) >> 1
            if self._less(heap[parent], heap[i]):
                self._swap(i, parent)
                i = parent
            else:
                break

    def _sift_down(self, i: int) -> None:
        heap = self._heap
        n = len(heap)
        while True:
            left, right = 2 * i + 1, 2 * i + 2
            best = i
            if left < n and self._less(heap[best], heap[left]):
                best = left
            if right < n and self._less(heap[best], heap[right]):
                best = right
            if best == i:
                return
            self._swap(i, best)
            i = best

    def push(self, item: int, priority: float) -> None:
        """Insert ``item`` with ``priority``; item must not be present."""
        if item in self._pos:
            raise KeyError(f"item {item} already in heap")
        self._prio[item] = priority
        self._heap.append(item)
        self._pos[item] = len(self._heap) - 1
        self._sift_up(len(self._heap) - 1)

    def peek(self) -> tuple[int, float]:
        """Return (item, priority) of the top without removing it."""
        if not self._heap:
            raise IndexError("peek from empty heap")
        top = self._heap[0]
        return top, self._prio[top]

    def pop(self) -> tuple[int, float]:
        """Remove and return (item, priority) of the top."""
        item, priority = self.peek()
        self.remove(item)
        return item, priority

    def remove(self, item: int) -> float:
        """Remove ``item`` from anywhere in the heap; return its priority."""
        i = self._pos.pop(item)
        priority = self._prio.pop(item)
        last = self._heap.pop()
        if i < len(self._heap):
            self._heap[i] = last
            self._pos[last] = i
            self._sift_down(i)
            self._sift_up(i)
        return priority

    def update(self, item: int, priority: float) -> None:
        """Change the priority of ``item`` in place."""
        if item not in self._pos:
            raise KeyError(f"item {item} not in heap")
        old = self._prio[item]
        if priority == old:
            return
        self._prio[item] = priority
        i = self._pos[item]
        self._sift_up(i)
        self._sift_down(i)

    def priority_of(self, item: int) -> float:
        """Current priority of ``item``."""
        return self._prio[item]

    def items(self) -> Iterator[tuple[int, float]]:
        """Iterate (item, priority) in arbitrary heap order."""
        for item in self._heap:
            yield item, self._prio[item]


class LazyMaxHeap(Generic[T]):
    """Max-heap of (priority, payload) pairs with lazy invalidation.

    Payloads are given opaque tokens on push; ``invalidate(token)`` marks an
    entry dead without touching the heap, and dead entries are skipped on
    ``pop``/``peek``.  Suited to the solver frontier where entries are
    superseded far more often than they are popped.
    """

    __slots__ = ("_heap", "_dead", "_counter", "_live")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, T]] = []
        self._dead: set[int] = set()
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, priority: float, payload: T) -> int:
        """Insert ``payload``; return a token usable with invalidate()."""
        token = next(self._counter)
        heapq.heappush(self._heap, (-priority, token, payload))
        self._live += 1
        return token

    def invalidate(self, token: int) -> None:
        """Mark the entry with ``token`` as removed."""
        if token in self._dead:
            return
        self._dead.add(token)
        self._live -= 1

    def _prune(self) -> None:
        heap = self._heap
        while heap and heap[0][1] in self._dead:
            __, token, __payload = heapq.heappop(heap)
            self._dead.discard(token)

    def peek(self) -> tuple[float, T]:
        """Return (priority, payload) of the live top without removing."""
        self._prune()
        if not self._heap:
            raise IndexError("peek from empty heap")
        neg, __, payload = self._heap[0]
        return -neg, payload

    def pop(self) -> tuple[float, T]:
        """Remove and return (priority, payload) of the live top."""
        self._prune()
        if not self._heap:
            raise IndexError("pop from empty heap")
        neg, __, payload = heapq.heappop(self._heap)
        self._live -= 1
        return -neg, payload
