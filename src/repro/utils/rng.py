"""Seeded randomness helpers.

Everything stochastic in the library (graph generators, random local-search
order, benchmark workloads) flows through :func:`make_rng` so that a single
integer seed reproduces an entire experiment, and :func:`spawn_seeds`
derives independent child seeds for sub-tasks without seed reuse.
"""

from __future__ import annotations

import numpy as np

#: Default seed used by dataset builders when the caller does not pick one.
DEFAULT_SEED = 20220701  # arXiv submission date of the paper, 2022-07-01.


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Coerce ``seed`` into a numpy Generator.

    Accepts an existing Generator (returned as-is, allowing call-site
    chaining), an integer, or None for the library default seed — never the
    global unseeded state, so runs are reproducible by construction.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def spawn_seeds(seed: int, count: int) -> list[int]:
    """Derive ``count`` independent 32-bit child seeds from ``seed``."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seq = np.random.SeedSequence(seed)
    return [int(s) for s in seq.generate_state(count)]
