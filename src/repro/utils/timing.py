"""Wall-clock measurement helpers for the benchmark harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Stopwatch:
    """Accumulating stopwatch usable as a context manager.

    >>> sw = Stopwatch()
    >>> with sw:
    ...     __ = sum(range(1000))
    >>> sw.elapsed > 0
    True

    Repeated ``with`` blocks accumulate into ``elapsed``; ``laps`` records
    each block separately so sweep runners can report per-run times.
    """

    elapsed: float = 0.0
    laps: list[float] = field(default_factory=list)
    _started_at: float | None = None

    def start(self) -> None:
        """Begin a lap; error if one is already running."""
        if self._started_at is not None:
            raise RuntimeError("stopwatch already running")
        self._started_at = time.perf_counter()

    def stop(self) -> float:
        """End the current lap; return its duration."""
        if self._started_at is None:
            raise RuntimeError("stopwatch not running")
        lap = time.perf_counter() - self._started_at
        self._started_at = None
        self.elapsed += lap
        self.laps.append(lap)
        return lap

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def reset(self) -> None:
        """Zero the accumulated time and laps."""
        if self._started_at is not None:
            raise RuntimeError("cannot reset a running stopwatch")
        self.elapsed = 0.0
        self.laps.clear()


def format_seconds(seconds: float) -> str:
    """Render a duration the way the paper's log-scale plots read.

    >>> format_seconds(0.00042)
    '420us'
    >>> format_seconds(2.5)
    '2.50s'
    """
    if seconds < 0:
        raise ValueError(f"negative duration: {seconds}")
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 60.0:
        return f"{seconds:.2f}s"
    minutes, rem = divmod(seconds, 60.0)
    return f"{int(minutes)}m{rem:04.1f}s"
