"""Disjoint-set union (union-find) with path compression and union by size.

Used by the graph generators (to stitch components together), by connected
component computations over vertex subsets, and by the certifier when
checking that a claimed community is connected.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class DisjointSetUnion:
    """Classic union-find over the integers ``0..n-1``.

    Amortised near-O(1) ``find``/``union``.  ``components`` materialises the
    current partition, which is O(n).
    """

    __slots__ = ("_parent", "_size", "_count")

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        self._parent = list(range(n))
        self._size = [1] * n
        self._count = n

    def __len__(self) -> int:
        return len(self._parent)

    @property
    def component_count(self) -> int:
        """Number of disjoint sets currently in the structure."""
        return self._count

    def find(self, x: int) -> int:
        """Return the canonical representative of ``x``'s set."""
        parent = self._parent
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(self, a: int, b: int) -> bool:
        """Merge the sets containing ``a`` and ``b``.

        Returns True if a merge happened, False if they were already joined.
        """
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        self._count -= 1
        return True

    def connected(self, a: int, b: int) -> bool:
        """True if ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    def size_of(self, x: int) -> int:
        """Size of the set containing ``x``."""
        return self._size[self.find(x)]

    def union_all(self, pairs: Iterable[tuple[int, int]]) -> int:
        """Union every pair in ``pairs``; return the number of merges."""
        merges = 0
        for a, b in pairs:
            if self.union(a, b):
                merges += 1
        return merges

    def components(self) -> list[list[int]]:
        """Materialise the partition as a list of sorted vertex lists."""
        groups: dict[int, list[int]] = {}
        for x in range(len(self._parent)):
            groups.setdefault(self.find(x), []).append(x)
        return sorted(groups.values(), key=lambda g: g[0])

    def representatives(self) -> Iterator[int]:
        """Yield one canonical representative per set."""
        for x in range(len(self._parent)):
            if self.find(x) == x:
                yield x
