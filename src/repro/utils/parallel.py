"""Worker/thread sizing helpers shared by every executor the repo builds.

Two distinct concerns live here:

* **Process sizing** — :func:`effective_cpu_count` is the one place that
  answers "how many workers can actually run?"  ``os.process_cpu_count``
  (Python 3.13+) respects CPU affinity; older interpreters fall back to
  ``sched_getaffinity`` and then ``os.cpu_count``.  :func:`cap_workers`
  clamps a requested pool size to it: forking one process per work item
  regardless of cores (the pre-PR-8 batch-shard bug) just buys fork/IPC
  overhead and memory pressure for zero extra parallelism.
* **Intra-query expansion threads** — the compiled kernels
  (:mod:`repro.kernels`) release the GIL, so independent frontier pops
  inside one expansion can genuinely overlap on threads.
  :func:`expansion_executor` owns the process-wide pool; sizing comes
  from ``REPRO_EXPANSION_THREADS`` (0/1 disables) or, unset, defaults to
  the core count when compiled kernels are active and to 1 (sequential)
  on the pure-numpy fallback, where the GIL would serialise the work
  anyway.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor

__all__ = [
    "cap_workers",
    "effective_cpu_count",
    "expansion_executor",
    "expansion_threads",
]

#: Environment override for intra-query expansion threads ("" = auto).
EXPANSION_THREADS_ENV_VAR = "REPRO_EXPANSION_THREADS"

#: Auto-sizing never grows the expansion pool past this many threads:
#: per-removal work items are small, and queue/wakeup overhead dominates
#: long before wide machines run out of cores.
_MAX_AUTO_EXPANSION_THREADS = 8


def effective_cpu_count() -> int:
    """CPUs this process may actually use (never less than 1)."""
    probe = getattr(os, "process_cpu_count", None)
    count = probe() if probe is not None else None
    if not count:
        try:
            count = len(os.sched_getaffinity(0))
        except (AttributeError, OSError):
            count = os.cpu_count()
    return max(1, int(count or 1))


def cap_workers(requested: int) -> int:
    """Clamp a requested pool size to the usable core count (floor 1)."""
    return max(1, min(int(requested), effective_cpu_count()))


def expansion_threads() -> int:
    """How many threads intra-query expansion should use right now.

    Read per call (not cached) so tests and operators can flip the env
    var without re-importing; 1 means "stay sequential".
    """
    raw = os.environ.get(EXPANSION_THREADS_ENV_VAR, "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            return 1
    from repro import kernels

    if not kernels.NUMBA_AVAILABLE:
        return 1
    return min(effective_cpu_count(), _MAX_AUTO_EXPANSION_THREADS)


_executors: dict[int, ThreadPoolExecutor] = {}
_executors_lock = threading.Lock()


def expansion_executor() -> "tuple[ThreadPoolExecutor | None, int]":
    """The shared expansion pool and its speculation window.

    Returns ``(None, 0)`` when expansion should stay sequential.  Pools
    are created lazily, one per distinct thread count, and kept for the
    life of the process — idle threads cost nothing and reusing the pool
    avoids paying thread startup inside every query.
    """
    count = expansion_threads()
    if count <= 1:
        return None, 0
    with _executors_lock:
        executor = _executors.get(count)
        if executor is None:
            executor = ThreadPoolExecutor(
                max_workers=count, thread_name_prefix="repro-expansion"
            )
            _executors[count] = executor
    # The window bounds how many removals run ahead of the consumer: deep
    # enough to keep every thread fed, shallow enough that a floor that
    # tightens mid-batch wastes little speculative work.
    return executor, 2 * count
