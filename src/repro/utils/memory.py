"""Process-memory introspection for the serving fleet.

The fleet benchmarks and the ``/stats`` endpoint both need the resident
set size of the *current* process, without psutil.  On Linux the
authoritative number is ``VmRSS`` in ``/proc/self/status``; elsewhere we
fall back to ``resource.getrusage`` (``ru_maxrss`` is a high-water mark,
not the current value, but it is the best the stdlib offers and is only
used off-Linux).
"""

from __future__ import annotations

import os
import sys

__all__ = ["rss_bytes"]

_UNITS = {"kb": 1024, "mb": 1024 * 1024, "gb": 1024 * 1024 * 1024, "b": 1}


def rss_bytes(pid: int | None = None) -> int:
    """Resident set size in bytes of ``pid`` (default: this process).

    Returns 0 when the value cannot be determined (no procfs and no
    usable getrusage) rather than raising: callers surface it as a
    metric, and a missing metric must never take down a serving process.
    """
    try:
        with open(f"/proc/{pid or 'self'}/status", "rb") as handle:
            for line in handle:
                if line.startswith(b"VmRSS:"):
                    parts = line.split()
                    value = int(parts[1])
                    unit = parts[2].decode().lower() if len(parts) > 2 else "kb"
                    return value * _UNITS.get(unit, 1024)
    except (OSError, ValueError, IndexError):
        pass
    if pid not in (None, os.getpid()):
        return 0
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # Linux reports KiB, macOS reports bytes.
        return peak if sys.platform == "darwin" else peak * 1024
    except (ImportError, ValueError):
        return 0
