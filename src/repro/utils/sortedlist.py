"""A compact sorted multiset built on ``bisect``.

The aggregator layer needs running minima/maxima of community weights under
both insertions and removals; a balanced tree is overkill for the sizes the
local-search strategies touch (at most ``s`` elements, paper default 20), so
a bisect-backed list gives O(log n) search and O(n) insert/remove with tiny
constants — and stays dependency-free.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Iterable, Iterator


class SortedMultiset:
    """Sorted multiset of floats supporting add/discard/min/max/median."""

    __slots__ = ("_data",)

    def __init__(self, values: Iterable[float] = ()) -> None:
        self._data = sorted(values)

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[float]:
        return iter(self._data)

    def __contains__(self, value: float) -> bool:
        i = bisect_left(self._data, value)
        return i < len(self._data) and self._data[i] == value

    def add(self, value: float) -> None:
        """Insert ``value`` (duplicates allowed)."""
        insort(self._data, value)

    def remove(self, value: float) -> None:
        """Remove one occurrence of ``value``; KeyError if absent."""
        i = bisect_left(self._data, value)
        if i >= len(self._data) or self._data[i] != value:
            raise KeyError(f"value {value!r} not in multiset")
        del self._data[i]

    def discard(self, value: float) -> bool:
        """Remove one occurrence if present; return whether removed."""
        try:
            self.remove(value)
        except KeyError:
            return False
        return True

    def min(self) -> float:
        """Smallest element; ValueError when empty."""
        if not self._data:
            raise ValueError("min of empty multiset")
        return self._data[0]

    def max(self) -> float:
        """Largest element; ValueError when empty."""
        if not self._data:
            raise ValueError("max of empty multiset")
        return self._data[-1]

    def kth(self, k: int) -> float:
        """The k-th smallest element (0-based)."""
        return self._data[k]

    def count(self, value: float) -> int:
        """Number of occurrences of ``value``."""
        lo = bisect_left(self._data, value)
        count = 0
        for x in self._data[lo:]:
            if x != value:
                break
            count += 1
        return count
