"""Command-line interface.

Subcommands::

    repro search   --dataset email --k 4 --r 5 --f sum [--s 20] [--tonic]
    repro search   --edges graph.txt --weights w.txt ...
    repro batch    --dataset email --workload queries.json [--workers 4]
    repro serve    --snapshot snap/ --port 8080 [--workers 4] [--index]
    repro update-edges --url http://127.0.0.1:8080 --insert 3,17 --delete 4,9
    repro update-edges --snapshot snap/ --edits edits.json
    repro snapshot save --dataset email --out snap/ [--with-truss]
    repro snapshot load snap/           # inspect + verify a snapshot
    repro index build --snapshot snap/ [--depth 32] [--f sum --f sum-surplus]
    repro index status --snapshot snap/ # per-level coverage of the index
    repro datasets                      # list stand-ins with statistics
    repro bench    --exp fig2 [--out EXPERIMENTS.md]
    repro casestudy                     # the Fig 14 reproduction
    repro verify                        # solver-vs-oracle self check

``batch`` serves a whole JSON workload through one
:class:`repro.serving.service.QueryService` — shared CSR, cached
decompositions, an expansion-engine pool and a keyed result cache —
optionally sharded across worker processes.  The workload file holds a
JSON array of query objects whose fields mirror
:class:`repro.serving.query.InfluentialQuery`::

    [{"k": 4, "r": 5, "f": "sum"},
     {"k": 6, "r": 3, "f": "sum-surplus(1)", "eps": 0.1}]

``serve`` exposes the same service over HTTP (``POST /query``,
``POST /batch`` with the workload schema above, ``POST /update-weights``,
``POST /update-edges``, ``GET /stats``, ``GET /healthz``); ``snapshot
save``/``load`` persist a service's CSR arrays and cached decompositions
so ``serve --snapshot`` restarts come up without re-peeling anything.
``update-edges`` applies edge insertions/deletions either to a running
server (``--url``, via ``POST /update-edges``) or offline to a snapshot
directory (``--snapshot``, rewriting it through the same incremental
:class:`~repro.graphs.delta.GraphDelta` path).

``index build`` precomputes the :class:`repro.index.InfluentialIndex`
for a snapshot — every (k, aggregator) community family down to
``--depth`` — and writes it back into the snapshot, so ``serve
--snapshot`` answers indexed queries by array lookup with zero solver
calls.  ``index status`` prints per-level coverage without rebuilding
anything; ``serve --index`` builds (or deepens) an index at startup for
graphs served straight from ``--dataset``/``--edges``.

Also runnable as ``python -m repro ...``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro._version import __version__
from repro.errors import ReproError


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Top-r influential community search under aggregation functions "
            "(reproduction of Peng et al., ICDE 2022)"
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    search = sub.add_parser("search", help="run a top-r community query")
    source = search.add_mutually_exclusive_group(required=True)
    source.add_argument("--dataset", help="a stand-in dataset name (see `datasets`)")
    source.add_argument("--edges", help="path to a SNAP-style edge list")
    search.add_argument("--weights", help="path to a vertex-weight file")
    search.add_argument("--k", type=int, required=True, help="degree constraint")
    search.add_argument("--r", type=int, default=5, help="number of communities")
    search.add_argument("--f", default="sum", help="aggregation function")
    search.add_argument("--s", type=int, default=None, help="size constraint")
    search.add_argument(
        "--method",
        default="auto",
        help="auto|naive|improved|approx|exact|local|bruteforce",
    )
    search.add_argument("--eps", type=float, default=0.1, help="approx ratio")
    search.add_argument(
        "--tonic", action="store_true", help="non-overlapping communities"
    )
    search.add_argument(
        "--random-strategy",
        action="store_true",
        help="use the Random local-search variant instead of Greedy",
    )

    batch = sub.add_parser(
        "batch", help="serve a JSON workload of queries over one graph"
    )
    batch_source = batch.add_mutually_exclusive_group(required=True)
    batch_source.add_argument(
        "--dataset", help="a stand-in dataset name (see `datasets`)"
    )
    batch_source.add_argument("--edges", help="path to a SNAP-style edge list")
    batch.add_argument("--weights", help="path to a vertex-weight file")
    batch.add_argument(
        "--workload", required=True,
        help="JSON file holding an array of query objects",
    )
    batch.add_argument(
        "--workers", type=int, default=None,
        help="shard distinct queries across this many worker processes",
    )
    batch.add_argument(
        "--cache-size", type=int, default=1024,
        help="result-cache capacity (0 disables caching)",
    )
    batch.add_argument(
        "--backend", default="auto", help="graph backend: auto|set|csr"
    )
    batch.add_argument(
        "--out", default=None, help="also write results as JSON to this path"
    )
    batch.add_argument(
        "--stats", action="store_true",
        help="print serving stats (cache hit rates, pool reuse) after the run",
    )

    serve = sub.add_parser(
        "serve", help="serve queries over HTTP from one shared QueryService"
    )
    serve_source = serve.add_mutually_exclusive_group(required=True)
    serve_source.add_argument(
        "--dataset", help="a stand-in dataset name (see `datasets`)"
    )
    serve_source.add_argument("--edges", help="path to a SNAP-style edge list")
    serve_source.add_argument(
        "--snapshot",
        help="a snapshot directory (see `snapshot save`) — the fast path: "
        "mmaps the arrays and skips all decomposition work",
    )
    serve.add_argument("--weights", help="path to a vertex-weight file")
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8080, help="bind port")
    serve.add_argument(
        "--workers", type=int, default=0,
        help="solver worker processes (0 = a single solver thread)",
    )
    serve.add_argument(
        "--cache-size", type=int, default=1024,
        help="result-cache capacity (0 disables caching)",
    )
    serve.add_argument(
        "--backend", default="auto", help="graph backend: auto|set|csr"
    )
    serve.add_argument(
        "--max-body-mb", type=int, default=64,
        help="largest accepted request body in MB (weight vectors for "
        "multi-million-vertex graphs need more than the default)",
    )
    serve.add_argument(
        "--index", action="store_true",
        help="build the influential-community index at startup (snapshots "
        "that already carry one are served from it without this flag)",
    )
    serve.add_argument(
        "--index-depth", type=int, default=32,
        help="communities precomputed per (k, aggregator) level",
    )
    serve.add_argument(
        "--fleet", type=int, default=0, metavar="N",
        help="fork N serving processes over one shared-memory substrate, "
        "all answering on one port (0 = single process)",
    )
    serve.add_argument(
        "--fleet-mode", default="auto",
        choices=("auto", "reuseport", "proxy"),
        help="port sharing: SO_REUSEPORT kernel balancing, a round-robin "
        "front proxy, or auto-pick (reuseport where available)",
    )
    serve.add_argument(
        "--log", metavar="PATH",
        help="replication log: every accepted mutation is appended here "
        "and replayed by fleet siblings and --follow standbys (defaults "
        "to <snapshot>/replication.log when --fleet is used with "
        "--snapshot)",
    )
    serve.add_argument(
        "--follow", metavar="LOG",
        help="warm standby: tail this replication log and replay its "
        "mutations, starting past the snapshot's recorded seq",
    )
    serve.add_argument(
        "--refresh-every", type=int, default=0, metavar="N",
        help="with --snapshot and a replication log: rewrite the snapshot "
        "in place after every N absorbed mutations (0 disables)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=0, metavar="N",
        help="bound the solve queue: fresh cache misses beyond N in-flight "
        "solves get 503 + Retry-After instead of queueing (0 = unbounded)",
    )

    update = sub.add_parser(
        "update-edges",
        help="apply edge insertions/deletions to a running server or a "
        "snapshot, without a full rebuild",
    )
    update_target = update.add_mutually_exclusive_group(required=True)
    update_target.add_argument(
        "--url",
        help="base URL of a running `repro serve` (POSTs /update-edges)",
    )
    update_target.add_argument(
        "--snapshot",
        help="snapshot directory to patch through the incremental delta "
        "path (rewritten in place unless --out is given)",
    )
    update.add_argument(
        "--insert", action="append", default=[], metavar="U,V",
        help="edge to insert, as two comma-separated vertex ids (repeatable)",
    )
    update.add_argument(
        "--delete", action="append", default=[], metavar="U,V",
        help="edge to delete, as two comma-separated vertex ids (repeatable)",
    )
    update.add_argument(
        "--edits",
        help='JSON file {"insert": [[u, v], ...], "delete": [[u, v], ...]} '
        "merged with any --insert/--delete flags",
    )
    update.add_argument(
        "--out",
        help="with --snapshot: write the patched snapshot here instead of "
        "in place",
    )

    snapshot = sub.add_parser(
        "snapshot", help="save/load persistent graph snapshots"
    )
    snap_sub = snapshot.add_subparsers(dest="snapshot_command", required=True)
    snap_save = snap_sub.add_parser(
        "save", help="persist a graph + decompositions to a directory"
    )
    snap_source = snap_save.add_mutually_exclusive_group(required=True)
    snap_source.add_argument(
        "--dataset", help="a stand-in dataset name (see `datasets`)"
    )
    snap_source.add_argument(
        "--edges", help="path to a SNAP-style edge list"
    )
    snap_save.add_argument("--weights", help="path to a vertex-weight file")
    snap_save.add_argument(
        "--out", required=True, help="snapshot directory to write"
    )
    snap_save.add_argument(
        "--with-truss", action="store_true",
        help="also compute and persist the truss decomposition",
    )
    snap_load = snap_sub.add_parser(
        "load", help="load a snapshot, verify it, and print its manifest"
    )
    snap_load.add_argument("path", help="snapshot directory")
    snap_refresh = snap_sub.add_parser(
        "refresh",
        help="replay a replication log's unabsorbed tail into a snapshot, "
        "rewrite it in place with the new seq stamped, and compact the "
        "absorbed log prefix",
    )
    snap_refresh.add_argument(
        "--snapshot", required=True, help="snapshot directory to refresh"
    )
    snap_refresh.add_argument(
        "--log", required=True, help="replication log to absorb"
    )
    snap_refresh.add_argument(
        "--no-compact", action="store_true",
        help="keep the absorbed log prefix instead of truncating it",
    )

    index = sub.add_parser(
        "index",
        help="precompute/inspect the influential-community index of a "
        "snapshot",
    )
    index_sub = index.add_subparsers(dest="index_command", required=True)
    index_build = index_sub.add_parser(
        "build",
        help="build the index for a snapshot and write it back in place",
    )
    index_build.add_argument(
        "--snapshot", required=True, help="snapshot directory (see `snapshot save`)"
    )
    index_build.add_argument(
        "--depth", type=int, default=32,
        help="communities precomputed per (k, aggregator) level",
    )
    index_build.add_argument(
        "--f", action="append", default=None, metavar="AGG",
        help="aggregator to index (repeatable; default: sum)",
    )
    index_build.add_argument(
        "--out",
        help="write the indexed snapshot here instead of in place",
    )
    index_status = index_sub.add_parser(
        "status", help="print per-level index coverage for a snapshot"
    )
    index_status.add_argument(
        "--snapshot", required=True, help="snapshot directory"
    )

    sub.add_parser("datasets", help="list the stand-in datasets with statistics")

    bench = sub.add_parser(
        "bench", help="run paper experiments / the regression grid"
    )
    bench.add_argument(
        "--exp",
        default="all",
        help="experiment id: table3, fig2..fig13, case, substrates, or 'all'",
    )
    bench.add_argument(
        "--out", default=None, help="write a Markdown report to this path"
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="smaller sweeps for smoke-testing the harness",
    )
    bench_sub = bench.add_subparsers(dest="bench_command")

    grid = bench_sub.add_parser(
        "grid",
        help="the experiment-grid regression harness (sqlite history)",
    )
    grid_sub = grid.add_subparsers(dest="grid_command", required=True)

    grid_run = grid_sub.add_parser(
        "run", help="execute a named grid and append the run to history"
    )
    grid_run.add_argument(
        "--grid", default="ci", help="grid name: smoke|ci|full"
    )
    grid_run.add_argument(
        "--db", default="grid_history.sqlite",
        help="sqlite history database (created if missing)",
    )
    grid_run.add_argument(
        "--commit", default=None,
        help="commit sha to key the run by (default: $GITHUB_SHA, then "
        "`git rev-parse HEAD`, then 'unknown')",
    )
    grid_run.add_argument(
        "--repeats", type=int, default=None,
        help="override the grid's best-of-N repeat count",
    )

    grid_compare = grid_sub.add_parser(
        "compare",
        help="judge the newest run against stored history (gating)",
    )
    grid_compare.add_argument(
        "--db", default="grid_history.sqlite", help="fresh history database"
    )
    grid_compare.add_argument(
        "--baseline", default=None,
        help="baseline history database (default: older runs in --db)",
    )
    grid_compare.add_argument(
        "--grid", default=None, help="restrict to one grid name"
    )
    grid_compare.add_argument(
        "--commit", default=None,
        help="treat this commit's runs as fresh when the baseline lives "
        "in the same database",
    )
    grid_compare.add_argument(
        "--tolerance", type=float, default=0.7,
        help="accepted fraction of the baseline ratio (default 0.7)",
    )
    grid_compare.add_argument(
        "--absolute", action="store_true",
        help="also gate raw per-cell seconds (same-machine history only)",
    )
    grid_compare.add_argument(
        "--waivers", default=None,
        help="waiver file (default: benchmarks/waivers.json when present)",
    )
    grid_compare.add_argument(
        "--out", default=None, help="write the Markdown verdict here too"
    )

    grid_report = grid_sub.add_parser(
        "report", help="render the stored history as Markdown"
    )
    grid_report.add_argument(
        "--db", default="grid_history.sqlite", help="history database"
    )
    grid_report.add_argument(
        "--grid", default=None, help="restrict to one grid name"
    )
    grid_report.add_argument(
        "--limit", type=int, default=10, help="newest runs to show"
    )
    grid_report.add_argument(
        "--out", default=None, help="write the Markdown report here too"
    )

    ingest = sub.add_parser(
        "ingest",
        help="load a SNAP edge list, assign synthetic influence weights, "
        "and write a served-ready snapshot",
    )
    ingest.add_argument("edges", help="path to a SNAP-style edge list")
    ingest.add_argument(
        "--out", required=True, help="snapshot directory to write"
    )
    ingest.add_argument(
        "--weights",
        default="degree",
        choices=("degree", "core", "pagerank", "lognormal", "uniform"),
        help="synthetic influence model (default: degree)",
    )
    ingest.add_argument(
        "--seed", type=int, default=None,
        help="seed for the random weight modes",
    )
    ingest.add_argument(
        "--labels",
        default="none",
        choices=("none", "degree"),
        help="assign degree-tercile vertex labels (enables constrained "
        "queries on the snapshot)",
    )

    casestudy = sub.add_parser(
        "casestudy", help="reproduce the Fig 14 case study"
    )
    casestudy.add_argument(
        "--edges",
        default=None,
        help="run the protocol on this SNAP edge list (structural "
        "stand-in weights) instead of the synthetic Aminer network",
    )

    verify = sub.add_parser(
        "verify",
        help="cross-check the solvers against the exhaustive oracle",
    )
    verify.add_argument(
        "--instances", type=int, default=8, help="random instances to test"
    )
    verify.add_argument("--seed", type=int, default=1000, help="base seed")
    return parser


def _cmd_search(args: argparse.Namespace) -> int:
    from repro.influential.api import top_r_communities

    graph = _load_graph(args)
    result = top_r_communities(
        graph,
        k=args.k,
        r=args.r,
        f=args.f,
        s=args.s,
        method=args.method,
        eps=args.eps,
        non_overlapping=args.tonic,
        greedy=not args.random_strategy,
    )
    print(
        f"top-{args.r} communities (k={args.k}, f={args.f}"
        + (f", s={args.s}" if args.s else "")
        + (", non-overlapping" if args.tonic else "")
        + ")"
    )
    print(result.describe(graph))
    return 0


def _load_graph(args: argparse.Namespace):
    from repro.graphs.generators.snap_like import snap_like_graph
    from repro.graphs.io import load_edge_list, load_weights

    if args.dataset:
        graph = snap_like_graph(args.dataset)
        if args.weights:
            # --weights overrides the stand-in's baked-in weights, same
            # as it does for --edges graphs.
            return graph.with_weights(load_weights(args.weights, graph.n))
        return graph
    graph, __ = load_edge_list(args.edges)
    if args.weights:
        return graph.with_weights(load_weights(args.weights, graph.n))
    from repro.centrality.pagerank import pagerank

    return graph.with_weights(pagerank(graph))


def _cmd_batch(args: argparse.Namespace) -> int:
    import json
    import time

    from repro.errors import SpecError
    from repro.serving.query import InfluentialQuery
    from repro.serving.service import QueryService

    with open(args.workload, "r", encoding="utf-8") as handle:
        try:
            raw = json.load(handle)
        except json.JSONDecodeError as exc:
            raise SpecError(f"workload {args.workload} is not valid JSON: {exc}")
    if not isinstance(raw, list):
        raise SpecError(
            f"workload must be a JSON array of query objects, got "
            f"{type(raw).__name__}"
        )
    queries = [InfluentialQuery.create(entry) for entry in raw]

    graph = _load_graph(args)
    service = QueryService(
        graph, backend=args.backend, cache_size=args.cache_size
    )
    start = time.perf_counter()
    results = service.submit_many(queries, workers=args.workers)
    elapsed = time.perf_counter() - start

    for index, (query, result) in enumerate(zip(queries, results), start=1):
        print(f"[{index}/{len(queries)}] {query.describe()}")
        print(result.describe(graph))
    rate = len(queries) / elapsed if elapsed > 0 else float("inf")
    print(
        f"\nserved {len(queries)} queries in {elapsed:.3f}s "
        f"({rate:.1f} queries/sec)"
    )
    if args.stats:
        print(json.dumps(service.stats(), indent=2))
    if args.out:
        payload = [
            {
                "query": query.describe(),
                "values": result.values(),
                "communities": [sorted(c.vertices) for c in result],
            }
            for query, result in zip(queries, results)
        ]
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.out}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import pathlib
    import time

    from repro.serving.service import QueryService
    from repro.serving.store import load_service

    if args.fleet < 0:
        print("error: --fleet must be >= 0", file=sys.stderr)
        return 2
    if args.follow and args.log:
        print("error: --follow and --log are exclusive", file=sys.stderr)
        return 2
    if args.fleet and args.follow:
        print("error: a fleet cannot also --follow a log", file=sys.stderr)
        return 2
    if args.fleet and not args.log:
        if args.snapshot:
            args.log = str(pathlib.Path(args.snapshot) / "replication.log")
        else:
            print(
                "error: --fleet needs --log (or --snapshot, which defaults "
                "the log to <snapshot>/replication.log)",
                file=sys.stderr,
            )
            return 2
    if args.refresh_every and not args.snapshot:
        print(
            "error: --refresh-every rewrites a snapshot; give --snapshot",
            file=sys.stderr,
        )
        return 2
    if args.refresh_every and not (args.log or args.follow):
        print(
            "error: --refresh-every needs a replication log "
            "(--log or --follow)",
            file=sys.stderr,
        )
        return 2

    start = time.perf_counter()
    if args.snapshot:
        service = load_service(
            args.snapshot, backend=args.backend, cache_size=args.cache_size
        )
        if args.weights:
            # Serve the snapshot's topology under fresh weights (topology
            # caches survive; the persisted weights are simply replaced).
            from repro.graphs.io import load_weights

            service.update_weights(
                load_weights(args.weights, service.graph.n)
            )
        source = f"snapshot {args.snapshot}"
    else:
        graph = _load_graph(args)
        service = QueryService(
            graph, backend=args.backend, cache_size=args.cache_size
        )
        source = args.dataset or args.edges
    if args.index and service.index is None:
        service.enable_index(depth=args.index_depth)
    ready = time.perf_counter() - start
    graph = service.graph
    print(
        f"serving {source}: n={graph.n}, m={graph.m}, kmax={service.kmax} "
        f"(ready in {ready:.3f}s)"
    )
    if service.index is not None:
        istats = service.index.stats()
        print(
            f"index: {istats['levels_ready']}/{istats['levels']} levels "
            f"ready at depth {istats['depth']} "
            f"(f={','.join(istats['aggregators'])})"
        )

    if args.fleet:
        return _serve_fleet(args, service)
    return _serve_single(args, service)


def _serve_single(args: argparse.Namespace, service) -> int:
    import asyncio

    from repro.serving.fleet import attach_replication
    from repro.serving.http import ServingApp

    app = ServingApp(
        service,
        workers=args.workers,
        max_body_bytes=args.max_body_mb * 1024 * 1024,
        max_queue_depth=args.max_queue,
    )
    replicator = None
    log_path = args.follow or args.log
    if log_path:
        start_seq = 0
        if args.snapshot:
            from repro.serving.store import load_snapshot

            start_seq = load_snapshot(args.snapshot).replication_seq
        replicator = attach_replication(
            app,
            log_path,
            start_seq=start_seq,
            snapshot_path=args.snapshot if args.refresh_every else None,
            refresh_every=args.refresh_every,
        )
        role = "following" if args.follow else "logging mutations to"
        print(f"{role} {log_path} (from seq {start_seq})")

    def banner(server) -> None:
        # Only after a successful bind — scripts key off this line.
        port = server.sockets[0].getsockname()[1]
        print(
            f"listening on http://{args.host}:{port} — try: "
            f"curl -s http://{args.host}:{port}/v1/healthz"
        )

    async def _main() -> None:
        if replicator is not None:
            await replicator.start()
        try:
            await app.run(
                host=args.host,
                port=args.port,
                on_ready=banner,
                handle_signals=True,
            )
        finally:
            if replicator is not None:
                await replicator.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    except OSError as exc:
        print(
            f"error: cannot bind http://{args.host}:{args.port}: {exc}",
            file=sys.stderr,
        )
        return 2
    finally:
        app.shutdown_executors()
    return 0


def _serve_fleet(args: argparse.Namespace, service) -> int:
    import signal
    import threading

    from repro.serving.fleet import Fleet, FleetError

    start_seq = None
    if args.snapshot:
        from repro.serving.store import load_snapshot

        start_seq = load_snapshot(args.snapshot).replication_seq
    fleet = Fleet(
        service,
        members=args.fleet,
        host=args.host,
        port=args.port,
        mode=args.fleet_mode,
        log_path=args.log,
        start_seq=start_seq,
        snapshot_path=args.snapshot if args.refresh_every else None,
        refresh_every=args.refresh_every,
        workers=args.workers,
        max_queue_depth=args.max_queue,
        max_body_bytes=args.max_body_mb * 1024 * 1024,
        cache_size=args.cache_size,
        backend=args.backend,
    )
    stop = threading.Event()
    previous = {
        signum: signal.signal(signum, lambda *_a: stop.set())
        for signum in (signal.SIGINT, signal.SIGTERM)
    }
    try:
        fleet.start()
        print(
            f"fleet of {fleet.members} ({fleet.mode}) listening on "
            f"{fleet.url} — replication log {args.log} — try: "
            f"curl -s {fleet.url}/v1/healthz"
        )
        stop.wait()
        print("shutting down fleet...")
    except FleetError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        pass
    finally:
        fleet.stop()
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    return 0


def _parse_edge_flag(raw: str) -> list[int]:
    from repro.errors import SpecError

    parts = raw.split(",")
    if len(parts) != 2:
        raise SpecError(
            f"edge {raw!r} must be two comma-separated vertex ids, like 3,17"
        )
    try:
        return [int(part) for part in parts]
    except ValueError:
        raise SpecError(f"edge {raw!r} has non-integer vertex ids")


def _collect_edge_updates(args: argparse.Namespace) -> tuple[list, list]:
    import json

    from repro.errors import SpecError

    insert = [_parse_edge_flag(raw) for raw in args.insert]
    delete = [_parse_edge_flag(raw) for raw in args.delete]
    if args.edits:
        with open(args.edits, "r", encoding="utf-8") as handle:
            try:
                edits = json.load(handle)
            except json.JSONDecodeError as exc:
                raise SpecError(f"edits {args.edits} is not valid JSON: {exc}")
        if not isinstance(edits, dict) or set(edits) - {"insert", "delete"}:
            raise SpecError(
                f'edits {args.edits} must be {{"insert": [...], '
                f'"delete": [...]}}'
            )
        for field, into in (("insert", insert), ("delete", delete)):
            entries = edits.get(field, [])
            if not isinstance(entries, list):
                raise SpecError(
                    f"edits field {field!r} must be a list of [u, v] pairs"
                )
            into.extend(entries)
    if not insert and not delete:
        raise SpecError(
            "nothing to apply: give --insert/--delete flags or an --edits "
            "file with at least one edge"
        )
    return insert, delete


def _cmd_update_edges(args: argparse.Namespace) -> int:
    import json

    from repro.errors import SpecError

    if args.url and args.out:
        # Silently ignoring --out would leave a user expecting a patched
        # snapshot with no file and no error.
        raise SpecError("--out only applies to --snapshot, not --url")
    insert, delete = _collect_edge_updates(args)
    if args.url:
        import urllib.error
        import urllib.request

        payload = {"insert": insert, "delete": delete}
        request = urllib.request.Request(
            args.url.rstrip("/") + "/update-edges",
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request) as response:
                body = json.load(response)
        except urllib.error.HTTPError as exc:
            try:
                error = json.loads(exc.read()).get("error", str(exc))
                # v1 error envelope ({"code", "detail"}); older servers
                # replied with a bare string.
                if isinstance(error, dict):
                    message = error.get("detail", str(error))
                else:
                    message = error
            except (json.JSONDecodeError, ValueError):
                message = str(exc)
            print(f"error: server rejected update: {message}", file=sys.stderr)
            return 2
        except (urllib.error.URLError, OSError) as exc:
            print(f"error: cannot reach {args.url}: {exc}", file=sys.stderr)
            return 2
        print(json.dumps(body, indent=2))
        return 0

    from repro.serving.store import load_service, save_snapshot

    service = load_service(args.snapshot)
    report = service.update_edges(insert=insert, delete=delete)
    path = save_snapshot(service, args.out or args.snapshot)
    summary = report.summary()
    print(json.dumps(summary, indent=2))
    print(
        f"wrote snapshot {path}: n={summary['n']}, m={summary['m']}, "
        f"kmax={service.kmax}"
    )
    return 0


def _cmd_snapshot(args: argparse.Namespace) -> int:
    import json
    import pathlib
    import time

    from repro.serving.service import QueryService
    from repro.serving.store import load_service, save_snapshot

    if args.snapshot_command == "save":
        graph = _load_graph(args)
        service = QueryService(graph)
        path = save_snapshot(
            service, args.out,
            include_truss=True if args.with_truss else "auto",
        )
        print(
            f"wrote snapshot {path}: n={graph.n}, m={graph.m}, "
            f"kmax={service.kmax}"
            + (", truss included" if args.with_truss else "")
        )
        return 0

    if args.snapshot_command == "refresh":
        from repro.serving.replog import LogCursor
        from repro.serving.store import load_snapshot

        before = load_snapshot(args.snapshot).replication_seq
        service = load_service(args.snapshot)
        cursor = LogCursor(args.log, start_seq=before)
        applied = failures = 0
        for record in cursor.poll():
            try:
                if record.op == "update-edges":
                    service.update_edges(
                        record.payload.get("insert", ()),
                        record.payload.get("delete", ()),
                    )
                elif record.op == "update-weights":
                    service.update_weights(record.payload.get("weights"))
                applied += 1
            except Exception as exc:  # skipped on every replica alike
                failures += 1
                print(f"skipping seq {record.seq}: {exc}", file=sys.stderr)
        def _compact_absorbed(upto_seq: int) -> int:
            if args.no_compact:
                return 0
            from repro.serving.fleet import COMPACT_MIN_AGE
            from repro.serving.replog import ReplicationLog

            # Everything at or below upto_seq is durable in the
            # snapshot; the age margin protects members currently
            # tailing the log (see ReplicationLog.compact).
            return ReplicationLog(args.log).compact(
                upto_seq, min_age=COMPACT_MIN_AGE
            )

        if applied == 0 and cursor.seq == before:
            # Nothing new to absorb, but the already-absorbed prefix may
            # still be sitting in the log (e.g. a re-run after an earlier
            # refresh that found every record too young to drop).
            compacted = _compact_absorbed(before)
            print(
                f"snapshot {args.snapshot} already at seq {before}; "
                f"nothing to absorb ({compacted} log records compacted)"
            )
            return 0
        save_snapshot(service, args.snapshot, replication_seq=cursor.seq)
        compacted = _compact_absorbed(cursor.seq)
        print(
            f"refreshed {args.snapshot}: seq {before} -> {cursor.seq} "
            f"({applied} applied, {failures} skipped, "
            f"{compacted} log records compacted, "
            f"n={service.graph.n}, m={service.graph.m})"
        )
        return 0

    start = time.perf_counter()
    service = load_service(args.path)
    elapsed = time.perf_counter() - start
    manifest = json.loads(
        (pathlib.Path(args.path) / "manifest.json").read_text()
    )
    print(json.dumps(manifest, indent=2))
    print(
        f"loaded and verified in {elapsed:.3f}s "
        f"(n={service.graph.n}, m={service.graph.m}, kmax={service.kmax}, "
        f"no decompositions recomputed)"
    )
    return 0


def _cmd_index(args: argparse.Namespace) -> int:
    import json
    import time

    from repro.serving.store import load_service, save_snapshot

    service = load_service(args.snapshot)
    if args.index_command == "status":
        index = service.index
        if index is None:
            print(f"snapshot {args.snapshot} carries no index")
            print("build one with: repro index build --snapshot", args.snapshot)
            return 0
        stats = index.stats()
        sizes = service.engine_pool.core_level_sizes()
        print(json.dumps(stats, indent=2))
        print("\nlevel  core-size  state")
        for k in range(1, service.kmax + 1):
            states = [
                f"{name}:{index.level_state(k, name)}"
                for name in index.aggregators
            ]
            core = int(sizes[k]) if k < sizes.shape[0] else 0
            print(f"{k:>5}  {core:>9}  {' '.join(states)}")
        return 0

    start = time.perf_counter()
    index = service.enable_index(
        depth=args.depth, aggregators=tuple(args.f) if args.f else ("sum",)
    )
    built = time.perf_counter() - start
    path = save_snapshot(service, args.out or args.snapshot)
    stats = index.stats()
    print(json.dumps(stats, indent=2))
    print(
        f"wrote snapshot {path}: indexed {stats['levels_ready']} levels "
        f"(kmax={service.kmax}, depth={args.depth}) in {built:.3f}s"
    )
    return 0


def _cmd_datasets(args: argparse.Namespace) -> int:
    from repro.bench.datasets import dataset_statistics_table

    print(dataset_statistics_table())
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    if getattr(args, "bench_command", None) == "grid":
        return _cmd_bench_grid(args)
    from repro.bench.experiments import run_experiments

    report = run_experiments(args.exp, quick=args.quick)
    print(report.render_text())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report.render_markdown())
        print(f"\nwrote {args.out}")
    return 0


def _resolve_commit(explicit: "str | None") -> str:
    """The commit sha a grid run is keyed by: flag, CI env, git, unknown."""
    import os
    import subprocess

    if explicit:
        return explicit
    from_env = os.environ.get("GITHUB_SHA", "").strip()
    if from_env:
        return from_env
    try:
        probe = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
        if probe.returncode == 0 and probe.stdout.strip():
            return probe.stdout.strip()
    except OSError:
        pass
    return "unknown"


def _default_waivers() -> "str | None":
    import pathlib

    candidate = pathlib.Path("benchmarks") / "waivers.json"
    return str(candidate) if candidate.exists() else None


def _cmd_bench_grid(args: argparse.Namespace) -> int:
    """``repro bench grid run|compare|report`` — the regression harness."""
    if args.grid_command == "run":
        import datetime

        from repro.bench.grid import grid_spec, run_grid

        try:
            spec = grid_spec(args.grid, repeats=args.repeats)
        except ValueError as exc:
            raise ReproError(str(exc))
        started_at = (
            datetime.datetime.now(datetime.timezone.utc)
            .replace(microsecond=0)
            .isoformat()
        )
        run_id = run_grid(
            spec,
            args.db,
            commit=_resolve_commit(args.commit),
            started_at=started_at,
            log=print,
        )
        cells = len(spec.cells())
        print(
            f"recorded run {run_id} of grid '{spec.name}' "
            f"({cells} cells, config {spec.config_hash()[:12]}) "
            f"into {args.db}"
        )
        return 0
    if args.grid_command == "compare":
        from repro.bench.compare import compare_grid_runs, load_waivers
        from repro.bench.report import append_step_summary, render_comparison

        waivers_path = (
            args.waivers if args.waivers is not None else _default_waivers()
        )
        report = compare_grid_runs(
            args.db,
            baseline=args.baseline,
            grid_name=args.grid,
            commit=args.commit,
            tolerance=args.tolerance,
            absolute=args.absolute,
            waivers=load_waivers(waivers_path),
        )
        rendered = render_comparison(report)
        print(rendered)
        append_step_summary(rendered)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(rendered)
        return report.exit_code
    if args.grid_command == "report":
        from repro.bench.history import HistoryDB
        from repro.bench.report import render_history

        with HistoryDB(args.db) as db:
            rendered = render_history(db, grid_name=args.grid, limit=args.limit)
        print(rendered)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(rendered)
        return 0
    raise ReproError(f"unknown grid command {args.grid_command!r}")


def _cmd_ingest(args: argparse.Namespace) -> int:
    import json
    import pathlib

    from repro.graphs.io import ingest_edge_list
    from repro.serving.service import QueryService
    from repro.serving.store import save_snapshot

    graph, id_map = ingest_edge_list(
        args.edges,
        weights=args.weights,
        seed=args.seed,
        labels=args.labels,
    )
    service = QueryService(graph)
    path = save_snapshot(service, args.out)
    # Dense id -> source id, so served answers can be mapped back to the
    # published dataset's vertex names.
    originals = sorted(id_map, key=id_map.get)
    with open(
        pathlib.Path(path) / "original_ids.txt", "w", encoding="utf-8"
    ) as handle:
        handle.write("# dense_id original_id\n")
        for dense, original in enumerate(originals):
            handle.write(f"{dense} {original}\n")
    print(
        json.dumps(
            {
                "status": "ingested",
                "edges": str(args.edges),
                "out": str(path),
                "n": graph.n,
                "m": graph.m,
                "kmax": service.kmax,
                "weights": args.weights,
                "labels": args.labels,
            },
            indent=2,
        )
    )
    return 0


def _cmd_casestudy(args: argparse.Namespace) -> int:
    from repro.bench.case_study import render_case_study, run_case_study

    if args.edges:
        from repro.graphs.io import ingest_edge_list

        graph, __ = ingest_edge_list(args.edges)
        panels = run_case_study(graph=graph)
    else:
        panels = run_case_study()
    print(render_case_study(panels))
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.bench.verification import verify_solvers

    report = verify_solvers(instances=args.instances, base_seed=args.seed)
    print(report.render())
    return 0 if report.ok else 1


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "search": _cmd_search,
        "batch": _cmd_batch,
        "serve": _cmd_serve,
        "update-edges": _cmd_update_edges,
        "ingest": _cmd_ingest,
        "snapshot": _cmd_snapshot,
        "index": _cmd_index,
        "datasets": _cmd_datasets,
        "bench": _cmd_bench,
        "casestudy": _cmd_casestudy,
        "verify": _cmd_verify,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
