"""Truss decomposition by support peeling.

The *support* of an edge is the number of triangles containing it; the
*truss number* of an edge is the largest k such that the edge survives in
the k-truss (every edge's support within the surviving subgraph is at
least ``k - 2``).  The standard peeling algorithm (Wang & Cheng 2012)
repeatedly removes the minimum-support edge, decrementing the support of
the edges it shared triangles with.

Complexity O(m^1.5) via the usual smaller-endpoint triangle enumeration —
comfortably fast at stand-in scale, and cross-validated against
``networkx.k_truss`` in the tests.
"""

from __future__ import annotations

from repro.graphs.graph import Graph
from repro.utils.heaps import IndexedMaxHeap


def _edge_id(u: int, v: int, n: int) -> int:
    """Dense id for the undirected edge {u, v}."""
    if u > v:
        u, v = v, u
    return u * n + v


def edge_supports(graph: Graph) -> dict[tuple[int, int], int]:
    """Triangle count of every edge, keyed by (u, v) with u < v.

    Enumerates each triangle once through its smallest-degree endpoint
    ordering (the standard O(m^1.5) scheme).
    """
    adj = graph.adjacency
    support = {(u, v): 0 for u, v in graph.edges()}
    # Orient edges from lower to higher (degree, id) rank.
    rank = sorted(range(graph.n), key=lambda v: (len(adj[v]), v))
    position = {v: i for i, v in enumerate(rank)}
    forward: list[list[int]] = [[] for __ in range(graph.n)]
    for u, v in graph.edges():
        if position[u] < position[v]:
            forward[u].append(v)
        else:
            forward[v].append(u)
    forward_sets = [set(neigh) for neigh in forward]
    for u in range(graph.n):
        for v in forward[u]:
            common = forward_sets[u] & forward_sets[v]
            for w in common:
                for a, b in ((u, v), (u, w), (v, w)):
                    key = (a, b) if a < b else (b, a)
                    support[key] += 1
    return support


def truss_decomposition(graph: Graph) -> dict[tuple[int, int], int]:
    """Truss number of every edge, keyed by (u, v) with u < v.

    Peels edges in non-decreasing support order; when edge (u, v) is
    removed at current level k, its truss number is k, and every edge of a
    triangle through (u, v) loses one support.
    """
    n = graph.n
    support = edge_supports(graph)
    if not support:
        return {}
    adj = {v: set(graph.adjacency[v]) for v in range(n)}
    heap = IndexedMaxHeap(reverse=True)  # min-heap over edge ids
    for (u, v), s in support.items():
        heap.push(_edge_id(u, v, n), float(s))
    truss: dict[tuple[int, int], int] = {}
    k = 2
    while len(heap):
        edge_id, s = heap.peek()
        s = int(s)
        if s > k - 2:
            k = s + 2
        heap.pop()
        u, v = divmod(edge_id, n)
        truss[(u, v)] = k
        # Remove the edge; update supports of co-triangle edges.
        adj[u].discard(v)
        adj[v].discard(u)
        for w in adj[u] & adj[v]:
            for a, b in ((u, w), (v, w)):
                key_id = _edge_id(a, b, n)
                if key_id in heap:
                    heap.update(key_id, heap.priority_of(key_id) - 1.0)
    return truss


def truss_max(graph: Graph) -> int:
    """The largest k with a non-empty k-truss (>= 2 when any edge exists)."""
    numbers = truss_decomposition(graph)
    if not numbers:
        return 0
    return max(numbers.values())
