"""Truss decomposition by support peeling.

The *support* of an edge is the number of triangles containing it; the
*truss number* of an edge is the largest k such that the edge survives in
the k-truss (every edge's support within the surviving subgraph is at
least ``k - 2``).  The standard peeling algorithm (Wang & Cheng 2012)
repeatedly removes the minimum-support edge, decrementing the support of
the edges it shared triangles with.

Complexity O(m^1.5) via the usual smaller-endpoint triangle enumeration —
comfortably fast at stand-in scale, and cross-validated against
``networkx.k_truss`` in the tests.
"""

from __future__ import annotations

import numpy as np

from repro import kernels
from repro.graphs.backend import resolve_backend
from repro.graphs.graph import Graph
from repro.utils.heaps import IndexedMaxHeap


def _edge_id(u: int, v: int, n: int) -> int:
    """Dense id for the undirected edge {u, v}."""
    if u > v:
        u, v = v, u
    return u * n + v


def edge_supports(graph: Graph, backend: str = "auto") -> dict[tuple[int, int], int]:
    """Triangle count of every edge, keyed by (u, v) with u < v.

    Enumerates each triangle once through its smallest-degree endpoint
    ordering (the standard O(m^1.5) scheme).  The CSR backend runs the
    whole enumeration as a handful of array operations
    (:func:`_edge_supports_csr`); the set backend intersects forward
    neighbour sets edge by edge.
    """
    if resolve_backend(backend) == "csr":
        return _edge_supports_csr(graph)
    adj = graph.adjacency
    support = {(u, v): 0 for u, v in graph.edges()}
    # Orient edges from lower to higher (degree, id) rank.
    rank = sorted(range(graph.n), key=lambda v: (len(adj[v]), v))
    position = {v: i for i, v in enumerate(rank)}
    forward: list[list[int]] = [[] for __ in range(graph.n)]
    for u, v in graph.edges():
        if position[u] < position[v]:
            forward[u].append(v)
        else:
            forward[v].append(u)
    forward_sets = [set(neigh) for neigh in forward]
    for u in range(graph.n):
        for v in forward[u]:
            common = forward_sets[u] & forward_sets[v]
            for w in common:
                for a, b in ((u, v), (u, w), (v, w)):
                    key = (a, b) if a < b else (b, a)
                    support[key] += 1
    return support


def _edge_supports_csr(graph: Graph) -> dict[tuple[int, int], int]:
    """Flat-array support counting: orient here, count in the kernel tier.

    Orient every edge from lower to higher (degree, id) rank — the same
    orientation as the set backend, so peel tie-breaks downstream see
    identical supports — and hand the forward-arc CSR (``fptr``/``fdst``,
    runs sorted by target) to :func:`repro.kernels.arc_supports`: the
    O(m^1.5) smaller-endpoint triangle enumeration, vectorised in numpy
    or compiled under Numba.  Arc ``i`` is the undirected edge
    ``(fsrc[i], fdst[i])``; the result keys stay (u, v) with u < v.
    """
    csr = graph.csr
    n = csr.n
    degree = csr.degrees()
    order = np.lexsort((np.arange(n), degree))
    position = np.empty(n, dtype=np.int64)
    position[order] = np.arange(n)
    src = np.repeat(np.arange(n, dtype=np.int64), degree)
    dst = csr.indices
    keep = position[src] < position[dst]
    fsrc, fdst = src[keep], dst[keep]
    fptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(fsrc, minlength=n), out=fptr[1:])
    support = kernels.arc_supports(fptr, fdst)
    lo = np.minimum(fsrc, fdst).tolist()
    hi = np.maximum(fsrc, fdst).tolist()
    return {
        (u, v): s for u, v, s in zip(lo, hi, support.tolist())
    }


def truss_decomposition(
    graph: Graph, backend: str = "auto"
) -> dict[tuple[int, int], int]:
    """Truss number of every edge, keyed by (u, v) with u < v.

    Peels edges in non-decreasing support order; when edge (u, v) is
    removed at current level k, its truss number is k, and every edge of a
    triangle through (u, v) loses one support.  ``backend`` selects the
    support-counting kernel; the heap peel itself is shared.
    """
    n = graph.n
    support = edge_supports(graph, backend=backend)
    if not support:
        return {}
    adj = {v: set(graph.adjacency[v]) for v in range(n)}
    heap = IndexedMaxHeap(reverse=True)  # min-heap over edge ids
    for (u, v), s in support.items():
        heap.push(_edge_id(u, v, n), float(s))
    truss: dict[tuple[int, int], int] = {}
    k = 2
    while len(heap):
        edge_id, s = heap.peek()
        s = int(s)
        if s > k - 2:
            k = s + 2
        heap.pop()
        u, v = divmod(edge_id, n)
        truss[(u, v)] = k
        # Remove the edge; update supports of co-triangle edges.
        adj[u].discard(v)
        adj[v].discard(u)
        for w in adj[u] & adj[v]:
            for a, b in ((u, w), (v, w)):
                key_id = _edge_id(a, b, n)
                if key_id in heap:
                    heap.update(key_id, heap.priority_of(key_id) - 1.0)
    return truss


def truss_max(graph: Graph, backend: str = "auto") -> int:
    """The largest k with a non-empty k-truss (>= 2 when any edge exists)."""
    numbers = truss_decomposition(graph, backend=backend)
    if not numbers:
        return 0
    return max(numbers.values())
