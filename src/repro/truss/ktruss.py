"""Maximal k-trusses and connected k-truss components of vertex subsets.

Mirrors :mod:`repro.core.kcore` one level up the cohesiveness ladder:
``ktruss_of_subset`` peels edges whose induced support falls below
``k - 2`` until a fixpoint and returns the surviving vertex set (vertices
that kept at least one edge); ``connected_ktruss_components`` splits that
into connected pieces — the candidate communities of the truss-based
search.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.errors import SpecError
from repro.graphs.graph import Graph


def _check_k(k: int) -> None:
    if k < 2:
        raise SpecError(f"truss order k must be >= 2, got {k}")


def ktruss_of_subset(
    graph: Graph, vertices: Iterable[int], k: int
) -> tuple[set[int], set[tuple[int, int]]]:
    """The maximal k-truss inside ``G[vertices]``.

    Returns ``(vertex_set, edge_set)`` — the edge set matters because a
    k-truss is an edge-defined object; the vertex set is every endpoint
    that kept at least one surviving edge.  Runs support peeling restricted
    to the subset.
    """
    _check_k(k)
    member = set(vertices)
    for v in member:
        graph.check_vertex(v)
    adj = {v: graph.adjacency[v] & member for v in member}
    # Induced edge supports.
    support: dict[tuple[int, int], int] = {}
    for u in member:
        for v in adj[u]:
            if u < v:
                support[(u, v)] = len(adj[u] & adj[v])
    threshold = k - 2
    queue = deque(edge for edge, s in support.items() if s < threshold)
    removed: set[tuple[int, int]] = set(queue)
    while queue:
        u, v = queue.popleft()
        adj[u].discard(v)
        adj[v].discard(u)
        for w in adj[u] & adj[v]:
            for a, b in ((u, w), (v, w)):
                edge = (a, b) if a < b else (b, a)
                if edge in removed:
                    continue
                support[edge] -= 1
                if support[edge] < threshold:
                    removed.add(edge)
                    queue.append(edge)
    surviving_edges = {e for e in support if e not in removed}
    surviving_vertices = {u for u, v in surviving_edges} | {
        v for u, v in surviving_edges
    }
    return surviving_vertices, surviving_edges


def maximal_ktruss(graph: Graph, k: int) -> set[int]:
    """Vertex set of the maximal k-truss of the whole graph."""
    vertices, __ = ktruss_of_subset(graph, range(graph.n), k)
    return vertices


def connected_ktruss_components(
    graph: Graph, vertices: Iterable[int], k: int
) -> list[set[int]]:
    """Connected components of the maximal k-truss inside ``G[vertices]``.

    Connectivity is evaluated over the *surviving truss edges* (two truss
    vertices joined only by a peeled edge are not connected), which is the
    standard triangle-connected relaxation used by k-truss community
    models.
    """
    truss_vertices, truss_edges = ktruss_of_subset(graph, vertices, k)
    if not truss_vertices:
        return []
    # Build a lightweight adjacency over the surviving edges only.
    adj: dict[int, set[int]] = {v: set() for v in truss_vertices}
    for u, v in truss_edges:
        adj[u].add(v)
        adj[v].add(u)
    unvisited = set(truss_vertices)
    components: list[set[int]] = []
    for seed in sorted(truss_vertices):
        if seed not in unvisited:
            continue
        comp = {seed}
        unvisited.discard(seed)
        stack = [seed]
        while stack:
            x = stack.pop()
            for w in adj[x] & unvisited:
                unvisited.discard(w)
                comp.add(w)
                stack.append(w)
        components.append(comp)
    return components
