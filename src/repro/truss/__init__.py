"""k-truss cohesiveness — the paper's named model extension.

The paper (Section I) notes the influential community model "is extended
to include additional cohesiveness metrics, e.g., k-truss [20]": a k-truss
is a subgraph in which every edge closes at least ``k - 2`` triangles.
Trusses are strictly tighter than (k-1)-cores and better capture
socially-reinforced groups.

This package supplies the truss substrate (decomposition, maximal k-truss,
connected components, subset truss) and
:mod:`repro.influential.truss_search` builds the influential community
search on top of it, mirroring the k-core solvers.
"""

from repro.truss.decomposition import truss_decomposition, truss_max
from repro.truss.ktruss import (
    connected_ktruss_components,
    ktruss_of_subset,
    maximal_ktruss,
)

__all__ = [
    "connected_ktruss_components",
    "ktruss_of_subset",
    "maximal_ktruss",
    "truss_decomposition",
    "truss_max",
]
