"""Name-based lookup of aggregation functions.

The public API, the CLI and the benchmark configs all refer to aggregators
by string (``"sum"``, ``"avg"``, ``"sum-surplus(alpha=2)"`` ...); this
registry resolves those names.  Parameterised aggregators accept an inline
argument in the name or can be passed pre-constructed instances anywhere an
aggregator is expected.

Registered names map onto the paper's aggregation functions f (Table I;
``docs/API.md`` carries the full notation table):

=====================  ============  =====================================
name                   paper          f(H) over member weights w(v)
=====================  ============  =====================================
``sum``                f_sum          Σ w(v)
``avg``/``average``    f_avg          Σ w(v) / |H|
``min``/``minimum``    f_min          min w(v)  (prior work's model)
``max``/``maximum``    f_max          max w(v)
``sum-surplus(α)``     f_ss,α         Σ w(v) − α·|H|   (α defaults to 1)
``weight-density(β)``  f_wd,β         Σ w(v) / |H|^β   (β defaults to 1)
``balanced-density``   f_bd           the balanced density variant
=====================  ============  =====================================

Spelling variants resolve to one canonical instance — the serving
layer's cache keys use ``Aggregator.name``, so ``"sum-surplus(2)"`` and
``"sum-surplus(alpha=2)"`` are the same cached query.
"""

from __future__ import annotations

import re
from typing import Callable

from repro.aggregators.average import Average
from repro.aggregators.base import Aggregator
from repro.aggregators.density import BalancedDensity, WeightDensity
from repro.aggregators.minmax import Maximum, Minimum
from repro.aggregators.summation import Sum, SumSurplus
from repro.errors import AggregatorError

_FACTORIES: dict[str, Callable[[float | None], Aggregator]] = {
    "min": lambda arg: Minimum(),
    "minimum": lambda arg: Minimum(),
    "max": lambda arg: Maximum(),
    "maximum": lambda arg: Maximum(),
    "sum": lambda arg: Sum(),
    "avg": lambda arg: Average(),
    "average": lambda arg: Average(),
    "sum-surplus": lambda arg: SumSurplus(arg if arg is not None else 1.0),
    "weight-density": lambda arg: WeightDensity(arg if arg is not None else 1.0),
    "balanced-density": lambda arg: BalancedDensity(),
}

#: Matches "name", "name(1.5)", "name(alpha=1.5)", "name(beta=2)".
_NAME_RE = re.compile(
    r"^\s*(?P<base>[a-zA-Z-]+)\s*(?:\(\s*(?:[a-zA-Z]+\s*=\s*)?(?P<arg>[-+0-9.eE]+)\s*\))?\s*$"
)


def get_aggregator(f: str | Aggregator) -> Aggregator:
    """Resolve ``f`` to an :class:`Aggregator` instance.

    Accepts an existing instance (returned unchanged) or a name with an
    optional parameter, e.g. ``"sum"``, ``"weight-density(beta=0.5)"``.
    """
    if isinstance(f, Aggregator):
        return f
    if not isinstance(f, str):
        raise AggregatorError(f"cannot interpret {f!r} as an aggregation function")
    match = _NAME_RE.match(f)
    if not match:
        raise AggregatorError(f"malformed aggregator name {f!r}")
    base = match.group("base").lower()
    factory = _FACTORIES.get(base)
    if factory is None:
        known = ", ".join(sorted(set(_FACTORIES)))
        raise AggregatorError(f"unknown aggregator {base!r}; known: {known}")
    arg = match.group("arg")
    return factory(float(arg) if arg is not None else None)


def register_aggregator(
    name: str, factory: Callable[[float | None], Aggregator]
) -> None:
    """Register a custom aggregator under ``name`` (extension hook).

    The factory receives the optional numeric argument parsed from names
    like ``"myagg(0.3)"`` (or None when absent).
    """
    key = name.lower()
    if key in _FACTORIES:
        raise AggregatorError(f"aggregator {name!r} is already registered")
    _FACTORIES[key] = factory


def available_aggregators() -> list[str]:
    """Sorted canonical names of all registered aggregators."""
    return sorted(set(_FACTORIES))
