"""Aggregation functions over community weights (paper Table I).

Each aggregator computes ``f(H)`` from the weight statistics of a vertex
subset and exposes the algebraic properties the paper's algorithm-selection
logic keys on:

* *node domination* (Definition 6) — ``f(H)`` equals the weight of a single
  member (min, max): solvable by the prior-work peel algorithms;
* *size proportionality* (Definition 7) — ``H subset H'`` implies
  ``f(H) <= f(H')`` (sum, sum-surplus with alpha >= 0): solvable by
  Algorithms 1-2;
* *decreasing under removal* (Corollary 2) — removing vertices strictly
  lowers ``f`` (the pruning soundness condition of Algorithm 2);
* NP-hardness markers for the unconstrained and size-constrained problems
  (Section III).
"""

from repro.aggregators.average import Average
from repro.aggregators.base import Aggregator
from repro.aggregators.density import BalancedDensity, WeightDensity
from repro.aggregators.minmax import Maximum, Minimum
from repro.aggregators.registry import (
    available_aggregators,
    get_aggregator,
    register_aggregator,
)
from repro.aggregators.summation import Sum, SumSurplus

__all__ = [
    "Aggregator",
    "Average",
    "BalancedDensity",
    "Maximum",
    "Minimum",
    "Sum",
    "SumSurplus",
    "WeightDensity",
    "available_aggregators",
    "get_aggregator",
    "register_aggregator",
]
