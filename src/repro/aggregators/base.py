"""The aggregation-function interface.

Every Table I function is computable from the subset statistics
``(|H|, w(H), min w, max w)`` plus — for balanced density only — the total
graph weight ``w(V)``.  Aggregators are therefore pure objects evaluating
:class:`~repro.utils.stats.SubsetStats`; they never walk the graph, which
lets the solvers maintain stats incrementally and re-evaluate ``f`` in
O(1) per candidate move.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable

from repro.errors import AggregatorError
from repro.graphs.graph import Graph
from repro.utils.stats import SubsetStats


class Aggregator(ABC):
    """An aggregation function ``f`` with its algebraic property flags.

    Class-level flags (see the paper sections in parentheses):

    ``is_node_dominated``
        Definition 6 — some member's own weight equals ``f(H)``.
    ``is_size_proportional``
        Definition 7 — monotone under set inclusion.
    ``decreases_under_removal``
        Corollary 2 — deleting vertices can only lower ``f`` (assuming
        non-negative weights).  Required by Algorithm 2's pruning.
    ``np_hard_unconstrained`` / ``np_hard_constrained``
        Table I hardness of the size-unconstrained / constrained problems.
    ``needs_graph_total``
        True for balanced density, whose value depends on ``w(V \\ H)``.
    """

    name: str = "abstract"
    is_node_dominated: bool = False
    is_size_proportional: bool = False
    decreases_under_removal: bool = False
    np_hard_unconstrained: bool = False
    np_hard_constrained: bool = True  # every size-constrained variant is NP-hard
    needs_graph_total: bool = False

    @abstractmethod
    def from_stats(self, stats: SubsetStats, graph_total: float | None = None) -> float:
        """Evaluate ``f`` on pre-computed subset statistics."""

    def value(self, graph: Graph, vertices: Iterable[int]) -> float:
        """Evaluate ``f(G[H])`` directly from a graph and vertex subset.

        Convenience wrapper used by tests and the certifier; solvers should
        prefer :meth:`from_stats` with incrementally maintained statistics.
        """
        weights = graph.weights
        subset = list(vertices)
        if not subset:
            raise AggregatorError(f"{self.name} is undefined on the empty set")
        values = [float(weights[v]) for v in subset]
        stats = SubsetStats(
            size=len(values),
            weight_sum=float(sum(values)),
            weight_min=min(values),
            weight_max=max(values),
        )
        total = graph.total_weight if self.needs_graph_total else None
        return self.from_stats(stats, graph_total=total)

    def _require_nonempty(self, stats: SubsetStats) -> None:
        if stats.size == 0:
            raise AggregatorError(f"{self.name} is undefined on the empty set")

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"

    def __eq__(self, other: object) -> bool:
        # Two aggregators are interchangeable iff they render identically
        # (parameterised ones embed their parameters in `name`).
        return isinstance(other, Aggregator) and self.name == other.name

    def __hash__(self) -> int:
        return hash((type(self).__module__, self.name))
