"""Minimum and maximum — the node-dominated aggregators (Definition 6).

These are the functions of prior work: Li et al. (VLDB 2015) and Bi et al.
(VLDB 2018) study ``min``; the paper notes their algorithms "could simply
be extended to the cases when f = max".  Both are polynomial-time solvable
(Table I) and handled by :mod:`repro.influential.minmax_solvers`.
"""

from __future__ import annotations

from repro.aggregators.base import Aggregator
from repro.utils.stats import SubsetStats


class Minimum(Aggregator):
    """``f(H) = min_{v in H} w(v)``.

    Not size-proportional (adding a light vertex lowers the value) and not
    decreasing under removal (deleting the lightest vertex *raises* it):
    Algorithm 2's pruning is unsound for min, which is why the dedicated
    peel solver exists.
    """

    name = "min"
    is_node_dominated = True
    is_size_proportional = False
    decreases_under_removal = False
    np_hard_unconstrained = False

    def from_stats(self, stats: SubsetStats, graph_total: float | None = None) -> float:
        self._require_nonempty(stats)
        return stats.weight_min


class Maximum(Aggregator):
    """``f(H) = max_{v in H} w(v)``.

    Size-proportional (supersets can only contain a heavier vertex) but not
    strictly decreasing under removal: deleting a non-maximal vertex keeps
    ``f`` unchanged, so maximality under Definition 3 is non-trivial — the
    anchor-sweep solver handles it.
    """

    name = "max"
    is_node_dominated = True
    is_size_proportional = True
    decreases_under_removal = False
    np_hard_unconstrained = False

    def from_stats(self, stats: SubsetStats, graph_total: float | None = None) -> float:
        self._require_nonempty(stats)
        return stats.weight_max
