"""Average — the paper's flagship NP-hard aggregator.

``f(H) = w(H) / |H|``.  Theorem 1 proves NP-hardness of the top-r search by
reduction from maximum clique; Theorem 2 shows the objective is neither
submodular nor monotone; Theorem 3 rules out constant-factor approximation
(via MSMD_k).  The paper attacks it with the local-search heuristic
(Algorithm 4 + AvgStrategy).
"""

from __future__ import annotations

from repro.aggregators.base import Aggregator
from repro.utils.stats import SubsetStats


class Average(Aggregator):
    """``f(H) = w(H) / |H|``."""

    name = "avg"
    is_node_dominated = False
    is_size_proportional = False
    decreases_under_removal = False
    np_hard_unconstrained = True

    def from_stats(self, stats: SubsetStats, graph_total: float | None = None) -> float:
        self._require_nonempty(stats)
        return stats.weight_sum / stats.size
