"""Sum and sum-surplus — the size-proportional aggregators (Definition 7).

``sum`` is the headline polynomial case of the paper: with non-negative
weights it satisfies Corollary 2 (every removal lowers the value), which
makes Algorithm 1 correct (Theorem 5) and Algorithm 2's lower-bound pruning
sound (Theorem 6).  ``sum-surplus`` = ``w(H) + alpha * |H|`` shares both
properties for alpha >= 0 — the paper's Discussion paragraph explicitly
extends Algorithm 2 to it.
"""

from __future__ import annotations

from repro.aggregators.base import Aggregator
from repro.errors import AggregatorError
from repro.utils.stats import SubsetStats


class Sum(Aggregator):
    """``f(H) = w(H) = sum of member weights``."""

    name = "sum"
    is_node_dominated = False
    is_size_proportional = True
    decreases_under_removal = True
    np_hard_unconstrained = False

    def from_stats(self, stats: SubsetStats, graph_total: float | None = None) -> float:
        self._require_nonempty(stats)
        return stats.weight_sum


class SumSurplus(Aggregator):
    """``f(H) = w(H) + alpha * |H|`` (Table I row "Sum-surplus").

    ``alpha`` must be non-negative: the paper lists the function as
    polynomial precisely because, like sum, it is size-proportional and
    decreasing under removal — both of which fail for alpha < 0 (that
    regime is weight density, handled separately).
    """

    is_node_dominated = False
    is_size_proportional = True
    decreases_under_removal = True
    np_hard_unconstrained = False

    def __init__(self, alpha: float = 1.0) -> None:
        if alpha < 0:
            raise AggregatorError(
                f"sum-surplus requires alpha >= 0, got {alpha}; "
                "negative per-size terms are the (NP-hard) weight density"
            )
        self.alpha = float(alpha)
        self.name = f"sum-surplus(alpha={self.alpha:g})"

    def from_stats(self, stats: SubsetStats, graph_total: float | None = None) -> float:
        self._require_nonempty(stats)
        return stats.weight_sum + self.alpha * stats.size
