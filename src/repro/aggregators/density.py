"""Weight density and balanced density (Table I, NP-hard rows).

* Weight density: ``f(H) = w(H) - beta * |H|`` — rewards weight but
  penalises size; the "lay off the fewest while keeping strength"
  objective of the paper's engagement application.
* Balanced density: ``f(H) = w(H) / (w(H) - w(V \\ H))`` — prefers
  communities holding a dominant share of the total weight; the only
  aggregator whose value depends on the *complement*, hence
  ``needs_graph_total``.

The paper's full version proves both NP-hard; neither is size-proportional
nor decreasing-under-removal, so they route to local search.
"""

from __future__ import annotations

import math

from repro.aggregators.base import Aggregator
from repro.errors import AggregatorError
from repro.utils.stats import SubsetStats


class WeightDensity(Aggregator):
    """``f(H) = w(H) - beta * |H|`` with penalty ``beta > 0``."""

    is_node_dominated = False
    is_size_proportional = False
    decreases_under_removal = False
    np_hard_unconstrained = True

    def __init__(self, beta: float = 1.0) -> None:
        if beta <= 0:
            raise AggregatorError(
                f"weight density requires beta > 0, got {beta}; "
                "beta <= 0 degenerates to sum / sum-surplus"
            )
        self.beta = float(beta)
        self.name = f"weight-density(beta={self.beta:g})"

    def from_stats(self, stats: SubsetStats, graph_total: float | None = None) -> float:
        self._require_nonempty(stats)
        return stats.weight_sum - self.beta * stats.size


class BalancedDensity(Aggregator):
    """``f(H) = w(H) / (w(H) - w(V \\ H)) = w(H) / (2 w(H) - w(V))``.

    Undefined when the community holds exactly half the total weight
    (denominator zero); we return ``+inf`` with the sign of the numerator
    convention ``w(H) > 0``, mirroring how a maximiser would treat the
    pole.  Values are largest just above the half-weight threshold.
    """

    name = "balanced-density"
    is_node_dominated = False
    is_size_proportional = False
    decreases_under_removal = False
    np_hard_unconstrained = True
    needs_graph_total = True

    def from_stats(self, stats: SubsetStats, graph_total: float | None = None) -> float:
        self._require_nonempty(stats)
        if graph_total is None:
            raise AggregatorError(
                "balanced density needs the graph total weight; "
                "call value() or pass graph_total explicitly"
            )
        denominator = 2.0 * stats.weight_sum - graph_total
        if denominator == 0.0:
            return math.inf if stats.weight_sum > 0 else 0.0
        return stats.weight_sum / denominator
