"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause
while still letting programming errors (``TypeError`` et al.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Raised for structurally invalid graph operations or inputs."""


class VertexError(GraphError):
    """Raised when a vertex id is out of range or otherwise unknown."""

    def __init__(self, vertex: int, n: int) -> None:
        super().__init__(f"vertex {vertex} not in graph with {n} vertices")
        self.vertex = vertex
        self.n = n


class WeightError(GraphError):
    """Raised when vertex weights are missing, negative, or malformed."""


class SpecError(ReproError):
    """Raised when a problem specification (k, r, s, f) is invalid."""


class AggregatorError(ReproError):
    """Raised for unknown aggregation functions or unsupported operations."""


class SolverError(ReproError):
    """Raised when a solver cannot handle the requested problem instance."""


class DatasetError(ReproError):
    """Raised when a benchmark dataset cannot be produced or located."""


class SnapshotError(ReproError):
    """Raised when a persistent graph snapshot is missing, truncated, or
    inconsistent with its manifest."""


class CertificationError(ReproError):
    """Raised when a claimed solution fails certification checks."""
