"""Small-graph oracle harness: the serving layer's safety net.

The serving layer promises that cached, pooled, sharded answers are
**byte-identical** to cold single queries, and that the solvers those
queries run remain faithful to Definitions 3-5.  This module packages the
checks behind that promise so the golden tests, the Hypothesis property
suite and ad-hoc debugging all share one vocabulary:

* :func:`small_oracle_graphs` — the fixed menagerie (planted blocks,
  clique, barbell, paper Figure 1) every solver is pinned on, all within
  the brute-force enumeration limit;
* :func:`oracle_discrepancies` — run every applicable solver for one
  ``(graph, k, r, f, backend)`` cell against the exhaustive
  brute-force reference, returning human-readable discrepancy strings
  (exact solvers must match the oracle exactly; heuristics must return
  certified communities that never beat the oracle's optimum);
* :func:`service_discrepancies` — submit queries through a
  :class:`~repro.serving.service.QueryService` (cold, then cached) and
  compare each answer against a cold :func:`~repro.influential.api
  .top_r_communities` call.

Discrepancy lists (rather than asserts) keep the harness usable from
both pytest (``assert not discrepancies``) and interactive sessions.
"""

from __future__ import annotations

from typing import Iterable

from repro.aggregators.registry import get_aggregator
from repro.graphs.generators.examples import barbell_graph, figure1_graph
from repro.graphs.generators.planted import PlantedSpec, planted_communities
from repro.graphs.graph import Graph
from repro.influential.api import top_r_communities
from repro.influential.bruteforce import bruteforce_top_r
from repro.influential.results import ResultSet

__all__ = [
    "ORACLE_AGGREGATORS",
    "bruteforce_constrained_top_r",
    "constrained_discrepancies",
    "small_oracle_graphs",
    "oracle_discrepancies",
    "service_discrepancies",
]

#: One representative of every registered aggregator family (parameterised
#: ones carry an explicit argument so cache keys exercise canonicalisation).
ORACLE_AGGREGATORS = (
    "sum",
    "sum-surplus(1.5)",
    "avg",
    "min",
    "max",
    "weight-density(1)",
)


def small_oracle_graphs() -> list[tuple[str, Graph]]:
    """Named small graphs (all under the brute-force limit of 24 vertices).

    Distinct positive weights throughout: value ties would make "top-r"
    ambiguous up to Definition 3's maximality merging, and the point of
    the golden layer is exact, byte-level pinning.
    """
    clique = barbell_graph(clique=6, path=0)  # K6 + K6, no bridge
    barbell = barbell_graph(clique=4, path=2)
    planted, __ = planted_communities(
        6,
        [
            PlantedSpec(size=5, intra_p=1.0, weight_low=5.0, weight_high=9.0),
            PlantedSpec(size=4, intra_p=1.0, weight_low=2.0, weight_high=4.0),
        ],
        background_p=0.2,
        attach_edges=2,
        seed=29,
    )
    return [
        ("figure1", figure1_graph()),
        ("twin_cliques", clique),
        ("barbell", barbell),
        ("planted", planted),
    ]


def _describe(result: ResultSet) -> str:
    return "[" + "; ".join(
        f"{sorted(c.vertices)}={c.value:.6g}" for c in result
    ) + "]"


def _compare(
    label: str, produced: ResultSet, expected: ResultSet, problems: list[str]
) -> None:
    """Byte-identical comparison (used service-vs-cold: same engine, same
    arithmetic, so even the float bit patterns must agree)."""
    if produced != expected or produced.values() != expected.values():
        problems.append(
            f"{label}: got {_describe(produced)}, "
            f"expected {_describe(expected)}"
        )


def _compare_oracle(
    label: str, produced: ResultSet, expected: ResultSet, problems: list[str]
) -> None:
    """Solver-vs-bruteforce comparison: identical vertex sets in identical
    order; values within 1e-9 relative (the solvers maintain values
    incrementally — parent minus removed weights — which drifts from the
    oracle's from-scratch summation by at most an ulp or two, exactly the
    tolerance the certificate layer grants)."""
    same_sets = produced.vertex_sets() == expected.vertex_sets()
    values_ok = len(produced) == len(expected) and all(
        abs(a - b) <= 1e-9 * max(1.0, abs(a), abs(b))
        for a, b in zip(produced.values(), expected.values())
    )
    if not (same_sets and values_ok):
        problems.append(
            f"{label}: got {_describe(produced)}, "
            f"expected {_describe(expected)}"
        )


def oracle_discrepancies(
    graph: Graph, k: int, r: int, f: str, backend: str = "csr"
) -> list[str]:
    """Every applicable solver vs. the brute-force oracle for one cell.

    Exact solvers (Algorithms 1-2 for the decreasing-under-removal
    family, the min/max peels) must reproduce the oracle's communities
    exactly, with values inside the certificate layer's 1e-9 tolerance.
    The local-search heuristic must return *certified* communities (each
    a connected k-core with a correctly computed value) that never
    exceed the oracle's optimum; its top value is additionally pinned on
    value-unique instances when it does reach the optimum elsewhere, by
    the golden tests.  The truss extension is pinned separately (the
    brute-force oracle enumerates k-cores, not trusses).
    """
    from repro.hardness.certificates import certify_result_set

    aggregator = get_aggregator(f)
    oracle = bruteforce_top_r(graph, k, r, aggregator)
    problems: list[str] = []
    cell = f"{aggregator.name} k={k} r={r} backend={backend}"

    if aggregator.decreases_under_removal:
        for method in ("naive", "improved"):
            produced = top_r_communities(
                graph, k, r, aggregator, method=method, backend=backend
            )
            _compare_oracle(f"{method} [{cell}]", produced, oracle, problems)
    if aggregator.name in ("min", "max"):
        produced = top_r_communities(
            graph, k, r, aggregator, method="auto", backend=backend
        )
        _compare_oracle(
            f"auto/{aggregator.name} [{cell}]", produced, oracle, problems
        )

    heuristic = top_r_communities(
        graph, k, r, aggregator, method="local", backend=backend
    )
    try:
        certify_result_set(graph, heuristic, k=k)
    except Exception as exc:  # noqa: BLE001 — report, don't crash the sweep
        problems.append(f"local [{cell}]: uncertified result: {exc}")
    if heuristic and oracle:
        best, bound = heuristic.values()[0], oracle.values()[0]
        if best > bound + 1e-9:
            problems.append(
                f"local [{cell}]: value {best} beats the exhaustive "
                f"optimum {bound}"
            )
    return problems


def bruteforce_constrained_top_r(
    graph: Graph, k: int, r: int, f: str, labels
) -> ResultSet:
    """Post-filtered brute force: the constrained-query reference.

    Enumerates every connected k-core of the *full* graph, keeps exactly
    those whose members all satisfy the label predicate, applies
    Definition 3 maximality within the surviving candidates, and ranks.
    This is the literal "query then filter" semantics the constrained
    solvers must reproduce — equivalent to brute force on the induced
    subgraph of matching vertices, because induced degrees of an
    all-matching set are identical in both graphs.
    """
    from repro.influential.bruteforce import enumerate_connected_kcores
    from repro.influential.community import community_from_vertices
    from repro.influential.constraints import LabelPredicate

    aggregator = get_aggregator(f)
    predicate = LabelPredicate.from_json(labels)
    names = graph.labels
    if names is None:
        raise ValueError("constrained oracle needs a labeled graph")
    candidates = [
        subset
        for subset in enumerate_connected_kcores(graph, k)
        if all(predicate.matches(names[v]) for v in subset)
    ]
    communities = []
    for subset in candidates:
        value = aggregator.value(graph, subset)
        dominated = any(
            len(other) > len(subset)
            and subset < other
            and aggregator.value(graph, other) == value
            for other in candidates
        )
        if not dominated:
            communities.append(
                community_from_vertices(graph, subset, aggregator, k)
            )
    return ResultSet(sorted(communities)[:r])


def constrained_discrepancies(
    graph: Graph, k: int, r: int, f: str, labels, backend: str = "csr"
) -> list[str]:
    """Constrained solves vs. the post-filtered brute force for one cell.

    Exercises both the pushdown path (decreasing aggregators through
    Algorithms 1-2) and the induced-subgraph fallback (min/max peels);
    the local-search heuristic is checked for constraint *soundness* —
    every member matches and nothing beats the constrained optimum.
    """
    from repro.influential.constraints import LabelPredicate

    aggregator = get_aggregator(f)
    predicate = LabelPredicate.from_json(labels)
    oracle = bruteforce_constrained_top_r(graph, k, r, aggregator, predicate)
    problems: list[str] = []
    cell = (
        f"{aggregator.name} k={k} r={r} {predicate.describe()} "
        f"backend={backend}"
    )

    methods = []
    if aggregator.decreases_under_removal:
        methods += ["naive", "improved", "auto"]
    if aggregator.name in ("min", "max"):
        methods.append("auto")
    for method in methods:
        produced = top_r_communities(
            graph, k, r, aggregator, method=method, backend=backend,
            labels=predicate,
        )
        _compare_oracle(f"{method} [{cell}]", produced, oracle, problems)

    names = graph.labels
    heuristic = top_r_communities(
        graph, k, r, aggregator, method="local", backend=backend,
        labels=predicate,
    )
    for community in heuristic:
        mismatched = [
            v for v in sorted(community.vertices)
            if not predicate.matches(names[v])
        ]
        if mismatched:
            problems.append(
                f"local [{cell}]: members {mismatched} violate the predicate"
            )
    if heuristic and oracle:
        best, bound = heuristic.values()[0], oracle.values()[0]
        if best > bound + 1e-9:
            problems.append(
                f"local [{cell}]: value {best} beats the constrained "
                f"optimum {bound}"
            )
    return problems


def service_discrepancies(
    graph: Graph,
    queries: Iterable,
    backend: str = "auto",
    workers: int | None = None,
) -> list[str]:
    """Served answers (cold pass, cached pass, optional worker pass) vs.
    cold direct API calls, for a batch of queries over ``graph``."""
    from repro.serving.query import InfluentialQuery
    from repro.serving.service import QueryService

    batch = [InfluentialQuery.create(q) for q in queries]
    service = QueryService(graph, backend=backend)
    problems: list[str] = []
    passes = [("cold", None), ("cached", None)]
    if workers:
        passes.append(("workers", workers))
    for label, pass_workers in passes:
        results = service.submit_many(batch, workers=pass_workers)
        for query, produced in zip(batch, results):
            if query.cohesion == "truss":
                continue  # pinned by the dedicated truss golden tests
            expected = top_r_communities(
                graph,
                backend=query.backend if query.backend != "auto" else backend,
                **query.solver_kwargs(),
            )
            _compare(
                f"service/{label} {query.describe()}",
                produced,
                expected,
                problems,
            )
    return problems
