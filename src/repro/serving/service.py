"""The batched multi-query serving layer: one graph, many queries.

A :class:`QueryService` owns everything that should be paid **once per
graph** instead of once per query:

* the flattened CSR arrays (warmed at construction);
* the full core decomposition (eager — it powers the per-k seed splits
  and the ``k > kmax`` fast path) and the truss decomposition (lazy —
  only ``cohesion="truss"`` traffic needs it);
* an :class:`~repro.serving.engine_pool.ExpansionEnginePool` sharing
  relabelled component-local CSRs and the Zobrist table across every
  query it serves;
* a keyed LRU **result cache** over canonical
  :meth:`~repro.serving.query.InfluentialQuery.cache_key` identities,
  with explicit invalidation (per key, per k, or on weight updates).

``submit`` answers one query; ``submit_many`` answers a batch — in
submission order, deduplicating identical queries, and optionally
sharding distinct queries across a :class:`~concurrent.futures
.ProcessPoolExecutor` whose workers rebuild the graph from the shared
int32 CSR arrays exactly once (fork start method inherits the pages
copy-on-write; spawn falls back to one pickled payload per worker).

Results are **byte-identical to cold single queries** by construction:
the pool is a pure cache, cache keys are canonical, and the oracle /
property suites under ``tests/serving`` enforce the equivalence against
both the direct API and the brute-force oracle.
"""

from __future__ import annotations

import multiprocessing
import zlib
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import SolverError
from repro.graphs.delta import GraphDelta
from repro.graphs.graph import Graph
from repro.index import InfluentialIndex
from repro.influential.api import top_r_communities
from repro.influential.results import ResultSet
from repro.serving.cache import LRUCache
from repro.serving.engine_pool import ExpansionEnginePool
from repro.serving.query import InfluentialQuery
from repro.utils.parallel import cap_workers
from repro.serving.updates import (
    UpdateReport,
    component_mask,
    evict_truss_entries,
    refresh_truss_numbers,
)

__all__ = ["QueryService"]

_MISS = object()


def _stable_shard(key: tuple) -> int:
    """Deterministic shard digest of a cache key.

    ``hash()`` of a tuple containing strings is salted per process by
    ``PYTHONHASHSEED``, so using it to shard would shuffle worker
    assignment — and therefore load balance and bench timings — run to
    run.  ``repr`` of a cache key is canonical (ints, floats, strings,
    bools, None in a fixed layout; float repr is shortest-roundtrip and
    stable), so a CRC over its UTF-8 encoding pins the shard everywhere.
    """
    return zlib.crc32(repr(key).encode("utf-8"))


class QueryService:
    """Serve many top-r influential-community queries over one graph.

    Usage::

        service = QueryService(graph)
        best = service.submit(InfluentialQuery(k=4, r=5, f="sum"))
        batch = service.submit_many(workload)          # list[ResultSet]
        service.update_weights(new_weights)            # invalidates results

    Thread-unsafe by design (wrap submissions in a lock, or give each
    thread its own service over the shared graph); process-parallelism is
    built in via ``submit_many(..., workers=N)``.
    """

    def __init__(
        self,
        graph: Graph,
        backend: str = "auto",
        cache_size: int = 1024,
        pool_capacity: int = 1024,
        core_numbers: "np.ndarray | None" = None,
        truss_numbers: "dict[tuple[int, int], int] | None" = None,
        index: "InfluentialIndex | None" = None,
    ) -> None:
        self._graph = graph
        self._backend = backend
        self._cache_size = cache_size
        self._pool_capacity = pool_capacity
        graph.csr  # noqa: B018 — warm the flattening once, up front
        # ``core_numbers``/``truss_numbers`` seed the decomposition caches
        # with precomputed arrays (a loaded snapshot, typically) so a fresh
        # service comes up without re-peeling anything; when absent the core
        # decomposition runs eagerly here (seeds + the kmax fast path).
        self._pool = ExpansionEnginePool(
            graph, capacity=pool_capacity, core_numbers=core_numbers
        )
        self._pool.core_numbers  # noqa: B018 — eager: seeds + kmax fast path
        self._results = LRUCache(cache_size)
        self._truss_numbers = truss_numbers
        # Vertex mask of components whose truss numbers were evicted by an
        # edge update and await lazy recomputation (None = nothing pending).
        self._truss_pending: "np.ndarray | None" = None
        # The (optional) precomputed community index: a snapshot-loaded
        # instance arrives here; enable_index builds a fresh one.
        self._index = index
        self.queries_served = 0
        self.solver_calls = 0
        self.invalidations = 0
        self.edge_updates = 0

    # ------------------------------------------------------------------
    # Shared state accessors
    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """The graph currently being served (changes on weight updates)."""
        return self._graph

    @property
    def core_numbers(self) -> np.ndarray:
        """Cached core number per vertex."""
        return self._pool.core_numbers

    @property
    def kmax(self) -> int:
        """Maximum core number (queries with ``k > kmax`` short-circuit)."""
        return self._pool.kmax

    @property
    def truss_numbers(self) -> dict[tuple[int, int], int]:
        """Cached truss number per edge (computed on first truss query).

        After an edge update, only the affected components' entries were
        evicted; the first access afterwards recomputes exactly those
        components and merges them back (truss numbers never cross a
        component boundary).
        """
        if self._truss_numbers is None:
            from repro.truss.decomposition import truss_decomposition

            self._truss_numbers = truss_decomposition(
                self._graph, backend=self._backend
            )
            self._truss_pending = None
        elif self._truss_pending is not None:
            self._truss_numbers = refresh_truss_numbers(
                self._graph,
                self._truss_numbers,
                self._truss_pending,
                backend=self._backend,
            )
            self._truss_pending = None
        return self._truss_numbers

    def peek_truss_numbers(self) -> "dict[tuple[int, int], int] | None":
        """The truss cache if one was ever computed (refreshed), else None.

        Snapshot saves and worker payloads use this: they must never ship
        a partially evicted dict, but must not force a cold decomposition
        on a service that never served truss traffic either.
        """
        if self._truss_numbers is None:
            return None
        return self.truss_numbers

    @property
    def truss_pending(self) -> bool:
        """True while an edge update's truss refresh is still lazy.

        Substrate publication and worker payloads check this instead of
        touching :attr:`truss_numbers` (which would force the refresh on
        whatever thread asked — the event loop, typically)."""
        return self._truss_pending is not None

    @property
    def tmax(self) -> int:
        """Largest k with a non-empty k-truss (0 on edgeless graphs)."""
        numbers = self.truss_numbers
        return max(numbers.values()) if numbers else 0

    @property
    def engine_pool(self) -> ExpansionEnginePool:
        """The shared expansion-engine pool (exposed for diagnostics)."""
        return self._pool

    @property
    def index(self) -> "InfluentialIndex | None":
        """The precomputed community index, if one is enabled."""
        return self._index

    def enable_index(
        self,
        depth: int = 32,
        aggregators: Sequence[str] = ("sum",),
    ) -> InfluentialIndex:
        """Build (or rebuild) the precomputed community index.

        Afterwards every indexed ``(k, r, f)`` query — sum-family
        aggregators under a method that resolves to the exact best-first
        search — is answered by slicing the stored per-k ranking instead
        of running a solver; everything else keeps the solver path.  The
        build itself runs one capture per ``(k, aggregator)`` level
        through the shared engine pool.
        """
        index = InfluentialIndex(depth=depth, aggregators=aggregators)
        index.build(self._graph, self._pool, self._backend)
        self._index = index
        return index

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def submit(
        self, query: "InfluentialQuery | Mapping[str, object]", **overrides
    ) -> ResultSet:
        """Answer one query, from cache when possible.

        ``queries_served`` counts *answered* queries, so it is bumped
        after the solve: a query the solver rejects shows up in no
        counter rather than inflating the served tally.
        """
        query = InfluentialQuery.create(query, **overrides)
        key = query.cache_key()
        cached = self._results.get(key, _MISS)
        if cached is not _MISS:
            self.queries_served += 1
            return cached  # type: ignore[return-value]
        result = self._solve(query)
        self._results.put(key, result)
        self.queries_served += 1
        return result

    def peek(
        self, query: "InfluentialQuery | Mapping[str, object]"
    ) -> ResultSet | None:
        """The cached answer for ``query``, or ``None`` — never solves.

        The HTTP front end uses this to split the cache probe from the
        (event-loop-unfriendly) solve: a hit is answered inline, a miss is
        dispatched to an executor and later recorded via :meth:`store`.
        """
        query = InfluentialQuery.create(query)
        cached = self._results.get(query.cache_key(), _MISS)
        return None if cached is _MISS else cached  # type: ignore[return-value]

    def store(
        self, query: "InfluentialQuery | Mapping[str, object]", result: ResultSet
    ) -> None:
        """Record an externally computed answer under ``query``'s key.

        The result must be what a cold solve of ``query`` would return
        (e.g. computed by a process-pool worker from the same snapshot) —
        the cache trusts it exactly as it trusts its own solves.
        """
        query = InfluentialQuery.create(query)
        self._results.put(query.cache_key(), result)

    def submit_many(
        self,
        queries: Iterable["InfluentialQuery | Mapping[str, object]"],
        workers: int | None = None,
        zero_copy: bool = True,
    ) -> list[ResultSet]:
        """Answer a batch, in submission order.

        ``workers > 1`` shards the *distinct, uncached* queries across a
        process pool; duplicates are answered once, and every computed
        result lands in this service's cache for later batches.  A query
        that raises (malformed spec, method mismatch) raises here exactly
        as it would cold, whichever path computed it — but counters stay
        consistent: ``solver_calls`` reflects every shard that *did*
        complete (its results are cached), and ``queries_served`` counts
        only batches that were actually answered in full.

        ``zero_copy=True`` (default) publishes the shared arrays into a
        :class:`~repro.serving.substrate.SharedSubstrate` once and hands
        workers its descriptor: each worker attaches read-only views and
        lazily materialises only the neighbour sets it touches, instead
        of receiving a pickled copy of everything and rebuilding an
        eager adjacency.  The segments are unlinked when the pool shuts
        down.  ``zero_copy=False`` keeps the legacy pickled payload
        (the fleet benchmark uses it as the RSS comparison point).
        """
        batch = [InfluentialQuery.create(q) for q in queries]
        if workers is None or workers <= 1 or len(batch) <= 1:
            return [self.submit(query) for query in batch]

        # Distinct cache keys, first submission wins the solve.
        distinct: dict[tuple, InfluentialQuery] = {}
        for query in batch:
            distinct.setdefault(query.cache_key(), query)
        resolved: dict[tuple, ResultSet] = {}
        todo: dict[tuple, InfluentialQuery] = {}
        for key, query in distinct.items():
            cached = self._results.get(key, _MISS)
            if cached is _MISS:
                todo[key] = query
            else:
                resolved[key] = cached  # type: ignore[assignment]
        if todo and self._index is not None and self._index.built:
            # Indexed queries never reach the worker pool: a dict lookup
            # plus a slice is far cheaper than shipping them anywhere.
            for key, query in list(todo.items()):
                served = self._index.serve(
                    query, self._graph, self._pool, self._backend
                )
                if served is not None:
                    resolved[key] = served
                    self._results.put(key, served)
                    del todo[key]
        if todo:
            shards: list[list[InfluentialQuery]] = [[] for _ in range(workers)]
            for key, query in todo.items():
                # A stable digest, not hash(): tuple hashes are salted by
                # PYTHONHASHSEED, which would shuffle shard assignment
                # (and bench timings) across runs.
                shards[_stable_shard(key) % workers].append(query)
            shards = [shard for shard in shards if shard]
            context = None
            if "fork" in multiprocessing.get_all_start_methods():
                context = multiprocessing.get_context("fork")
            substrate = None
            if zero_copy:
                from repro.serving.substrate import SharedSubstrate

                substrate = SharedSubstrate.publish(self)
            failure: BaseException | None = None
            try:
                # Shard count stays as requested (assignment is part of
                # the workload's determinism), but the pool never forks
                # more processes than there are usable cores: extra
                # workers beyond that only add fork/IPC overhead, and
                # queued shard futures drain through the capped pool
                # unchanged.
                with ProcessPoolExecutor(
                    max_workers=cap_workers(len(shards)),
                    mp_context=context,
                    initializer=_worker_init,
                    initargs=self.worker_initargs(substrate),
                ) as executor:
                    futures = [
                        executor.submit(_worker_solve_counted, shard)
                        for shard in shards
                    ]
                    for shard, future in zip(shards, futures):
                        try:
                            results, solved = future.result()
                        except BaseException as exc:  # noqa: BLE001 — re-raised
                            # Keep draining: sibling shards that completed
                            # must still land in the cache and the solve
                            # counter.
                            if failure is None:
                                failure = exc
                            continue
                        self.solver_calls += solved
                        for query, result in zip(shard, results):
                            key = query.cache_key()
                            resolved[key] = result
                            self._results.put(key, result)
            finally:
                if substrate is not None:
                    substrate.unlink()
            if failure is not None:
                raise failure
        self.queries_served += len(batch)
        return [resolved[query.cache_key()] for query in batch]

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def _effective_backend(self, query: InfluentialQuery) -> str:
        return query.backend if query.backend != "auto" else self._backend

    def _solve(self, query: InfluentialQuery) -> ResultSet:
        # Index first: an indexed (k, r, f) answer is a precomputed slice,
        # byte-identical to the solver's, and counts as an index hit, not
        # a solver call.  Everything unindexed (truss, min/max, TONIC,
        # eps > 0, boundary value ties...) falls through to the solvers.
        if self._index is not None:
            served = self._index.serve(
                query, self._graph, self._pool, self._backend
            )
            if served is not None:
                return served
        if query.cohesion == "truss":
            result = self._solve_truss(query)
        else:
            result = top_r_communities(
                self._graph,
                backend=self._effective_backend(query),
                engine_pool=self._pool,
                **query.solver_kwargs(),
            )
        # Counted on success only, so a rejected query (the solver raise
        # propagates to the caller) never inflates the stats.
        self.solver_calls += 1
        return result

    def _solve_truss(self, query: InfluentialQuery) -> ResultSet:
        from repro.influential.truss_search import (
            truss_top_r_min,
            truss_top_r_sum,
        )

        if query.s is not None or query.non_overlapping:
            raise SolverError(
                "truss cohesion serves the size-unconstrained overlapping "
                "problem only"
            )
        if query.constraints is not None:
            raise SolverError(
                "label constraints are supported for core cohesion only; "
                "truss cohesion has no constrained solver"
            )
        aggregator = query.aggregator
        backend = self._effective_backend(query)
        if aggregator.is_size_proportional:
            if query.k < 2 or query.r < 1:
                # Delegate so parameter errors carry the solver's message.
                return truss_top_r_sum(
                    self._graph, query.k, query.r, aggregator, backend=backend
                )
            return self._truss_sum_from_numbers(query.k, query.r, aggregator)
        if aggregator.name == "min":
            # Invalid k/r must raise the solver's own error, never be
            # swallowed (and cached) by the tmax short circuit.
            if query.k >= 2 and query.r >= 1 and query.k > self.tmax:
                return ResultSet(())
            return truss_top_r_min(
                self._graph, query.k, query.r, backend=backend
            )
        raise SolverError(
            f"truss cohesion serves sum-family or min aggregators, "
            f"not {aggregator.name!r}"
        )

    def _truss_sum_from_numbers(self, k, r, aggregator) -> ResultSet:
        """``truss_top_r_sum`` served from the cached truss decomposition.

        The maximal k-truss is exactly the edges with truss number >= k,
        so no per-query support peel runs; the component split mirrors
        :func:`repro.truss.ktruss.connected_ktruss_components` (connectivity
        over surviving truss edges, components emitted smallest member
        first), which keeps served answers identical to the solver's —
        the truss golden tests pin the equivalence.
        """
        from repro.influential.community import community_from_vertices
        from repro.utils.topr import TopR

        adjacency: dict[int, set[int]] = {}
        for (u, v), t in self.truss_numbers.items():
            if t >= k:
                adjacency.setdefault(u, set()).add(v)
                adjacency.setdefault(v, set()).add(u)
        top: TopR = TopR(r, key=lambda c: c.value)
        unvisited = set(adjacency)
        for seed in sorted(adjacency):
            if seed not in unvisited:
                continue
            component = {seed}
            unvisited.discard(seed)
            stack = [seed]
            while stack:
                x = stack.pop()
                for w in adjacency[x] & unvisited:
                    unvisited.discard(w)
                    component.add(w)
                    stack.append(w)
            top.offer(
                community_from_vertices(self._graph, component, aggregator, k)
            )
        return ResultSet(top.ranked())

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def update_weights(self, weights: "np.ndarray | Sequence[float]") -> None:
        """Serve a re-weighted twin of the graph.

        Topology-derived state (CSR, decompositions, every relabelled
        structure in the engine pool) survives; the result cache — whose
        entries embed influence values — is fully invalidated.
        """
        self._reweight_shared_state(weights)
        self._drop_results()

    def _reweight_shared_state(
        self, weights: "np.ndarray | Sequence[float]"
    ) -> None:
        """The engine-pool half of a weight update (no cache writes).

        Split out so the HTTP front end can run this on its solver thread
        (which owns the pool) while the result-cache drop happens on the
        event-loop thread (which owns the cache).
        """
        graph = self._graph.with_weights(weights)
        self._graph = graph
        self._pool.reweight(graph)
        if self._index is not None:
            # Value-only refresh: topology survives (the pool just
            # re-gathered weight slices in place), so each index level
            # re-seals lazily with one warm replay on next use.
            self._index.invalidate_values()

    def _drop_results(self) -> None:
        """The result-cache half of a weight update."""
        self.invalidations += len(self._results)
        self._results.clear()

    def update_edges(
        self,
        insert: "Sequence[tuple[int, int]] | Sequence[Sequence[int]]" = (),
        delete: "Sequence[tuple[int, int]] | Sequence[Sequence[int]]" = (),
    ) -> UpdateReport:
        """Apply edge insertions/deletions without resetting the service.

        The topology change goes through :class:`~repro.graphs.delta
        .GraphDelta` (patched CSR, incrementally repaired core numbers)
        and invalidation is scoped by its locality bound: engine-pool
        state and cached results survive for every degree constraint
        whose k-core the batch provably left untouched, and truss numbers
        are evicted per affected component only.  A rejected batch
        (malformed pairs, self-loops, duplicates, inserting an existing
        edge, deleting a missing one) raises :class:`~repro.errors
        .GraphError` before any state changes.
        """
        report = self._apply_edges_shared_state(insert, delete)
        self._drop_results_for_update(report)
        return report

    def _apply_edges_shared_state(self, insert=(), delete=()) -> UpdateReport:
        """The graph/pool/truss half of an edge update (no cache writes).

        Split from the result-cache drop for the same reason as
        :meth:`_reweight_shared_state`: the HTTP front end runs this on
        its solver thread while the loop thread owns the result cache.
        """
        delta = GraphDelta(
            self._graph,
            core_numbers=self._pool.core_numbers,
            backend=self._backend,
        )
        report = delta.apply(insert=insert, delete=delete)
        self._graph = report.graph
        structures_dropped = self._pool.apply_update(
            report.graph,
            report.core_numbers,
            report.max_affected_core,
            report.inserted + report.deleted,
        )
        if self._index is not None:
            # Same locality bound as the pool and the result cache: index
            # levels strictly above max_affected_core survive verbatim.
            self._index.apply_update(
                report.max_affected_core, self._pool.kmax
            )
        truss_dropped = 0
        if self._truss_numbers is not None:
            affected = component_mask(report.graph.csr, report.touched)
            self._truss_numbers, truss_dropped = evict_truss_entries(
                self._truss_numbers, affected
            )
            if self._truss_pending is None:
                self._truss_pending = affected
            else:
                self._truss_pending = self._truss_pending | affected
        self.edge_updates += 1
        return UpdateReport(
            delta=report,
            structures_dropped=structures_dropped,
            truss_entries_dropped=truss_dropped,
        )

    def _drop_results_for_update(self, report: UpdateReport) -> None:
        """The result-cache half of an edge update.

        Core-cohesion results survive when their degree constraint lies
        strictly above the delta's locality bound (identical k-core ⇒
        identical answer); truss-cohesion results are always dropped —
        the truss lattice has no equally tight bound.
        """
        kbar = report.delta.max_affected_core
        dropped = self._results.invalidate_where(
            lambda key: key[0] == "truss" or key[1] <= kbar
        )
        self.invalidations += dropped
        report.results_dropped = dropped

    def replace_graph(self, graph: Graph) -> None:
        """Point the service at a different graph (full cache reset)."""
        self._graph = graph
        graph.csr  # noqa: B018
        self._pool = ExpansionEnginePool(graph, capacity=self._pool_capacity)
        self._pool.core_numbers  # noqa: B018
        self.invalidations += len(self._results)
        self._results.clear()
        self._truss_numbers = None
        self._truss_pending = None
        if self._index is not None:
            self._index.reset(self._pool.kmax)

    def invalidate(self, k: int | None = None) -> int:
        """Drop cached results — all of them, or only degree constraint k.

        Returns the number of entries dropped.  Cache keys place ``k`` at
        index 1 (see :meth:`InfluentialQuery.cache_key`).
        """
        if k is None:
            dropped = len(self._results)
            self._results.clear()
        else:
            dropped = self._results.invalidate_where(lambda key: key[1] == k)
        self.invalidations += dropped
        return dropped

    # ------------------------------------------------------------------
    # Introspection / worker plumbing
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, object]:
        """Serving counters plus both caches' stats, JSON-ready."""
        return {
            "graph": {"n": self._graph.n, "m": self._graph.m},
            "kmax": self.kmax,
            "queries_served": self.queries_served,
            "solver_calls": self.solver_calls,
            "invalidations": self.invalidations,
            "edge_updates": self.edge_updates,
            "result_cache": self._results.stats(),
            "engine_pool": self._pool.stats(),
            "index": self._index.stats() if self._index is not None else None,
        }

    def worker_initargs(self, substrate=None) -> tuple:
        """``initargs`` for a :func:`_worker_init`-initialised pool.

        With a :class:`~repro.serving.substrate.SharedSubstrate`, the
        payload is its (small, JSON-able) descriptor plus the service
        knobs — workers attach read-only views and build a lazy-adjacency
        service, copying nothing.  Without one, the legacy pickled-array
        payload ships (fork inherits the pages copy-on-write; spawn pays
        one pickle per worker *and* an eager set adjacency each).
        """
        if substrate is None:
            return (self._worker_payload(),)
        return (
            {
                "substrate": substrate.descriptor(),
                "backend": self._backend,
                "cache_size": self._cache_size,
                "pool_capacity": self._pool_capacity,
            },
        )

    def _worker_payload(self) -> dict[str, object]:
        csr = self._graph.csr
        return {
            "indptr": csr.indptr,
            "indices": csr.indices,
            "weights": self._graph.weights,
            "labels": self._graph.labels,
            "backend": self._backend,
            "cache_size": self._cache_size,
            "pool_capacity": self._pool_capacity,
            # Ship the decompositions this service already paid for, so
            # workers come up without re-peeling (fork shares the pages;
            # spawn pickles them once per worker).
            "core_numbers": self._pool.core_numbers,
            # Never a *stale* truss cache, but never a recomputation
            # either: the HTTP front end builds this payload on the event
            # loop thread (ProcessPoolExecutor initargs), where a truss
            # peel would stall every connection.  While a post-update
            # refresh is pending, workers simply start without the cache
            # and lazily recompute if they actually serve truss traffic.
            "truss_numbers": (
                self._truss_numbers if self._truss_pending is None else None
            ),
            # Flat-array form of the community index (when enabled), so
            # workers serve indexed queries from the same precomputed
            # rankings instead of re-running captures of their own.
            "index": (
                self._index.to_payload()
                if self._index is not None and self._index.built
                else None
            ),
        }

    def __repr__(self) -> str:
        return (
            f"QueryService(n={self._graph.n}, m={self._graph.m}, "
            f"served={self.queries_served}, cached={len(self._results)})"
        )


# ----------------------------------------------------------------------
# Process-pool workers (module level: must be picklable by reference)
# ----------------------------------------------------------------------
_WORKER_SERVICE: QueryService | None = None
# The worker's substrate attachment, when zero-copy init was used: held
# at module level so the mapped segments stay alive for the worker's
# whole lifetime (the service's arrays are views into them).
_WORKER_SUBSTRATE = None


def _worker_init(payload: dict) -> None:
    """Build this worker's service once, from the shared CSR arrays."""
    global _WORKER_SERVICE, _WORKER_SUBSTRATE
    from repro.graphs.builder import graph_from_csr_arrays

    if "substrate" in payload:
        from repro.serving.substrate import SharedSubstrate

        _WORKER_SUBSTRATE = SharedSubstrate.attach(payload["substrate"])
        _WORKER_SERVICE = _WORKER_SUBSTRATE.build_service(
            backend=payload["backend"],
            cache_size=payload["cache_size"],
            pool_capacity=payload["pool_capacity"],
        )
        return
    graph = graph_from_csr_arrays(
        payload["indptr"],
        payload["indices"],
        payload["weights"],
        labels=payload["labels"],
        # Same-machine payload straight from the parent's validated Graph:
        # skip the O(m) per-edge revalidation at every worker startup.
        trusted=True,
    )
    index_payload = payload.get("index")
    _WORKER_SERVICE = QueryService(
        graph,
        backend=payload["backend"],
        cache_size=payload["cache_size"],
        pool_capacity=payload["pool_capacity"],
        core_numbers=payload.get("core_numbers"),
        truss_numbers=payload.get("truss_numbers"),
        index=(
            InfluentialIndex.from_payload(index_payload)
            if index_payload is not None
            else None
        ),
    )


def _worker_solve(shard: list[InfluentialQuery]) -> list[ResultSet]:
    """Answer one shard through the worker-local service."""
    assert _WORKER_SERVICE is not None, "worker initializer did not run"
    return [_WORKER_SERVICE.submit(query) for query in shard]


def _worker_solve_counted(
    shard: list[InfluentialQuery],
) -> tuple[list[ResultSet], int]:
    """Like :func:`_worker_solve`, also reporting how many solver calls
    actually ran (a worker may answer from its local cache — the HTTP
    front end's stats must not count those as solves)."""
    assert _WORKER_SERVICE is not None, "worker initializer did not run"
    before = _WORKER_SERVICE.solver_calls
    results = [_WORKER_SERVICE.submit(query) for query in shard]
    return results, _WORKER_SERVICE.solver_calls - before
