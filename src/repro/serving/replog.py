"""Append-only replication log for serving-layer mutations.

Every mutation the serving stack accepts — an edge-update batch or a
weight update — is one JSON line in a shared log file::

    {"seq": 7, "epoch": 7, "op": "update-edges",
     "payload": {"insert": [[0, 5]], "delete": []}, "ts": 1754650000.123}

``seq`` is a strictly increasing sequence number assigned under an
exclusive ``flock`` at append time; ``epoch`` mirrors it (one mutation
is one serving epoch — the HTTP layer's per-process epoch counter
advances in lockstep once it replays the record).  Followers tail the
file with a :class:`LogCursor` and replay each record through the very
same ``update_edges``/``update_weights`` paths a direct POST would take,
which is what makes replicas byte-identical to the leader: the log
stores *intents*, not state, and the appliers are deterministic.

Durability/consistency model, deliberately minimal:

* appends are atomic under ``flock(LOCK_EX)`` + single ``write`` +
  ``fsync`` — many writers may share one log (every fleet member
  appends the mutations *it* received);
* readers only consume **newline-terminated** lines, so a torn tail
  (crash mid-append) is invisible until completed — never misparsed;
  the next successful append terminates a torn tail with a newline
  first, so a crash loses only the crashed writer's own record, never
  a later one;
* a malformed or out-of-order record is *skipped deterministically* (and
  counted) by every reader, so one corrupt line cannot fork replicas;
* a refreshed snapshot stores the ``replication_seq`` it absorbed, and a
  process starting from it tails the log from that seq (see
  :func:`repro.serving.store.save_snapshot`); after such a refresh the
  absorbed prefix is dead weight, and :meth:`ReplicationLog.compact`
  drops it — atomically, by writing the retained suffix to a temp file
  and renaming it over the log under the same exclusive ``flock`` that
  serialises appends.  Readers and appenders detect the rewrite by inode
  identity: a :class:`LogCursor` whose file changed identity restarts
  from offset 0 (dedup-by-seq drops anything it already applied), and an
  appender that acquired the lock on a replaced inode reopens and
  retries.  Compaction always retains the newest complete record, so the
  head seq never regresses (a regressed head would hand out duplicate
  seqs that every cursor then discards as already-seen).
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from dataclasses import dataclass

__all__ = ["LogCursor", "LogRecord", "ReplicationLog"]

try:  # pragma: no cover — fcntl exists everywhere this repo targets
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None

#: Operations a log may carry; anything else is skipped on read.
VALID_OPS = ("update-edges", "update-weights")


@dataclass(frozen=True)
class LogRecord:
    """One replayable mutation."""

    seq: int
    op: str
    payload: dict
    ts: float

    def to_line(self) -> bytes:
        doc = {
            "seq": self.seq,
            "epoch": self.seq,
            "op": self.op,
            "payload": self.payload,
            "ts": self.ts,
        }
        return (json.dumps(doc, separators=(",", ":")) + "\n").encode("utf-8")


def _parse_line(line: bytes) -> "LogRecord | None":
    """One line → record, or None for anything malformed."""
    try:
        doc = json.loads(line.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None
    if not isinstance(doc, dict):
        return None
    seq, op, payload = doc.get("seq"), doc.get("op"), doc.get("payload")
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 1:
        return None
    if op not in VALID_OPS or not isinstance(payload, dict):
        return None
    ts = doc.get("ts")
    if not isinstance(ts, (int, float)) or isinstance(ts, bool):
        ts = 0.0
    return LogRecord(seq=seq, op=op, payload=payload, ts=float(ts))


class LogCursor:
    """Tail a replication log, yielding complete records past a seq.

    Tracks a byte offset so repeated :meth:`poll` calls re-read nothing;
    only newline-terminated lines are consumed (a partial append stays
    pending until its newline lands).  Records with ``seq <=`` the
    highest seen (or the starting seq) are dropped as duplicates, and
    malformed lines are counted in :attr:`skipped` — every reader makes
    the same call on the same bytes, so replicas cannot diverge over a
    bad record.
    """

    def __init__(self, path: "str | pathlib.Path", start_seq: int = 0) -> None:
        self.path = pathlib.Path(path)
        self.seq = int(start_seq)
        self.skipped = 0
        self._offset = 0
        self._pending = b""
        self._identity: "tuple[int, int] | None" = None

    def poll(self, max_records: "int | None" = None) -> list[LogRecord]:
        """Every new complete record since the last poll (maybe empty)."""
        try:
            with open(self.path, "rb") as handle:
                stat = os.fstat(handle.fileno())
                identity = (stat.st_dev, stat.st_ino)
                if identity != self._identity:
                    # A different inode under the same name: compaction
                    # (or rotation) renamed a rewritten log over the one
                    # this cursor was tailing.  Byte offsets into the old
                    # file mean nothing in the new one — even when the new
                    # file happens to be *larger* — so restart from the
                    # top; dedup-by-seq drops anything already applied.
                    if self._identity is not None:
                        self._offset = 0
                        self._pending = b""
                    self._identity = identity
                size = stat.st_size
                if size < self._offset:
                    # Same inode but truncated underneath us: restart too.
                    self._offset = 0
                    self._pending = b""
                if size == self._offset:
                    return []
                handle.seek(self._offset)
                chunk = handle.read(size - self._offset)
        except FileNotFoundError:
            return []
        self._offset += len(chunk)
        buffer = self._pending + chunk
        lines = buffer.split(b"\n")
        self._pending = lines.pop()  # b"" when the chunk ended on a newline
        records: list[LogRecord] = []
        consumed = 0
        for line in lines:
            consumed += len(line) + 1
            if not line.strip():
                continue
            record = _parse_line(line)
            if record is None or record.seq <= self.seq:
                self.skipped += 1
                continue
            self.seq = record.seq
            records.append(record)
            if max_records is not None and len(records) >= max_records:
                # Rewind the offset past the unparsed remainder (which
                # includes any old pending bytes) so the next poll
                # re-reads exactly from the first unconsumed line.
                self._offset -= len(buffer) - consumed
                self._pending = b""
                break
        return records


class ReplicationLog:
    """Appender (and head-seq probe) for one log file.

    Many processes may hold a :class:`ReplicationLog` on the same path;
    the exclusive ``flock`` around read-tail-then-append makes each
    append atomic and its seq unique.
    """

    def __init__(self, path: "str | pathlib.Path") -> None:
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._tail = LogCursor(self.path)

    def append(self, op: str, payload: dict) -> LogRecord:
        """Durably append one mutation; returns the stamped record."""
        if op not in VALID_OPS:
            raise ValueError(f"unknown replication op {op!r}")
        while True:
            with open(self.path, "ab") as handle:
                if fcntl is not None:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
                try:
                    if self._rotated(handle):
                        # We waited out the lock on an inode a concurrent
                        # compact() just renamed away; anything written to
                        # it would be invisible.  Reopen the live file.
                        continue
                    # Catch up on lines other writers appended since our
                    # last look, so the new seq lands strictly past the
                    # head.
                    for record in self._tail.poll():
                        pass
                    prefix = b""
                    if self._tail._pending:
                        # A writer died mid-append: the file ends in a torn,
                        # newline-less line.  Terminate it so it cannot merge
                        # with our record — which would make this fsynced
                        # mutation unparseable (and therefore dropped) on
                        # every replica.  Readers then skip the torn line as
                        # malformed — unless it was a complete record that
                        # only lost its newline, in which case the terminator
                        # revives it and our seq must land past it.
                        torn = _parse_line(self._tail._pending)
                        if torn is not None and torn.seq > self._tail.seq:
                            self._tail.seq = torn.seq
                        prefix = b"\n"
                        self._tail._pending = b""
                    record = LogRecord(
                        seq=self._tail.seq + 1,
                        op=op,
                        payload=payload,
                        ts=time.time(),
                    )
                    handle.write(prefix + record.to_line())
                    handle.flush()
                    os.fsync(handle.fileno())
                    self._tail.seq = record.seq
                finally:
                    if fcntl is not None:
                        fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
            return record

    def _rotated(self, handle) -> bool:
        """True when ``handle`` no longer refers to the file at ``path``."""
        held = os.fstat(handle.fileno())
        try:
            live = os.stat(self.path)
        except FileNotFoundError:
            return True
        return (held.st_dev, held.st_ino) != (live.st_dev, live.st_ino)

    def compact(self, upto_seq: int, min_age: float = 0.0) -> int:
        """Drop the fully-absorbed prefix: records with ``seq <= upto_seq``.

        Callers pass the ``replication_seq`` a successful snapshot
        refresh just stamped — every dropped record is therefore already
        durable in the snapshot, so a standby attaching afterwards (load
        snapshot, tail from its seq) never needs them.  Guarantees:

        * runs under the same exclusive ``flock`` as appends, and
          replaces the log via write-temp-then-rename — a reader sees the
          old bytes or the new bytes, never a torn mix, and the old inode
          is never mutated;
        * only a *prefix* of lines is dropped (malformed lines fall with
          it), so surviving bytes keep their order and the retained
          suffix is byte-identical to what a tailing cursor would have
          read anyway;
        * the newest complete record always survives, even at
          ``seq <= upto_seq``: it anchors seq assignment for the next
          append and keeps :func:`head_seq` monotone;
        * ``min_age`` (seconds) exempts young records: a *running* member
          polls every ~50 ms, but between its poll and its apply the
          prefix it is about to read must not vanish — a few seconds of
          age margin closes that window without retaining meaningful
          history (restarting members are safe regardless: they attach
          from the snapshot that already absorbed the dropped prefix).

        Returns the number of complete records dropped.
        """
        upto_seq = int(upto_seq)
        if upto_seq <= 0:
            return 0
        while True:
            try:
                handle = open(self.path, "rb")
            except FileNotFoundError:
                return 0
            try:
                if fcntl is not None:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
                if self._rotated(handle):
                    continue  # lost a race with a concurrent compact
                data = handle.read()
                lines = data.split(b"\n")
                torn_tail = lines.pop()  # b"" when the log ends on \n
                last_complete = -1
                for index in range(len(lines) - 1, -1, -1):
                    if _parse_line(lines[index]) is not None:
                        last_complete = index
                        break
                if last_complete < 0:
                    return 0
                horizon = time.time() - min_age
                cut = 0
                dropped = 0
                for index, line in enumerate(lines):
                    if index >= last_complete:
                        break
                    record = _parse_line(line)
                    if record is None:
                        cut = index + 1
                        continue
                    if record.seq <= upto_seq and (
                        min_age <= 0 or record.ts <= horizon
                    ):
                        cut = index + 1
                        dropped += 1
                        continue
                    break
                if cut == 0:
                    return 0
                retained = (
                    b"".join(line + b"\n" for line in lines[cut:]) + torn_tail
                )
                temp = self.path.with_name(
                    f"{self.path.name}.compact.{os.getpid()}"
                )
                with open(temp, "wb") as out:
                    out.write(retained)
                    out.flush()
                    os.fsync(out.fileno())
                os.replace(temp, self.path)
                directory = os.open(self.path.parent, os.O_RDONLY)
                try:
                    os.fsync(directory)
                finally:
                    os.close(directory)
                return dropped
            finally:
                if fcntl is not None:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
                handle.close()

    def head_seq(self) -> int:
        """Highest complete seq in the log right now (0 for empty/absent)."""
        probe = LogCursor(self.path)
        for __ in probe.poll():
            pass
        return probe.seq


def head_seq(path: "str | pathlib.Path") -> int:
    """Module-level convenience: the log head without holding a log."""
    probe = LogCursor(path)
    for __ in probe.poll():
        pass
    return probe.seq
