"""Append-only replication log for serving-layer mutations.

Every mutation the serving stack accepts — an edge-update batch or a
weight update — is one JSON line in a shared log file::

    {"seq": 7, "epoch": 7, "op": "update-edges",
     "payload": {"insert": [[0, 5]], "delete": []}, "ts": 1754650000.123}

``seq`` is a strictly increasing sequence number assigned under an
exclusive ``flock`` at append time; ``epoch`` mirrors it (one mutation
is one serving epoch — the HTTP layer's per-process epoch counter
advances in lockstep once it replays the record).  Followers tail the
file with a :class:`LogCursor` and replay each record through the very
same ``update_edges``/``update_weights`` paths a direct POST would take,
which is what makes replicas byte-identical to the leader: the log
stores *intents*, not state, and the appliers are deterministic.

Durability/consistency model, deliberately minimal:

* appends are atomic under ``flock(LOCK_EX)`` + single ``write`` +
  ``fsync`` — many writers may share one log (every fleet member
  appends the mutations *it* received);
* readers only consume **newline-terminated** lines, so a torn tail
  (crash mid-append) is invisible until completed — never misparsed;
  the next successful append terminates a torn tail with a newline
  first, so a crash loses only the crashed writer's own record, never
  a later one;
* a malformed or out-of-order record is *skipped deterministically* (and
  counted) by every reader, so one corrupt line cannot fork replicas;
* compaction happens via snapshots, not log rewriting: a refreshed
  snapshot stores the ``replication_seq`` it absorbed, and a process
  starting from it tails the log from that seq (see
  :func:`repro.serving.store.save_snapshot`).
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from dataclasses import dataclass

__all__ = ["LogCursor", "LogRecord", "ReplicationLog"]

try:  # pragma: no cover — fcntl exists everywhere this repo targets
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None

#: Operations a log may carry; anything else is skipped on read.
VALID_OPS = ("update-edges", "update-weights")


@dataclass(frozen=True)
class LogRecord:
    """One replayable mutation."""

    seq: int
    op: str
    payload: dict
    ts: float

    def to_line(self) -> bytes:
        doc = {
            "seq": self.seq,
            "epoch": self.seq,
            "op": self.op,
            "payload": self.payload,
            "ts": self.ts,
        }
        return (json.dumps(doc, separators=(",", ":")) + "\n").encode("utf-8")


def _parse_line(line: bytes) -> "LogRecord | None":
    """One line → record, or None for anything malformed."""
    try:
        doc = json.loads(line.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None
    if not isinstance(doc, dict):
        return None
    seq, op, payload = doc.get("seq"), doc.get("op"), doc.get("payload")
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 1:
        return None
    if op not in VALID_OPS or not isinstance(payload, dict):
        return None
    ts = doc.get("ts")
    if not isinstance(ts, (int, float)) or isinstance(ts, bool):
        ts = 0.0
    return LogRecord(seq=seq, op=op, payload=payload, ts=float(ts))


class LogCursor:
    """Tail a replication log, yielding complete records past a seq.

    Tracks a byte offset so repeated :meth:`poll` calls re-read nothing;
    only newline-terminated lines are consumed (a partial append stays
    pending until its newline lands).  Records with ``seq <=`` the
    highest seen (or the starting seq) are dropped as duplicates, and
    malformed lines are counted in :attr:`skipped` — every reader makes
    the same call on the same bytes, so replicas cannot diverge over a
    bad record.
    """

    def __init__(self, path: "str | pathlib.Path", start_seq: int = 0) -> None:
        self.path = pathlib.Path(path)
        self.seq = int(start_seq)
        self.skipped = 0
        self._offset = 0
        self._pending = b""

    def poll(self, max_records: "int | None" = None) -> list[LogRecord]:
        """Every new complete record since the last poll (maybe empty)."""
        try:
            with open(self.path, "rb") as handle:
                size = os.fstat(handle.fileno()).st_size
                if size < self._offset:
                    # The log shrank (rotated/recreated): restart from the
                    # top, dedup-by-seq drops anything already applied.
                    self._offset = 0
                    self._pending = b""
                if size == self._offset:
                    return []
                handle.seek(self._offset)
                chunk = handle.read(size - self._offset)
        except FileNotFoundError:
            return []
        self._offset += len(chunk)
        buffer = self._pending + chunk
        lines = buffer.split(b"\n")
        self._pending = lines.pop()  # b"" when the chunk ended on a newline
        records: list[LogRecord] = []
        consumed = 0
        for line in lines:
            consumed += len(line) + 1
            if not line.strip():
                continue
            record = _parse_line(line)
            if record is None or record.seq <= self.seq:
                self.skipped += 1
                continue
            self.seq = record.seq
            records.append(record)
            if max_records is not None and len(records) >= max_records:
                # Rewind the offset past the unparsed remainder (which
                # includes any old pending bytes) so the next poll
                # re-reads exactly from the first unconsumed line.
                self._offset -= len(buffer) - consumed
                self._pending = b""
                break
        return records


class ReplicationLog:
    """Appender (and head-seq probe) for one log file.

    Many processes may hold a :class:`ReplicationLog` on the same path;
    the exclusive ``flock`` around read-tail-then-append makes each
    append atomic and its seq unique.
    """

    def __init__(self, path: "str | pathlib.Path") -> None:
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._tail = LogCursor(self.path)

    def append(self, op: str, payload: dict) -> LogRecord:
        """Durably append one mutation; returns the stamped record."""
        if op not in VALID_OPS:
            raise ValueError(f"unknown replication op {op!r}")
        with open(self.path, "ab") as handle:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                # Catch up on lines other writers appended since our last
                # look, so the new seq lands strictly past the head.
                for record in self._tail.poll():
                    pass
                prefix = b""
                if self._tail._pending:
                    # A writer died mid-append: the file ends in a torn,
                    # newline-less line.  Terminate it so it cannot merge
                    # with our record — which would make this fsynced
                    # mutation unparseable (and therefore dropped) on
                    # every replica.  Readers then skip the torn line as
                    # malformed — unless it was a complete record that
                    # only lost its newline, in which case the terminator
                    # revives it and our seq must land past it.
                    torn = _parse_line(self._tail._pending)
                    if torn is not None and torn.seq > self._tail.seq:
                        self._tail.seq = torn.seq
                    prefix = b"\n"
                    self._tail._pending = b""
                record = LogRecord(
                    seq=self._tail.seq + 1,
                    op=op,
                    payload=payload,
                    ts=time.time(),
                )
                handle.write(prefix + record.to_line())
                handle.flush()
                os.fsync(handle.fileno())
                self._tail.seq = record.seq
            finally:
                if fcntl is not None:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        return record

    def head_seq(self) -> int:
        """Highest complete seq in the log right now (0 for empty/absent)."""
        probe = LogCursor(self.path)
        for __ in probe.poll():
            pass
        return probe.seq


def head_seq(path: "str | pathlib.Path") -> int:
    """Module-level convenience: the log head without holding a log."""
    probe = LogCursor(path)
    for __ in probe.poll():
        pass
    return probe.seq
