"""Asyncio HTTP front end over one process-wide :class:`QueryService`.

``repro serve`` turns the in-process serving layer into a deployable
online service using nothing beyond the standard library: an
``asyncio.start_server`` loop speaking enough HTTP/1.1 (keep-alive,
``Content-Length`` bodies, JSON in and out) for any client from ``curl``
to a load balancer.  The JSON schemas are exactly the ones the
``repro batch`` CLI already reads and writes, so a workload file can be
replayed against a live server unchanged.

Endpoints (v1)
--------------
=======  ==========================  ============================================
method   path                        body → response
=======  ==========================  ============================================
GET      ``/``                       service banner: version, graph shape,
                                     endpoints, deprecations
GET      ``/v1/healthz``             liveness: ``{"status": "ok", ...}``
GET      ``/v1/stats``               serving counters + cache/pool/HTTP stats
POST     ``/v1/query``               one query envelope → one result payload
POST     ``/v1/batch``               ``{"queries": [...]}`` → ordered payloads
POST     ``/v1/update-weights``      ``{"weights": [...]}`` → invalidation
                                     summary
POST     ``/v1/update-edges``        ``{"insert": [[u, v], ...],
                                     "delete": [...]}`` → delta summary
POST     ``/v1/invalidate``          ``{"k": 4}`` (or ``{}``) → entries dropped
POST     ``/v1/analytics/leaders``   ``{"query": {...}, "deputies": 1}`` →
                                     per-community leader/deputy roster
POST     ``/v1/analytics/reach``     ``{"query": {...}, "hops": 2}`` →
                                     per-community k-hop reach percentages
POST     ``/v1/analytics/summary``   ``{"query": {...}}`` → size/overlap summary
=======  ==========================  ============================================

The **v1 query envelope** nests solver tuning under ``options`` and label
constraints under ``constraints``::

    {"k": 4, "r": 3, "f": "sum", "s": null, "cohesion": "core",
     "non_overlapping": false,
     "constraints": {"labels": {"any": ["db", "ml"]}},
     "options": {"method": "auto", "eps": 0.1, "backend": "auto",
                 "greedy": true, "seed_order": null, "rng_seed": null}}

Every v1 response carries ``api_version: "v1"`` and (for query-shaped
responses) echoes the **normalized** query — the canonical form actually
answered, aggregator spelling and constraint shape collapsed.  Errors on
*every* endpoint (v1 and legacy) share one machine-readable envelope::

    {"error": {"code": "spec_error", "detail": "unknown aggregator 'bogus'"}}

The **legacy flat routes** (``/query``, ``/batch``, ``/update-weights``,
``/update-edges``, ``/invalidate``, ``/healthz``, ``/stats``) still serve
their historical request/response shapes so recorded workloads replay
unchanged, but every legacy response carries a ``Deprecation: true``
header plus a ``Link: </v1/...>; rel="successor-version"`` pointer; see
docs/API.md for the migration notes.

Edge updates go through :class:`~repro.graphs.delta.GraphDelta`: the CSR
is patched and core numbers are repaired incrementally, and invalidation
is *scoped* — engine-pool state and cached results survive for every
degree constraint whose k-core the batch provably left untouched.  Like
weight updates, an edge update bumps the epoch: solves admitted before
the update still answer their waiters but are never written back to the
(partially invalidated) cache.

Concurrency model
-----------------
The event loop never runs a solver.  Each request is validated into an
:class:`~repro.serving.query.InfluentialQuery` on the loop; its canonical
:meth:`~repro.serving.query.InfluentialQuery.cache_key` is probed against
the service's result cache (a hit answers inline), and misses are
dispatched off the loop:

* ``workers=0`` (default) — a dedicated single solver thread.  One
  thread, because :class:`~repro.serving.service.QueryService`'s engine
  pool is deliberately lock-free; the loop thread touches only the
  result cache, which the solver thread never does (solves go through
  the cache-free ``_solve``).
* ``workers=N`` — the same :class:`~concurrent.futures
  .ProcessPoolExecutor` machinery as ``submit_many(..., workers=N)``,
  kept **persistent** across requests: workers build their service once
  from the shared CSR payload (decompositions included, so they never
  re-peel) and solve queries round-robin.

**Single-flight dedup:** concurrent requests whose queries share a cache
key coalesce onto one in-flight computation — the first arrival creates
an :class:`asyncio.Future` under the key, later arrivals await the same
future, and exactly one solver call runs (``tests/serving/test_http.py``
pins ``solver_calls == 1`` under a concurrent burst).

Weight updates bump an *epoch*: in-flight solves started under an older
epoch still answer their waiters (they were admitted before the update
completed) but are not written back to the cache, so no stale value
outlives the invalidation.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import math
import signal
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Awaitable, Callable, Mapping

import numpy as np

from repro._version import __version__
from repro.errors import ReproError, SpecError
from repro.influential.results import ResultSet
from repro.serving.query import InfluentialQuery
from repro.serving.service import (
    QueryService,
    _worker_init,
    _worker_solve_counted,
)
from repro.utils.memory import rss_bytes
from repro.utils.parallel import cap_workers

__all__ = [
    "API_VERSION",
    "ServingApp",
    "query_envelope",
    "result_payload",
    "result_payload_v1",
    "run_server_in_thread",
    "serve",
]

#: Largest accepted request body (a 1M-vertex weight vector is ~20 MB).
MAX_BODY_BYTES = 64 * 1024 * 1024

#: Most headers accepted per request (memory guard, like the body cap).
MAX_HEADER_LINES = 100

#: Bodies past this parse on a worker thread instead of the event loop —
#: a multi-megabyte weight vector must not stall /healthz while decoding.
OFFLOAD_PARSE_BYTES = 1 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}

#: Default machine-readable error code per status; ``_HTTPError`` and the
#: raw pre-dispatch refusals fall back to these when no finer code fits.
#: The full code table (including the ``ReproError``-derived codes) lives
#: in docs/API.md.
_STATUS_CODES = {
    400: "bad_request",
    404: "not_found",
    405: "method_not_allowed",
    409: "conflict",
    413: "payload_too_large",
    431: "header_fields_too_large",
    500: "internal",
    501: "not_implemented",
    503: "queue_full",
}

#: API version tag stamped into every v1 response body.
API_VERSION = "v1"


def _error_body(code: str, detail: str) -> dict:
    """The uniform error envelope every endpoint (v1 and legacy) serves."""
    return {"error": {"code": code, "detail": detail}}


def _repro_error_code(exc: ReproError) -> str:
    """``SpecError`` → ``spec_error`` etc. — snake_case of the class name."""
    name = type(exc).__name__
    out = [name[0].lower()]
    for char in name[1:]:
        if char.isupper():
            out.append("_")
        out.append(char.lower())
    return "".join(out)


def result_payload(query: InfluentialQuery, result: ResultSet) -> dict:
    """The JSON body served for one answered query (legacy flat shape).

    Matches the records ``repro batch --out`` writes, so HTTP answers and
    batch-CLI answers diff cleanly; the test suite compares these payloads
    against ones built from cold :func:`~repro.influential.api
    .top_r_communities` runs to enforce byte-identical serving.
    """
    return {
        "query": query.describe(),
        "count": len(result),
        "values": result.values(),
        "communities": [sorted(c.vertices) for c in result],
    }


def query_envelope(query: InfluentialQuery) -> dict:
    """The normalized v1 wire form of a query, echoed in v1 responses.

    This is the canonical shape actually answered: the aggregator is its
    registry name (``sum-surplus(alpha=2)`` and ``sum-surplus(2)`` echo
    identically), constraints are the canonical predicate wire form, and
    solver tuning sits under ``options`` exactly as a v1 request nests it
    — so the echo round-trips as a valid ``POST /v1/query`` body.
    """
    constraints = None
    if query.constraints is not None:
        constraints = {"labels": query.constraints.to_json()}
    return {
        "k": query.k,
        "r": query.r,
        "f": query.aggregator.name,
        "s": query.s,
        "cohesion": query.cohesion,
        "non_overlapping": query.non_overlapping,
        "constraints": constraints,
        "options": {
            "method": query.method,
            "eps": float(query.eps),
            "backend": query.backend,
            "greedy": query.greedy,
            "seed_order": query.seed_order,
            "rng_seed": query.rng_seed,
        },
    }


def result_payload_v1(query: InfluentialQuery, result: ResultSet) -> dict:
    """The JSON body ``POST /v1/query`` serves: versioned, echoing the
    normalized query, with the same values/communities the legacy shape
    carries (so v1 and legacy answers stay value-identical)."""
    return {
        "api_version": API_VERSION,
        "query": query_envelope(query),
        "count": len(result),
        "values": result.values(),
        "communities": [sorted(c.vertices) for c in result],
    }


class _HTTPError(Exception):
    """Internal: carry an HTTP status + JSON error body to the writer."""

    def __init__(
        self,
        status: int,
        message: str,
        headers: "dict[str, str] | None" = None,
        code: "str | None" = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.headers = headers or {}
        self.code = code or _STATUS_CODES.get(status, "error")


class ServingApp:
    """The HTTP application: routing, single-flight, executor dispatch.

    Wraps one :class:`~repro.serving.service.QueryService`; see the module
    docstring for the endpoint table and concurrency model.  Use
    :func:`serve` for a blocking server, :func:`run_server_in_thread` to
    host one inside tests/benchmarks, or :meth:`start` from an already
    running event loop.
    """

    def __init__(
        self,
        service: QueryService,
        workers: int = 0,
        max_body_bytes: int = MAX_BODY_BYTES,
        max_queue_depth: int = 0,
        zero_copy: bool = True,
    ) -> None:
        if workers < 0:
            raise SpecError(f"workers must be >= 0, got {workers}")
        if max_queue_depth < 0:
            raise SpecError(
                f"max_queue_depth must be >= 0, got {max_queue_depth}"
            )
        self.service = service
        self.workers = workers
        # The default caps /update-weights around ~3M vertices of JSON;
        # operators serving larger graphs raise it here (or via the CLI's
        # --max-body-mb).
        self.max_body_bytes = max_body_bytes
        # Load shedding: with a bound, a fresh cache miss that would make
        # the (bound+1)-th concurrent solve is refused with 503 +
        # Retry-After instead of queueing behind every solve before it —
        # exactly the convoy that made single-process p99 14x p50.  0
        # keeps the historical unbounded behaviour.
        self.max_queue_depth = max_queue_depth
        # Whether the persistent worker pool shares arrays through a
        # SharedSubstrate (descriptor initargs) instead of pickling them.
        self.zero_copy = zero_copy
        self._inflight: dict[tuple, asyncio.Task] = {}
        self._epoch = 0
        # Cleared while a weight update is in progress: new solves (and
        # lazy process-pool creation, whose payload embeds the weights)
        # wait for it, so nothing computes against half-updated state.
        self._ready = asyncio.Event()
        self._ready.set()
        self._update_lock = asyncio.Lock()
        self._solver_thread: ThreadPoolExecutor | None = None
        self._process_pool: ProcessPoolExecutor | None = None
        self._pool_substrate = None
        self._server: asyncio.AbstractServer | None = None
        # Set by the fleet layer (repro/serving/fleet.py) when this app is
        # one member of a fleet: mutations then go through the replication
        # log, and healthz/stats report catch-up lag + member identity.
        self.replicator = None
        self.member_index: "int | None" = None
        # Graceful-drain state: while draining, responses close their
        # connections, new connections are refused (the listening socket
        # is already closed), and drain() waits for active requests.
        self._draining = False
        self._active_requests = 0
        self._connections: "set[asyncio.Task]" = set()
        # EWMA of recent solve latency; sizes the Retry-After hint.
        self._solve_avg_seconds = 0.05
        self.requests = 0
        self.coalesced = 0
        self.http_errors = 0
        self.shed = 0
        self._routes: dict[tuple[str, str], Callable[[object], Awaitable[dict]]] = {
            ("GET", "/"): self._get_index,
            ("GET", "/v1/healthz"): self._get_healthz,
            ("GET", "/v1/stats"): self._get_stats,
            ("POST", "/v1/query"): self._post_query_v1,
            ("POST", "/v1/batch"): self._post_batch_v1,
            ("POST", "/v1/update-weights"): self._post_update_weights,
            ("POST", "/v1/update-edges"): self._post_update_edges,
            ("POST", "/v1/invalidate"): self._post_invalidate,
            ("POST", "/v1/analytics/leaders"): self._post_analytics_leaders,
            ("POST", "/v1/analytics/reach"): self._post_analytics_reach,
            ("POST", "/v1/analytics/summary"): self._post_analytics_summary,
            # Legacy flat aliases: same service, historical shapes, served
            # with a Deprecation header (see _dispatch).
            ("GET", "/healthz"): self._get_healthz,
            ("GET", "/stats"): self._get_stats,
            ("POST", "/query"): self._post_query,
            ("POST", "/batch"): self._post_batch,
            ("POST", "/update-weights"): self._post_update_weights,
            ("POST", "/update-edges"): self._post_update_edges,
            ("POST", "/invalidate"): self._post_invalidate,
        }
        # path → v1 successor, for the Deprecation/Link headers and the
        # banner's migration table.
        self._deprecated_paths: dict[str, str] = {
            "/healthz": "/v1/healthz",
            "/stats": "/v1/stats",
            "/query": "/v1/query",
            "/batch": "/v1/batch",
            "/update-weights": "/v1/update-weights",
            "/update-edges": "/v1/update-edges",
            "/invalidate": "/v1/invalidate",
        }

    # ------------------------------------------------------------------
    # Executors
    # ------------------------------------------------------------------
    def _ensure_executors(self) -> None:
        if self.workers == 0:
            if self._solver_thread is None:
                self._solver_thread = ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix="repro-solver"
                )
        elif self._process_pool is None:
            import multiprocessing

            context = None
            if "fork" in multiprocessing.get_all_start_methods():
                context = multiprocessing.get_context("fork")
            if self.zero_copy:
                # One shm copy of the arrays for *all* workers; each
                # worker attaches read-only views and materialises only
                # the neighbour sets it touches.  The segments live until
                # this pool retires (update/teardown) — workers spawn
                # lazily, so the substrate must outlive the pool itself.
                from repro.serving.substrate import SharedSubstrate

                self._pool_substrate = SharedSubstrate.publish(self.service)
            # `workers` is the operator's request; the pool itself is
            # capped at the usable core count — solver workers are
            # CPU-bound, so overcommitting cores only buys fork overhead
            # and memory pressure (same sizing rule as submit_many's
            # shard pool).
            self._process_pool = ProcessPoolExecutor(
                max_workers=cap_workers(self.workers),
                mp_context=context,
                initializer=_worker_init,
                initargs=self.service.worker_initargs(self._pool_substrate),
            )

    def shutdown_executors(self) -> None:
        """Stop the solver thread / worker processes (idempotent)."""
        if self._solver_thread is not None:
            self._solver_thread.shutdown(wait=True)
            self._solver_thread = None
        if self._process_pool is not None:
            self._process_pool.shutdown(wait=True)
            self._process_pool = None
        if self._pool_substrate is not None:
            self._pool_substrate.unlink()
            self._pool_substrate = None

    async def _retire_process_pool(self) -> None:
        """Shut the worker pool (and its substrate) down, off-loop.

        Mutations call this: the retired pool's workers hold the *old*
        arrays.  The substrate is unlinked only after the pool has fully
        drained — workers spawn lazily, and a late-spawning worker must
        never find its segments already gone.
        """
        old_pool, self._process_pool = self._process_pool, None
        old_substrate, self._pool_substrate = self._pool_substrate, None
        if old_pool is not None:
            # Drain off-loop: a slow in-flight solve must not freeze
            # /healthz while the old workers wind down.
            await asyncio.get_running_loop().run_in_executor(
                None, old_pool.shutdown, True
            )
        if old_substrate is not None:
            old_substrate.unlink()

    async def _run_off_loop(self, fn, *args):
        """Run ``fn`` on the solver thread (or a transient one)."""
        loop = asyncio.get_running_loop()
        if self.workers == 0:
            self._ensure_executors()
            return await loop.run_in_executor(self._solver_thread, fn, *args)
        # Process-pool mode: the parent's pool/graph are never touched by
        # solves (those live in the workers), so maintenance runs on a
        # transient thread.  Deliberately no _ensure_executors here — the
        # process pool must only come up through _compute, after the
        # ready gate, so its payload never embeds mid-update weights.
        return await loop.run_in_executor(None, fn, *args)

    # ------------------------------------------------------------------
    # Single-flight answering
    # ------------------------------------------------------------------
    async def answer(self, query: InfluentialQuery) -> ResultSet:
        """Answer one validated query through cache + single-flight.

        The computation runs as its **own task**, shared by every request
        that coalesces onto the key and shielded from their cancellation:
        a batch member failing (or a client going away) never cancels a
        solve that other requests are waiting on.
        """
        cached = self.service.peek(query)
        if cached is not None:
            self.service.queries_served += 1
            return cached
        key = query.cache_key()
        task = self._inflight.get(key)
        if task is not None:
            self.coalesced += 1
        else:
            if 0 < self.max_queue_depth <= len(self._inflight):
                # Shed instead of queueing: with every solve serialized
                # behind one solver thread, admitting the (bound+1)-th
                # distinct miss guarantees it waits for the whole convoy
                # ahead — the exact tail the 503 pushes back on.  The
                # Retry-After hint sizes the convoy by recent solve
                # latency.  Coalesced waiters and cache hits above are
                # never shed; they add no solver work.
                self.shed += 1
                retry_after = max(
                    1,
                    math.ceil(
                        self._solve_avg_seconds * (len(self._inflight) + 1)
                    ),
                )
                raise _HTTPError(
                    503,
                    f"solve queue is full ({len(self._inflight)} in flight, "
                    f"bound {self.max_queue_depth}); retry later",
                    headers={"Retry-After": str(retry_after)},
                )
            task = asyncio.get_running_loop().create_task(
                self._compute_and_store(query)
            )
            self._inflight[key] = task
            task.add_done_callback(
                lambda done, key=key: self._retire(key, done)
            )
        result = await asyncio.shield(task)
        # Counted per answered waiter, *after* the shared solve settles:
        # a rejected query (the solver raise reaches every waiter) must
        # not inflate queries_served.  Loop-thread only, like peek above.
        self.service.queries_served += 1
        return result

    def _retire(self, key: tuple, task: asyncio.Task) -> None:
        if self._inflight.get(key) is task:
            del self._inflight[key]
        if not task.cancelled():
            task.exception()  # consume: waiters may all have gone away

    async def _compute_and_store(self, query: InfluentialQuery) -> ResultSet:
        # Wait out any in-progress weight update, then snapshot the epoch:
        # a result computed against these weights is only cached while no
        # newer update has invalidated them.  No await sits between the
        # gate, the epoch read and the executor dispatch, so the pool a
        # solve lands on always matches the epoch it captured.
        await self._ready.wait()
        epoch = self._epoch
        started = time.perf_counter()
        result = await self._compute(query)
        elapsed = time.perf_counter() - started
        # EWMA with a healthy share of the newest observation: the queue
        # bound's Retry-After must track regime changes (a burst of slow
        # truss solves, say) within a handful of requests.
        self._solve_avg_seconds += 0.2 * (elapsed - self._solve_avg_seconds)
        if self._epoch == epoch:
            self.service.store(query, result)
        return result

    async def _compute(self, query: InfluentialQuery) -> ResultSet:
        self._ensure_executors()
        loop = asyncio.get_running_loop()
        if self._process_pool is not None:
            results, solved = await loop.run_in_executor(
                self._process_pool, _worker_solve_counted, [query]
            )
            self.service.solver_calls += solved
            return results[0]
        # The solver thread runs the cache-free half of submit(): the
        # result cache stays loop-owned, the engine pool solver-owned.
        return await loop.run_in_executor(
            self._solver_thread, self.service._solve, query
        )

    # ------------------------------------------------------------------
    # Endpoint handlers (body → JSON-ready dict, or _HTTPError)
    # ------------------------------------------------------------------
    async def _get_index(self, body: object) -> dict:
        graph = self.service.graph
        return {
            "service": "repro-topr-influential",
            "version": __version__,
            "api_version": API_VERSION,
            "graph": {"n": graph.n, "m": graph.m},
            "kmax": self.service.kmax,
            "workers": self.workers,
            "endpoints": sorted(f"{m} {p}" for m, p in self._routes),
            "deprecated": {
                old: new for old, new in sorted(self._deprecated_paths.items())
            },
        }

    def _replication_status(self) -> "dict | None":
        if self.replicator is None:
            return None
        return self.replicator.status()

    async def _get_healthz(self, body: object) -> dict:
        graph = self.service.graph
        replication = self._replication_status()
        payload = {
            "status": "draining" if self._draining else "ok",
            "graph": {"n": graph.n, "m": graph.m},
            "kmax": self.service.kmax,
            "epoch": self._epoch,
            "rss_bytes": rss_bytes(),
            # Entries behind the replication-log head (null when this
            # process serves without a log): the fleet bench and the
            # kill-a-replica test watch this reach 0 during catch-up.
            "replication_lag": (
                replication["lag"] if replication is not None else None
            ),
        }
        if self.member_index is not None:
            payload["member"] = self.member_index
        if replication is not None:
            payload["replication"] = replication
        return payload

    async def _get_stats(self, body: object) -> dict:
        # service.stats() walks the engine pool, which the solver thread
        # may be mutating — read it from that thread so the two serialize.
        stats = await self._run_off_loop(self.service.stats)
        replication = self._replication_status()
        stats["http"] = {
            "requests": self.requests,
            "coalesced": self.coalesced,
            "errors": self.http_errors,
            "shed": self.shed,
            "epoch": self._epoch,
            "inflight": len(self._inflight),
            "max_queue_depth": self.max_queue_depth,
            "workers": self.workers,
            "draining": self._draining,
        }
        stats["epoch"] = self._epoch
        stats["rss_bytes"] = rss_bytes()
        stats["replication_lag"] = (
            replication["lag"] if replication is not None else None
        )
        if self.member_index is not None:
            stats["member"] = self.member_index
        if replication is not None:
            stats["replication"] = replication
        return stats

    def _parse_query(self, entry: object) -> InfluentialQuery:
        if not isinstance(entry, Mapping):
            raise _HTTPError(
                400,
                f"query must be a JSON object, got {type(entry).__name__}",
            )
        return InfluentialQuery.create(entry)

    async def _post_query(self, body: object) -> dict:
        query = self._parse_query(body)
        result = await self.answer(query)
        return result_payload(query, result)

    # -- v1 envelope ----------------------------------------------------
    #: Top-level fields a v1 query envelope may carry; solver tuning must
    #: sit under ``options``.
    _V1_QUERY_FIELDS = frozenset(
        {"k", "r", "f", "s", "cohesion", "non_overlapping", "constraints",
         "options"}
    )
    #: Tuning knobs accepted under ``options``.
    _V1_OPTION_FIELDS = frozenset(
        {"method", "eps", "backend", "greedy", "seed_order", "rng_seed"}
    )

    def _parse_v1_query(self, entry: object) -> InfluentialQuery:
        """Validate one v1 query envelope into an ``InfluentialQuery``.

        The flat legacy spelling of a tuning knob at the top level is the
        expected migration mistake, so its rejection names the fix
        ("move it under 'options'") instead of a bare unknown-field error.
        """
        if not isinstance(entry, Mapping):
            raise _HTTPError(
                400,
                f"v1 query must be a JSON object, got {type(entry).__name__}",
            )
        unknown = set(map(str, entry)) - self._V1_QUERY_FIELDS
        if unknown:
            misplaced = sorted(unknown & self._V1_OPTION_FIELDS)
            if misplaced:
                raise _HTTPError(
                    400,
                    f"solver option(s) {misplaced} must be nested under "
                    f"'options' in a v1 query (the flat shape is the "
                    f"deprecated legacy /query contract)",
                )
            raise _HTTPError(
                400,
                f"unknown v1 query field(s) {sorted(unknown)}; expected "
                f"among {sorted(self._V1_QUERY_FIELDS)}",
            )
        options = entry.get("options")
        if options is None:
            options = {}
        if not isinstance(options, Mapping):
            raise _HTTPError(
                400,
                f"'options' must be a JSON object of solver tuning knobs, "
                f"got {type(options).__name__}",
            )
        unknown_options = set(map(str, options)) - self._V1_OPTION_FIELDS
        if unknown_options:
            raise _HTTPError(
                400,
                f"unknown option field(s) {sorted(unknown_options)}; "
                f"expected among {sorted(self._V1_OPTION_FIELDS)}",
            )
        merged = {
            name: value for name, value in entry.items() if name != "options"
        }
        merged.update(options)
        return InfluentialQuery.create(merged)

    async def _post_query_v1(self, body: object) -> dict:
        query = self._parse_v1_query(body)
        result = await self.answer(query)
        return result_payload_v1(query, result)

    async def _post_batch_v1(self, body: object) -> dict:
        if isinstance(body, Mapping) and "queries" in body:
            body = body["queries"]
        if not isinstance(body, list):
            raise _HTTPError(
                400,
                'v1 batch body must be {"queries": [...]} '
                "(or a bare JSON array of v1 query envelopes)",
            )
        queries = [self._parse_v1_query(entry) for entry in body]
        start = time.perf_counter()
        results = await asyncio.gather(
            *(self.answer(q) for q in queries), return_exceptions=True
        )
        for outcome in results:
            if isinstance(outcome, BaseException):
                raise outcome
        return {
            "api_version": API_VERSION,
            "count": len(results),
            "elapsed_seconds": round(time.perf_counter() - start, 6),
            "results": [
                result_payload_v1(query, result)
                for query, result in zip(queries, results)
            ],
        }

    # -- analytics ------------------------------------------------------
    def _parse_analytics_body(
        self, body: object, extras: frozenset
    ) -> tuple[InfluentialQuery, Mapping]:
        """Split an analytics body into (validated query, extra knobs)."""
        if not isinstance(body, Mapping) or "query" not in body:
            raise _HTTPError(
                400,
                'analytics body must be {"query": {...v1 query...}, ...}',
            )
        unknown = set(map(str, body)) - ({"query"} | set(extras))
        if unknown:
            raise _HTTPError(
                400,
                f"unknown analytics field(s) {sorted(unknown)}; expected "
                f"among {sorted({'query'} | set(extras))}",
            )
        return self._parse_v1_query(body["query"]), body

    @staticmethod
    def _analytics_int(body: Mapping, name: str, default: int, low: int) -> int:
        value = body.get(name, default)
        if isinstance(value, bool) or not isinstance(value, int) or value < low:
            raise _HTTPError(
                400, f'"{name}" must be an integer >= {low}, got {value!r}'
            )
        return value

    async def _post_analytics_leaders(self, body: object) -> dict:
        from repro.analytics import community_leaders

        query, extras = self._parse_analytics_body(body, frozenset({"deputies"}))
        deputies = self._analytics_int(extras, "deputies", 1, 0)
        result = await self.answer(query)
        # The roster walk is pure read-only post-processing, but on a big
        # graph it is still O(total community size) — keep it off the loop.
        leaders = await self._run_off_loop(
            community_leaders, self.service.graph, result, deputies
        )
        return {
            "api_version": API_VERSION,
            "query": query_envelope(query),
            "count": len(result),
            "leaders": leaders,
        }

    async def _post_analytics_reach(self, body: object) -> dict:
        from repro.analytics import khop_reach

        query, extras = self._parse_analytics_body(body, frozenset({"hops"}))
        hops = self._analytics_int(extras, "hops", 2, 1)
        result = await self.answer(query)
        reach = await self._run_off_loop(
            khop_reach, self.service.graph, result, hops
        )
        return {
            "api_version": API_VERSION,
            "query": query_envelope(query),
            "count": len(result),
            "hops": hops,
            "reach": reach,
        }

    async def _post_analytics_summary(self, body: object) -> dict:
        from repro.analytics import community_summary

        query, __ = self._parse_analytics_body(body, frozenset())
        result = await self.answer(query)
        summary = await self._run_off_loop(
            community_summary, self.service.graph, result
        )
        return {
            "api_version": API_VERSION,
            "query": query_envelope(query),
            "count": len(result),
            "summary": summary,
        }

    async def _post_batch(self, body: object) -> dict:
        if isinstance(body, Mapping) and "queries" in body:
            body = body["queries"]
        if not isinstance(body, list):
            raise _HTTPError(
                400,
                "batch body must be a JSON array of query objects "
                '(or {"queries": [...]})',
            )
        queries = [self._parse_query(entry) for entry in body]
        start = time.perf_counter()
        # return_exceptions: one bad member (e.g. a k the solver rejects)
        # must not cancel its siblings — they may be coalesced with other
        # connections' in-flight requests.  The batch still fails as a
        # whole, after every member has settled.
        results = await asyncio.gather(
            *(self.answer(q) for q in queries), return_exceptions=True
        )
        for outcome in results:
            if isinstance(outcome, BaseException):
                raise outcome
        return {
            "count": len(results),
            "elapsed_seconds": round(time.perf_counter() - start, 6),
            "results": [
                result_payload(query, result)
                for query, result in zip(queries, results)
            ],
        }

    async def _post_update_weights(self, body: object) -> dict:
        if not isinstance(body, Mapping) or "weights" not in body:
            raise _HTTPError(400, 'body must be {"weights": [...]}')
        weights = body["weights"]
        n = self.service.graph.n
        if not isinstance(weights, list) or len(weights) != n:
            raise _HTTPError(
                400, f"weights must be a JSON array of {n} numbers"
            )
        def _validated() -> np.ndarray:
            # Full validation *before* any teardown: a bad body must 400
            # without costing the worker pool, the in-flight solves, or
            # the epoch.  with_weights builds a validated throwaway twin
            # (finite, non-negative, right shape) and mutates nothing.
            array = np.asarray(weights, dtype=np.float64)
            self.service.graph.with_weights(array)
            return array

        try:
            # Off-loop: coercing a multi-million-element list is loop-
            # stalling work of its own (reads only, safe off-thread).
            candidate = await asyncio.get_running_loop().run_in_executor(
                None, _validated
            )
        except (TypeError, ValueError) as exc:
            raise _HTTPError(
                400, f"weights must be an array of numbers: {exc}"
            )
        if self.replicator is not None:
            # Fleet mode: the mutation becomes a replication-log record
            # first, then applies here by replaying that record — the
            # same path every sibling and follower takes, so all replicas
            # absorb the identical sequence.
            return await self.replicator.publish(
                "update-weights", {"weights": weights}
            )
        async with self._update_lock:
            await self._apply_weights_locked(candidate)
        return {
            "status": "reweighted",
            "n": n,
            "epoch": self._epoch,
            "invalidations": self.service.invalidations,
        }

    async def _apply_weights_locked(self, candidate: np.ndarray) -> None:
        """The mutation half of a weight update; caller holds _update_lock.

        Gates new solves (and lazy pool creation) for the duration,
        admits no cache writes from the old weighting, and retires the
        old worker pool: solves already in flight drain against the old
        weights and answer their waiters, but their pre-bump epoch keeps
        them out of the invalidated cache.  The next solve rebuilds the
        pool from the updated substrate (peel-free — it carries the
        topology-derived decompositions unchanged).
        """
        self._ready.clear()
        try:
            self._epoch += 1
            self._inflight.clear()
            await self._retire_process_pool()
            await self._run_off_loop(
                self.service._reweight_shared_state, candidate
            )
            self.service._drop_results()
        finally:
            self._ready.set()

    async def _post_update_edges(self, body: object) -> dict:
        if not isinstance(body, Mapping) or not (
            "insert" in body or "delete" in body
        ):
            raise _HTTPError(
                400,
                'body must be {"insert": [[u, v], ...], "delete": [[u, v], ...]}'
                " with at least one of the two lists",
            )
        unknown = set(body) - {"insert", "delete"}
        if unknown:
            raise _HTTPError(
                400, f"unknown edge-update field(s) {sorted(unknown)}"
            )
        for field in ("insert", "delete"):
            if field in body and not isinstance(body[field], list):
                raise _HTTPError(
                    400,
                    f'"{field}" must be a JSON array of [u, v] pairs, '
                    f"got {type(body[field]).__name__}",
                )
        from repro.graphs.delta import GraphDelta

        if self.replicator is not None:
            # Fleet mode: validate-then-apply happens inside publish(),
            # against the graph as of the log head (the replicator syncs
            # pending foreign records first, so the seq order *is* the
            # apply order on every replica).
            return await self.replicator.publish(
                "update-edges",
                {
                    "insert": list(body.get("insert", [])),
                    "delete": list(body.get("delete", [])),
                },
            )
        async with self._update_lock:
            # Full validation against the *current* graph before any
            # teardown (the lock serializes updates, so the graph cannot
            # shift underneath): a malformed batch must 400 without
            # costing the epoch, the worker pool, or a single cache entry.
            try:
                inserts, deletes = GraphDelta.validate(
                    self.service.graph,
                    body.get("insert", ()),
                    body.get("delete", ()),
                )
            except ReproError as exc:
                raise _HTTPError(400, str(exc))
            report = await self._apply_edges_locked(inserts, deletes)
        return {
            "status": "updated",
            "epoch": self._epoch,
            "kmax": self.service.kmax,
            **report.summary(),
        }

    async def _apply_edges_locked(self, inserts, deletes):
        """The mutation half of an edge update; caller holds _update_lock.

        Same discipline as a weight update: bump the epoch so in-flight
        solves (admitted against the old topology) answer their waiters
        but never repopulate the cache, and retire the worker pool — its
        substrate embeds the old CSR arrays and decompositions.
        """
        self._ready.clear()
        try:
            self._epoch += 1
            self._inflight.clear()
            await self._retire_process_pool()
            report = await self._run_off_loop(
                self.service._apply_edges_shared_state, inserts, deletes
            )
            self.service._drop_results_for_update(report)
        finally:
            self._ready.set()
        return report

    async def _post_invalidate(self, body: object) -> dict:
        body = body if isinstance(body, Mapping) else {}
        k = body.get("k")
        if k is not None and (isinstance(k, bool) or not isinstance(k, int)):
            raise _HTTPError(400, f'"k" must be an integer, got {k!r}')
        if k is None:
            # Full drop: also forget in-flight solves — nothing computed
            # before this point may land in the cache afterwards.
            self._epoch += 1
            self._inflight.clear()
        # Per-k drops touch only settled entries: an in-flight solve at
        # this k was admitted before the invalidation and its weights are
        # unchanged, so letting it finish (and cache) stays correct —
        # and unrelated ks keep their single-flight entries.
        dropped = self.service.invalidate(k)
        return {"status": "invalidated", "k": k, "dropped": dropped}

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # Registered so drain() can find (and cancel) handlers idling
        # between keep-alive requests; active requests are counted
        # separately and always allowed to finish.
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                keep_alive = await self._handle_one(reader, writer)
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
            asyncio.LimitOverrunError,
            # readline() reports an over-limit request/header line as a
            # plain ValueError; treat it like any other unspeakable
            # request — drop the connection.
            ValueError,
        ):
            pass  # client went away (or sent garbage) mid-request
        except asyncio.CancelledError:
            # Loop teardown cancels handlers idling between keep-alive
            # requests; ending this task *cancelled* makes 3.11's streams
            # done-callback re-raise and log it, so absorb and just close.
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            # CancelledError too: teardown may re-deliver the cancellation
            # at the wait_closed() await inside this finally.
            with contextlib.suppress(Exception, asyncio.CancelledError):
                writer.close()
                await writer.wait_closed()

    async def _handle_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        request_line = await reader.readline()
        if not request_line.strip():
            return False
        try:
            method, target, _version = (
                request_line.decode("latin-1").strip().split(" ", 2)
            )
        except ValueError:
            await self._respond(
                writer,
                400,
                _error_body("malformed_request", "malformed request line"),
                False,
            )
            return False
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            if len(headers) >= MAX_HEADER_LINES:
                await self._respond(
                    writer,
                    431,
                    _error_body(
                        "header_fields_too_large", "too many header fields"
                    ),
                    False,
                )
                return False
            name, _sep, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        keep_alive = headers.get("connection", "keep-alive").lower() != "close"

        self.requests += 1
        path = target.split("?", 1)[0]
        if "transfer-encoding" in headers:
            # Chunked (or any transfer-coded) bodies are not implemented;
            # answering as if the body were empty would desync keep-alive
            # framing, so refuse and close.
            await self._respond(
                writer,
                501,
                _error_body(
                    "not_implemented",
                    "transfer-encoding is not supported; "
                    "send a Content-Length body",
                ),
                False,
            )
            return False
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            length = -1
        if length < 0 or length > self.max_body_bytes:
            oversized = length > self.max_body_bytes
            await self._respond(
                writer,
                413 if oversized else 400,
                _error_body(
                    "payload_too_large" if oversized else "bad_request",
                    "unacceptable content-length "
                    f"{headers.get('content-length')!r}",
                ),
                False,
            )
            return False
        raw = await reader.readexactly(length) if length else b""

        if self._draining:
            # The response for an already-read request still goes out, but
            # the connection closes after it — drain() must converge.
            keep_alive = False
        self._active_requests += 1
        try:
            status, payload, extra = await self._dispatch(
                method.upper(), path, raw
            )
            if status != 200:
                self.http_errors += 1
            if self._draining:
                keep_alive = False
            await self._respond(writer, status, payload, keep_alive, extra)
        finally:
            self._active_requests -= 1
        return keep_alive

    def _deprecation_headers(self, path: str) -> dict:
        """Headers advertising the v1 successor of a legacy route."""
        successor = self._deprecated_paths.get(path)
        if successor is None:
            return {}
        return {
            "Deprecation": "true",
            "Link": f'<{successor}>; rel="successor-version"',
        }

    async def _dispatch(
        self, method: str, path: str, raw: bytes
    ) -> tuple[int, dict, dict]:
        # Legacy aliases answer with their historical shapes but always
        # carry the Deprecation/Link headers — on errors too, so a client
        # probing with a bad body still learns about the successor.
        deprecation = self._deprecation_headers(path)
        handler = self._routes.get((method, path))
        if handler is None:
            if any(p == path for _m, p in self._routes):
                return (
                    405,
                    _error_body(
                        "method_not_allowed", f"{method} not allowed on {path}"
                    ),
                    deprecation,
                )
            return 404, {
                **_error_body("not_found", f"no route {path}"),
                "endpoints": sorted(f"{m} {p}" for m, p in self._routes),
            }, {}
        body: object = None
        if raw:
            try:
                if len(raw) > OFFLOAD_PARSE_BYTES:
                    # Decoding tens of MB of JSON takes ~seconds; keep the
                    # loop answering health checks while it happens.
                    body = await asyncio.get_running_loop().run_in_executor(
                        None, json.loads, raw
                    )
                else:
                    body = json.loads(raw)
            except json.JSONDecodeError as exc:
                return (
                    400,
                    _error_body(
                        "invalid_json", f"body is not valid JSON: {exc}"
                    ),
                    deprecation,
                )
        try:
            payload = await handler(body)
            if path.startswith("/v1/") and "api_version" not in payload:
                # Shared handlers (healthz, mutations) serve both route
                # generations; the v1 spelling stamps the version here.
                payload = {"api_version": API_VERSION, **payload}
            return 200, payload, deprecation
        except _HTTPError as exc:
            return (
                exc.status,
                _error_body(exc.code, str(exc)),
                {**exc.headers, **deprecation},
            )
        except ReproError as exc:
            # Spec/solver rejections: the client's request is at fault and
            # carries the same message a cold library call would raise,
            # with the exception class as the machine-readable code.
            return 400, _error_body(_repro_error_code(exc), str(exc)), deprecation
        except Exception as exc:  # noqa: BLE001 — last-resort 500
            return (
                500,
                _error_body("internal", f"{type(exc).__name__}: {exc}"),
                deprecation,
            )

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        keep_alive: bool,
        extra_headers: "Mapping[str, str] | None" = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        extra = "".join(
            f"{name}: {value}\r\n"
            for name, value in (extra_headers or {}).items()
        )
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"{extra}"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        *,
        reuse_port: bool = False,
        sock: "object | None" = None,
    ) -> asyncio.AbstractServer:
        """Bind and start serving; returns the asyncio server object.

        ``reuse_port`` sets SO_REUSEPORT so several fleet members can bind
        the same address and let the kernel spread connections; ``sock``
        serves on an already-bound socket instead (proxy-mode members
        inherit theirs from the fleet parent).
        """
        self._ensure_executors()
        if sock is not None:
            self._server = await asyncio.start_server(
                self._handle_connection, sock=sock
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host, port, reuse_port=reuse_port
            )
        return self._server

    async def drain(self, timeout: float = 10.0) -> None:
        """Stop accepting, finish in-flight requests, close keep-alives.

        After this returns no handler task is running: active requests got
        their responses (with ``Connection: close``) up to ``timeout``
        seconds, then idle keep-alive connections — parked in
        ``readline()`` waiting for a request that will never come — are
        cancelled outright.  ``Server.wait_closed()`` is deliberately not
        used: on 3.12+ it waits for *all* handlers, which deadlocks on an
        idle keep-alive.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
        deadline = time.monotonic() + max(0.0, timeout)
        while self._active_requests > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        leftovers = [t for t in self._connections if not t.done()]
        for task in leftovers:
            task.cancel()
        if leftovers:
            await asyncio.gather(*leftovers, return_exceptions=True)

    async def run(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        on_ready: "Callable[[asyncio.AbstractServer], None] | None" = None,
        *,
        reuse_port: bool = False,
        sock: "object | None" = None,
        handle_signals: bool = False,
        drain_timeout: float = 10.0,
    ) -> None:
        """Start and serve until cancelled (or signalled, when asked).

        ``on_ready`` fires once the socket is bound (the CLI prints its
        "listening on ..." banner there — never before a successful bind).
        With ``handle_signals``, SIGTERM/SIGINT trigger a graceful
        :meth:`drain` instead of tearing the loop down mid-response.
        """
        server = await self.start(
            host, port, reuse_port=reuse_port, sock=sock
        )
        if on_ready is not None:
            on_ready(server)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        installed: list[int] = []
        if handle_signals:
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, stop.set)
                    installed.append(signum)
                except (NotImplementedError, ValueError, RuntimeError):
                    pass  # non-main thread or unsupported platform
        try:
            async with server:
                if installed:
                    serve_task = asyncio.ensure_future(
                        server.serve_forever()
                    )
                    stop_task = asyncio.ensure_future(stop.wait())
                    await asyncio.wait(
                        {serve_task, stop_task},
                        return_when=asyncio.FIRST_COMPLETED,
                    )
                    stop_task.cancel()
                    serve_task.cancel()
                    await asyncio.gather(
                        serve_task, stop_task, return_exceptions=True
                    )
                    await self.drain(drain_timeout)
                else:
                    await server.serve_forever()
        finally:
            for signum in installed:
                with contextlib.suppress(Exception):
                    loop.remove_signal_handler(signum)
            self.shutdown_executors()


def serve(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 8080,
    workers: int = 0,
    max_body_bytes: int = MAX_BODY_BYTES,
    on_ready: "Callable[[asyncio.AbstractServer], None] | None" = None,
) -> None:
    """Blocking entry point: serve ``service`` over HTTP until interrupted.

    This is what ``repro serve`` calls after standing up the service (from
    a dataset, an edge list, or — the fast path — a snapshot directory via
    :func:`repro.serving.store.load_service`).  A failed bind raises
    ``OSError`` before ``on_ready`` runs.
    """
    app = ServingApp(service, workers=workers, max_body_bytes=max_body_bytes)
    try:
        asyncio.run(app.run(host=host, port=port, on_ready=on_ready))
    except KeyboardInterrupt:
        pass
    finally:
        app.shutdown_executors()


@contextlib.contextmanager
def run_server_in_thread(
    service_or_app: "QueryService | ServingApp",
    host: str = "127.0.0.1",
    port: int = 0,
):
    """Host a server on a background thread; yields its base URL.

    ``port=0`` binds an ephemeral port (the yielded URL carries the real
    one).  Used by the HTTP tests, ``benchmarks/bench_http_serving.py``
    and ``examples/serve_and_query.py`` to exercise true HTTP traffic
    without a subprocess.
    """
    app = (
        service_or_app
        if isinstance(service_or_app, ServingApp)
        else ServingApp(service_or_app)
    )
    started = threading.Event()
    state: dict[str, object] = {}

    def _runner() -> None:
        async def _main() -> None:
            server = await app.start(host, port)
            state["port"] = server.sockets[0].getsockname()[1]
            state["loop"] = asyncio.get_running_loop()
            stop = asyncio.Event()
            state["stop"] = stop
            started.set()
            await stop.wait()
            server.close()
            await server.wait_closed()

        try:
            asyncio.run(_main())
        except Exception as exc:  # pragma: no cover — surfaced via timeout
            state["error"] = exc
            started.set()

    thread = threading.Thread(
        target=_runner, name="repro-http", daemon=True
    )
    thread.start()
    if not started.wait(timeout=60):
        raise RuntimeError("HTTP server thread failed to start in time")
    if "error" in state:
        raise RuntimeError(f"HTTP server failed to start: {state['error']}")
    try:
        yield f"http://{host}:{state['port']}"
    finally:
        loop: asyncio.AbstractEventLoop = state["loop"]  # type: ignore[assignment]
        stop: asyncio.Event = state["stop"]  # type: ignore[assignment]
        with contextlib.suppress(RuntimeError):
            loop.call_soon_threadsafe(stop.set)
        thread.join(timeout=60)
        app.shutdown_executors()
