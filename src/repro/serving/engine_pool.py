"""Shared expansion-engine state for many queries over one graph.

The CSR expansion engine of :mod:`repro.influential.expansion_csr` pays,
per popped community, one relabelling of the community against the global
CSR (plus degrees, the cascade predicate, and — lazily — articulation
vertices).  Within a single query the solvers already build that state at
most once per community; across a *served batch* the same communities are
popped again and again — every query at degree constraint ``k`` starts
from the identical maximal-k-core components, and queries differing only
in ``r``/``eps``/aggregator re-walk largely the same lattice.

:class:`ExpansionEnginePool` hoists the query-independent half of the
engine (:class:`~repro.influential.expansion_csr.ComponentStructure`) into
shared state keyed by ``(k, members)``:

* the **core decomposition** of the graph is computed once and every
  per-k seed split is one threshold + component pass over it (no per-query
  full-graph peel), also giving an O(1) ``kmax`` for the "k above the max
  core number" fast path;
* **seed components** are held per k (they are the roots of every
  expansion at that k and the largest structures), along with a
  vertex→seed ownership map; per-k state is itself LRU-bounded
  (``k_state_capacity``) so a k-sweeping workload cannot pin O(n)
  arrays for every distinct k forever;
* **popped sub-communities** go through an LRU: on a miss, the structure
  is built *inside its seed component* via
  :meth:`~repro.influential.expansion_csr.ComponentStructure.substructure`
  — a relabelling against the component-local CSR instead of the whole
  graph;
* one **Zobrist table** (:class:`~repro.utils.zobrist.ZobristHasher`) is
  shared by every query the pool serves, so member keys — and therefore
  structure-cache hits — line up across queries.

Weight updates do not invalidate any of this topology-derived state:
:meth:`reweight` re-gathers the per-structure weight slices in place.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.core.decomposition import core_decomposition
from repro.graphs.graph import Graph
from repro.influential.expansion_csr import ComponentStructure, MemberArray
from repro.serving.cache import LRUCache
from repro.utils.zobrist import ZobristHasher

__all__ = ["ExpansionEnginePool"]


class _PerKState:
    """Seeds of one degree constraint: components, structures, ownership.

    ``owner`` (vertex -> seed index, -1 outside every seed) is an O(n)
    array, so it is ``None`` for ks with no seeds at all — those share one
    empty state instead of pinning 8n bytes per distinct above-kmax k.
    """

    __slots__ = ("seeds", "seed_index", "structures", "owner")

    def __init__(
        self, seeds: list[MemberArray], owner: np.ndarray | None
    ) -> None:
        self.seeds = seeds
        self.seed_index = {members: i for i, members in enumerate(seeds)}
        self.structures: list[ComponentStructure | None] = [None] * len(seeds)
        self.owner = owner


class ExpansionEnginePool:
    """Per-(graph, k) expansion-engine state shared across queries.

    Solvers take the pool through their ``engine_pool=`` keyword (threaded
    from :func:`repro.influential.api.top_r_communities` and owned by
    :class:`repro.serving.service.QueryService`).  The pool is a pure
    cache: with or without it, solver outputs are byte-identical — the
    oracle and property suites under ``tests/serving`` hold it to that.

    Not thread-safe; the service's process-pool path gives each worker its
    own pool instead of locking this one.
    """

    __slots__ = (
        "graph",
        "hasher",
        "_cores",
        "_per_k",
        "_k_state_capacity",
        "_empty_state",
        "_structures",
        "_constrained_seeds",
        "structure_hits",
        "structure_misses",
    )

    def __init__(
        self,
        graph: Graph,
        hasher: ZobristHasher | None = None,
        capacity: int = 1024,
        k_state_capacity: int = 32,
        core_numbers: np.ndarray | None = None,
    ) -> None:
        if k_state_capacity < 1:
            raise ValueError(
                f"k_state_capacity must be >= 1, got {k_state_capacity}"
            )
        self.graph = graph
        self.hasher = hasher if hasher is not None else ZobristHasher(graph.n)
        if len(self.hasher) != graph.n:
            raise ValueError(
                f"hasher covers {len(self.hasher)} vertices, graph has {graph.n}"
            )
        if core_numbers is not None and core_numbers.shape != (graph.n,):
            raise ValueError(
                f"core_numbers shape {core_numbers.shape} does not match "
                f"{graph.n} vertices"
            )
        # A precomputed decomposition (a loaded snapshot, typically) seeds
        # the cache: the pool then never peels the full graph at all.
        self._cores: np.ndarray | None = core_numbers
        # LRU over per-k seed state: each non-empty entry pins an O(n)
        # ownership array plus the k's seed structures, the dominant
        # memory of a long-lived pool — a k-sweeping workload must not
        # accumulate one forever per distinct k.
        self._per_k: OrderedDict[int, _PerKState] = OrderedDict()
        self._k_state_capacity = k_state_capacity
        self._empty_state: _PerKState | None = None
        self._structures = LRUCache(capacity)
        # Constrained-seed lists per (k, label predicate): one masked peel
        # each, so the cache is small and cheap to refill — it is cleared
        # wholesale on any topology change (see apply_update).
        self._constrained_seeds = LRUCache(64)
        self.structure_hits = 0
        self.structure_misses = 0

    # ------------------------------------------------------------------
    # Cached decomposition
    # ------------------------------------------------------------------
    @property
    def core_numbers(self) -> np.ndarray:
        """Core number of every vertex (computed once per pool)."""
        if self._cores is None:
            self._cores = core_decomposition(self.graph, backend="csr")
        return self._cores

    @property
    def kmax(self) -> int:
        """The graph's maximum core number (0 for the empty graph)."""
        cores = self.core_numbers
        return int(cores.max()) if cores.size else 0

    def core_level_sizes(self) -> np.ndarray:
        """``sizes[k]``: vertices in the maximal k-core, for k in 0..kmax.

        One bincount plus a suffix sum over the cached decomposition —
        no per-k seed state is built or pinned.  ``sizes[0] == n``; the
        index layer and its CLI/bench report level coverage from this.
        """
        cores = self.core_numbers
        if not cores.size:
            return np.zeros(1, dtype=np.int64)
        counts = np.bincount(cores, minlength=self.kmax + 1)
        return counts[::-1].cumsum()[::-1]

    # ------------------------------------------------------------------
    # Seeds
    # ------------------------------------------------------------------
    def _state_for(self, k: int) -> _PerKState:
        state = self._per_k.get(k)
        if state is not None:
            self._per_k.move_to_end(k)
            return state
        mask = self.core_numbers >= k
        if not mask.any():
            # No seeds at this k (k > kmax, or an empty graph): one shared
            # empty state serves every such k — a workload probing many
            # distinct oversized ks must not grow the pool.
            state = self._empty_state
            if state is None:
                state = self._empty_state = _PerKState([], None)
            self._per_k[k] = state
            while len(self._per_k) > self._k_state_capacity:
                self._per_k.popitem(last=False)
            return state
        seeds: list[MemberArray] = []
        owner = np.full(self.graph.n, -1, dtype=np.int64)
        # components_of_mask emits by smallest member over sorted id
        # arrays — the exact contract of connected_kcore_components, so
        # pool-served seeds match the per-query peel bit for bit.
        for index, component in enumerate(
            self.graph.csr.components_of_mask(mask)
        ):
            owner[component] = index
            ids = component
            if ids.size == 0 or ids[-1] <= np.iinfo(np.int32).max:
                ids = ids.astype(np.int32)
            seeds.append(MemberArray(ids, self.hasher.hash_members(ids)))
        state = _PerKState(seeds, owner)
        self._per_k[k] = state
        while len(self._per_k) > self._k_state_capacity:
            self._per_k.popitem(last=False)
        return state

    def seed_members(self, k: int) -> list[MemberArray]:
        """The maximal k-core components, smallest member first."""
        return list(self._state_for(k).seeds)

    def constrained_seed_members(self, k: int, predicate) -> list[MemberArray]:
        """Seeds of the label-constrained lattice at constraint ``k``: the
        components of the maximal k-core of ``G[matching]``.

        The peel starts from ``matching ∩ {core >= k}`` — the constrained
        k-core is contained in both, so intersecting first only shrinks
        the work, never the fixpoint — and runs on the *global* CSR, so no
        vertex ids are remapped and the resulting seeds share the pool's
        structure LRU with unconstrained queries at the same k.
        """
        from repro.influential.constraints import matching_mask

        key = (k, predicate)
        cached = self._constrained_seeds.get(key)
        if cached is not None:
            return list(cached)
        mask = matching_mask(self.graph, predicate) & (self.core_numbers >= k)
        seeds: list[MemberArray] = []
        if mask.any():
            self.graph.csr.peel_to_kcore(mask, k)
            for component in self.graph.csr.components_of_mask(mask):
                ids = component
                if ids.size == 0 or ids[-1] <= np.iinfo(np.int32).max:
                    ids = ids.astype(np.int32)
                seeds.append(MemberArray(ids, self.hasher.hash_members(ids)))
        self._constrained_seeds.put(key, tuple(seeds))
        return list(seeds)

    def _seed_structure(self, state: _PerKState, index: int, k: int):
        structure = state.structures[index]
        if structure is None:
            self.structure_misses += 1
            structure = ComponentStructure.build(
                self.graph, state.seeds[index], k, self.hasher
            )
            state.structures[index] = structure
        else:
            self.structure_hits += 1
        return structure

    # ------------------------------------------------------------------
    # Structure lookup (the expansion_context hook)
    # ------------------------------------------------------------------
    def structure_for(self, members, k: int) -> ComponentStructure:
        """The (possibly cached) structure of ``members`` at constraint k.

        Seeds are pinned per k; anything else goes through the LRU and is
        built inside its owning seed component on a miss.
        """
        members = MemberArray.from_iterable(members, self.hasher)
        state = self._state_for(k)
        seed_index = state.seed_index.get(members)
        if seed_index is not None:
            return self._seed_structure(state, seed_index, k)
        cached = self._structures.get((k, members))
        if cached is not None:
            self.structure_hits += 1
            return cached
        self.structure_misses += 1
        root = -1
        if len(members) and state.owner is not None:
            root = int(state.owner[int(members.ids[0])])
        if root >= 0:
            structure = self._seed_structure(state, root, k).substructure(
                members, k
            )
        else:
            structure = ComponentStructure.build(
                self.graph, members, k, self.hasher
            )
        self._structures.put((k, members), structure)
        return structure

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def apply_update(
        self,
        graph: Graph,
        core_numbers: np.ndarray,
        max_affected_core: int,
        changed_edges: tuple[tuple[int, int], ...],
    ) -> int:
        """Absorb an edge-update delta, dropping only what it invalidates.

        ``graph``/``core_numbers`` are the post-delta graph and its
        repaired decomposition (see :class:`repro.graphs.delta.GraphDelta`);
        ``max_affected_core`` is the delta's locality bound: every k above
        it has an identical maximal k-core, so its per-k seed state —
        components, ownership array, pinned seed structures — survives
        verbatim.  States at ``k <= max_affected_core`` are dropped
        (partitions can merge or split there) and lazily rebuilt from the
        new core numbers; LRU-cached sub-community structures are dropped
        only when an applied edge has both endpoints inside their member
        set, because a structure encodes nothing beyond the topology
        induced on its members.  Returns how many cached structures were
        dropped.
        """
        from repro.serving.updates import structure_survives

        if graph.n != self.graph.n:
            raise ValueError(
                "apply_update expects a graph with the same vertex set; "
                "use a fresh pool for a different graph"
            )
        if core_numbers.shape != (graph.n,):
            raise ValueError(
                f"core_numbers shape {core_numbers.shape} does not match "
                f"{graph.n} vertices"
            )
        self.graph = graph
        self._cores = core_numbers
        # Constrained seeds are peeled inside the *induced* subgraph of a
        # predicate's matching set, whose core structure has its own (finer)
        # locality; rather than prove a per-entry bound, drop them all —
        # each entry is one masked peel to rebuild.
        self._constrained_seeds.clear()
        dropped = 0
        for k in [k for k in self._per_k if k <= max_affected_core]:
            state = self._per_k.pop(k)
            if state is not self._empty_state:
                dropped += sum(
                    1 for structure in state.structures if structure is not None
                )
        dropped += self._structures.invalidate_where(
            lambda key: not structure_survives(key[1].ids, changed_edges)
        )
        return dropped

    def reweight(self, graph: Graph) -> None:
        """Point the pool at a re-weighted twin of its graph.

        ``graph`` must share the topology (``with_weights`` derivation);
        every cached structure re-gathers its weight slice in place —
        local CSRs, degrees, articulation masks and Zobrist tokens are all
        weight-independent and survive untouched.
        """
        if graph.n != self.graph.n or graph.m != self.graph.m:
            raise ValueError(
                "reweight expects a graph with identical topology; use a "
                "fresh pool for a different graph"
            )
        self.graph = graph
        weights = graph.weights
        for state in self._per_k.values():
            for structure in state.structures:
                if structure is not None:
                    structure.reweight(weights)
        for structure in self._structures.values():
            structure.reweight(weights)

    def clear(self) -> None:
        """Drop every cached seed, structure and decomposition."""
        self._cores = None
        self._per_k.clear()
        self._empty_state = None
        self._structures.clear()
        self._constrained_seeds.clear()

    def stats(self) -> dict[str, object]:
        """Cache counters, JSON-ready (feeds the service's stats)."""
        return {
            "structure_lru": self._structures.stats(),
            "structure_hits": self.structure_hits,
            "structure_misses": self.structure_misses,
            "constrained_seed_entries": len(self._constrained_seeds),
            "ks_seeded": sorted(
                k for k, state in self._per_k.items() if state.seeds
            ),
        }

    def __repr__(self) -> str:
        return (
            f"ExpansionEnginePool(n={self.graph.n}, ks={sorted(self._per_k)}, "
            f"structures={len(self._structures)})"
        )
