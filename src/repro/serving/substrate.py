"""The zero-copy substrate: one copy of the graph per *machine*.

Before this module, every helper process — ``submit_many`` pool workers,
``--workers N`` HTTP solvers — received a pickled payload of the CSR
arrays, weights, labels, decompositions, and index arrays, then rebuilt a
private eager set adjacency on top: one full copy of everything per
process.  A :class:`SharedSubstrate` replaces the payload with a
*descriptor* (a small JSON-able dict) naming where the real bytes live,
in one of two places:

* ``kind="shm"`` — POSIX shared-memory segments
  (:mod:`multiprocessing.shared_memory`).  The owner copies each array
  into a named segment exactly once; attachers wrap the segment buffer
  in a read-only numpy view.  Used when the service was built in memory
  (no snapshot directory to point at).
* ``kind="snapshot"`` — an existing snapshot directory
  (:mod:`repro.serving.store`).  The descriptor is just the path;
  attachers ``load_snapshot(mmap=True)`` and share the page cache.
  Used by the serving fleet when it already starts from a snapshot —
  zero additional copies, not even the owner's.

Either way, attachers build their :class:`~repro.serving.service
.QueryService` over a **lazy** set adjacency
(:class:`repro.graphs.lazy.LazyAdjacency`), so the private per-process
heap is bounded by what the process actually touches instead of
O(n + 2m) up front.  ``benchmarks/bench_fleet.py`` measures the
difference against the legacy pickled path.

Ownership and unlinking
-----------------------
Exactly one process — the one that called :meth:`publish` — owns the
``shm`` segments and must :meth:`unlink` them (attachers only
:meth:`close`).  Segment names carry a ``repro-`` prefix plus the
owner's pid, so a leak check is ``ls /dev/shm | grep repro-`` and a
crashed owner is attributable.  An ``atexit`` backstop unlinks anything
a dying owner still holds.  On Python < 3.13 the attach side must
un-register from the ``resource_tracker`` (attaching registers
unconditionally there), else the *attacher's* exit would unlink the
owner's live segments — the classic shared-memory footgun.
"""

from __future__ import annotations

import atexit
import json
import os
import pathlib
import secrets
import threading
from multiprocessing import resource_tracker, shared_memory
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import SnapshotError

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from repro.serving.service import QueryService

__all__ = ["SharedSubstrate", "SubstrateError"]

#: Every segment this module creates starts with this, so stray segments
#: in /dev/shm are attributable (and grep-able by the CI leak check).
SEGMENT_PREFIX = "repro-"

#: Array fields a substrate can carry; truss/index fields are optional.
_ARRAY_FIELDS = (
    "indptr",
    "indices",
    "weights",
    "core_numbers",
    "truss_edges",
    "truss_values",
    "index_members",
    "index_offsets",
    "index_values",
)

_LIVE_OWNERS: "set[SharedSubstrate]" = set()


class SubstrateError(RuntimeError):
    """A substrate could not be published, attached, or validated."""


def _unlink_live_owners() -> None:  # pragma: no cover — atexit path
    for substrate in list(_LIVE_OWNERS):
        try:
            substrate.unlink()
        except Exception:
            pass


atexit.register(_unlink_live_owners)


_TRACKER_PATCH_LOCK = threading.Lock()


def _open_segment(
    name: str, create: bool = False, size: int = 0
) -> shared_memory.SharedMemory:
    """Open a shared-memory segment *outside* resource-tracker custody.

    Lifetime here is explicit — the publishing owner unlinks, with an
    ``atexit`` backstop — and the tracker actively fights that model on
    Python < 3.13: every open (even a read-only attach) registers with
    one shared daemon, whose per-name bookkeeping is a set, so a fork
    sibling exiting can unlink the owner's live segments and concurrent
    unregisters race into KeyError noise.  ``track=False`` (3.13+) is
    the sanctioned opt-out; older interpreters get the same effect by
    patching the register hook away around the constructor call.
    """
    try:
        return shared_memory.SharedMemory(
            name=name, create=create, size=size, track=False
        )
    except TypeError:  # Python < 3.13: no track= parameter
        pass
    with _TRACKER_PATCH_LOCK:
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name, create=create, size=size)
        finally:
            resource_tracker.register = original


def _unlink_segment(shm: shared_memory.SharedMemory) -> None:
    """Destroy a segment opened by :func:`_open_segment`.

    ``SharedMemory.unlink`` additionally unregisters from the tracker,
    which never heard of the segment (see above) and logs a KeyError
    from its daemon if told to forget it — so on interpreters without
    ``track=False`` support the POSIX unlink is called directly.
    """
    if getattr(shm, "_track", None) is False:  # 3.13+: unlink() skips tracker
        shm.unlink()
        return
    try:
        import _posixshmem

        _posixshmem.shm_unlink(shm._name)
    except ImportError:  # pragma: no cover — non-POSIX fallback
        shm.unlink()


class SharedSubstrate:
    """One machine-wide read-only home for a service's heavy arrays."""

    def __init__(
        self,
        kind: str,
        descriptor: dict,
        arrays: dict[str, np.ndarray],
        labels: "list[str] | None",
        segments: "list[shared_memory.SharedMemory] | None" = None,
        owner: bool = False,
    ) -> None:
        self._kind = kind
        self._descriptor = descriptor
        self._arrays = arrays
        self._labels = labels
        self._segments = segments or []
        self._owner = owner
        self._closed = False
        self._unlinked = False
        if owner:
            _LIVE_OWNERS.add(self)

    # ------------------------------------------------------------------
    # Construction: publish / from_snapshot / attach
    # ------------------------------------------------------------------
    @classmethod
    def publish(cls, service: "QueryService") -> "SharedSubstrate":
        """Copy ``service``'s arrays into fresh shared-memory segments.

        The returned substrate is the **owner**: it must outlive every
        attacher and eventually :meth:`unlink`.  The copies happen here,
        once; attachers never copy.
        """
        graph = service.graph
        csr = graph.csr
        arrays: dict[str, np.ndarray] = {
            "indptr": csr.indptr,
            "indices": csr.indices,
            "weights": graph.weights,
            "core_numbers": np.asarray(service.core_numbers),
        }
        # Same rule as the legacy worker payload: never ship a partially
        # evicted truss cache, never force a cold peel either.
        truss = service.peek_truss_numbers() if not service.truss_pending else None
        if truss is not None:
            items = sorted(truss.items())
            arrays["truss_edges"] = np.array(
                [edge for edge, __ in items], dtype=np.int64
            ).reshape(len(items), 2)
            arrays["truss_values"] = np.array(
                [t for __, t in items], dtype=np.int64
            )
        index = service.index
        index_header = None
        if index is not None and index.built:
            payload = index.to_payload()
            arrays["index_members"] = np.asarray(payload["members"])
            arrays["index_offsets"] = np.asarray(payload["offsets"])
            arrays["index_values"] = np.asarray(payload["values"])
            index_header = {
                "depth": payload["depth"],
                "aggregators": payload["aggregators"],
                "entries": payload["entries"],
            }

        token = f"{SEGMENT_PREFIX}{os.getpid()}-{secrets.token_hex(4)}"
        segments: list[shared_memory.SharedMemory] = []
        views: dict[str, np.ndarray] = {}
        entries: dict[str, dict] = {}
        try:
            for name, array in arrays.items():
                array = np.ascontiguousarray(array)
                segment = _open_segment(
                    f"{token}-{name}", create=True, size=max(1, array.nbytes)
                )
                segments.append(segment)
                if array.nbytes:
                    target = np.ndarray(
                        array.shape, dtype=array.dtype, buffer=segment.buf
                    )
                    target[...] = array
                view = np.ndarray(
                    array.shape, dtype=array.dtype, buffer=segment.buf
                )
                view.flags.writeable = False
                views[name] = view
                entries[name] = {
                    "segment": segment.name,
                    "dtype": str(array.dtype),
                    "shape": list(array.shape),
                }
            labels = graph.labels
            labels_entry = None
            if labels is not None:
                encoded = json.dumps(labels).encode("utf-8")
                segment = _open_segment(
                    f"{token}-labels", create=True, size=max(1, len(encoded))
                )
                segments.append(segment)
                segment.buf[: len(encoded)] = encoded
                labels_entry = {"segment": segment.name, "size": len(encoded)}
        except Exception:
            for segment in segments:
                try:
                    segment.close()
                    _unlink_segment(segment)
                except Exception:
                    pass
            raise
        descriptor = {
            "kind": "shm",
            "arrays": entries,
            "labels": labels_entry,
            "index": index_header,
        }
        return cls(
            "shm", descriptor, views, labels, segments=segments, owner=True
        )

    @classmethod
    def from_snapshot(cls, path: "str | pathlib.Path") -> "SharedSubstrate":
        """A substrate whose bytes *are* an existing snapshot directory.

        Nothing is copied and nothing needs unlinking: the descriptor is
        the path, and every attacher memory-maps the same files.
        """
        descriptor = {"kind": "snapshot", "path": str(pathlib.Path(path))}
        return cls.attach(descriptor)

    @classmethod
    def attach(cls, descriptor: dict) -> "SharedSubstrate":
        """Open read-only views onto a published substrate.

        The reverse of :meth:`publish`/:meth:`from_snapshot`; the
        descriptor travels as plain JSON (pool ``initargs``, fleet spawn
        configs, the CLI's ``--follow`` plumbing).
        """
        kind = descriptor.get("kind")
        if kind == "snapshot":
            from repro.serving.store import load_snapshot

            try:
                snapshot = load_snapshot(descriptor["path"], mmap=True)
            except (KeyError, SnapshotError) as exc:
                raise SubstrateError(f"cannot attach snapshot substrate: {exc}")
            arrays: dict[str, np.ndarray] = {
                "indptr": np.asarray(snapshot.indptr),
                "indices": np.asarray(snapshot.indices),
                "weights": np.asarray(snapshot.weights),
                "core_numbers": np.asarray(snapshot.core_numbers),
            }
            if snapshot.truss_numbers is not None:
                items = sorted(snapshot.truss_numbers.items())
                arrays["truss_edges"] = np.array(
                    [edge for edge, __ in items], dtype=np.int64
                ).reshape(len(items), 2)
                arrays["truss_values"] = np.array(
                    [t for __, t in items], dtype=np.int64
                )
            index_header = None
            if snapshot.index_payload is not None:
                payload = snapshot.index_payload
                arrays["index_members"] = np.asarray(payload["members"])
                arrays["index_offsets"] = np.asarray(payload["offsets"])
                arrays["index_values"] = np.asarray(payload["values"])
                index_header = {
                    "depth": payload["depth"],
                    "aggregators": payload["aggregators"],
                    "entries": payload["entries"],
                }
            descriptor = dict(descriptor)
            descriptor["index"] = index_header
            return cls("snapshot", descriptor, arrays, snapshot.labels)
        if kind != "shm":
            raise SubstrateError(f"unknown substrate kind {kind!r}")

        segments: list[shared_memory.SharedMemory] = []
        views: dict[str, np.ndarray] = {}
        try:
            for name, entry in descriptor["arrays"].items():
                if name not in _ARRAY_FIELDS:
                    raise SubstrateError(f"unknown substrate array {name!r}")
                segment = _open_segment(entry["segment"])
                segments.append(segment)
                view = np.ndarray(
                    tuple(entry["shape"]),
                    dtype=np.dtype(entry["dtype"]),
                    buffer=segment.buf,
                )
                view.flags.writeable = False
                views[name] = view
            labels = None
            labels_entry = descriptor.get("labels")
            if labels_entry is not None:
                segment = _open_segment(labels_entry["segment"])
                segments.append(segment)
                raw = bytes(segment.buf[: labels_entry["size"]])
                labels = json.loads(raw.decode("utf-8"))
        except SubstrateError:
            for segment in segments:
                segment.close()
            raise
        except Exception as exc:
            for segment in segments:
                segment.close()
            raise SubstrateError(f"cannot attach shm substrate: {exc}")
        for required in ("indptr", "indices", "weights", "core_numbers"):
            if required not in views:
                for segment in segments:
                    segment.close()
                raise SubstrateError(f"substrate descriptor lacks {required!r}")
        return cls("shm", dict(descriptor), views, labels, segments=segments)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def kind(self) -> str:
        """``"shm"`` or ``"snapshot"``."""
        return self._kind

    @property
    def owner(self) -> bool:
        """True for the publishing process (the one that must unlink)."""
        return self._owner

    def descriptor(self) -> dict:
        """The JSON-able attach token (safe to pickle/serialize)."""
        descriptor = dict(self._descriptor)
        if self._kind == "snapshot":
            # Attachers re-derive everything from the path; the index
            # header was only materialised for *this* process's use.
            descriptor.pop("index", None)
        return descriptor

    def truss_numbers(self) -> "dict[tuple[int, int], int] | None":
        """The truss cache as the service-shaped dict, if carried."""
        edges = self._arrays.get("truss_edges")
        if edges is None:
            return None
        values = self._arrays["truss_values"]
        return {
            (int(u), int(v)): int(t) for (u, v), t in zip(edges, values)
        }

    def index_payload(self) -> "dict | None":
        """The :class:`~repro.index.InfluentialIndex` payload, if carried."""
        header = self._descriptor.get("index")
        if header is None or "index_members" not in self._arrays:
            return None
        return {
            "depth": int(header.get("depth", 0)),
            "aggregators": header.get("aggregators", []),
            "entries": header["entries"],
            "members": self._arrays["index_members"],
            "offsets": self._arrays["index_offsets"],
            "values": self._arrays["index_values"],
        }

    def build_service(
        self,
        backend: str = "auto",
        cache_size: int = 1024,
        pool_capacity: int = 1024,
        lazy_adjacency: bool = True,
    ) -> "QueryService":
        """Stand up a :class:`QueryService` over the shared arrays.

        With ``lazy_adjacency=True`` (the default, and the point) the
        graph's set adjacency materialises per vertex on demand; the CSR
        arrays, weights, and decompositions are the shared views
        themselves — no copy.
        """
        from repro.graphs.builder import graph_from_csr_arrays
        from repro.index import InfluentialIndex
        from repro.serving.service import QueryService

        graph = graph_from_csr_arrays(
            self._arrays["indptr"],
            self._arrays["indices"],
            self._arrays["weights"],
            labels=self._labels,
            trusted=True,
            lazy_adjacency=lazy_adjacency,
        )
        payload = self.index_payload()
        return QueryService(
            graph,
            backend=backend,
            cache_size=cache_size,
            pool_capacity=pool_capacity,
            core_numbers=np.asarray(self._arrays["core_numbers"]),
            truss_numbers=self.truss_numbers(),
            index=(
                InfluentialIndex.from_payload(payload)
                if payload is not None
                else None
            ),
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop this process's attachments (views become invalid)."""
        if self._closed:
            return
        self._closed = True
        self._arrays = {}
        for segment in self._segments:
            try:
                segment.close()
            except Exception:  # pragma: no cover — double-close races
                pass

    def unlink(self) -> None:
        """Destroy the shm segments (owner only; snapshot kind is a no-op).

        Safe to call while attachers are still mapped — POSIX keeps the
        segment alive until the last map drops — so owners unlink as soon
        as every intended attacher has started.
        """
        if not self._owner or self._unlinked:
            return
        self._unlinked = True
        _LIVE_OWNERS.discard(self)
        self.close()
        for segment in self._segments:
            try:
                _unlink_segment(segment)
            except Exception:  # pragma: no cover — already gone
                pass

    def __repr__(self) -> str:
        return (
            f"SharedSubstrate(kind={self._kind!r}, owner={self._owner}, "
            f"arrays={sorted(self._arrays)})"
        )
