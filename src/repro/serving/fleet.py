"""Multi-process serving fleet over one shared substrate.

``repro serve --fleet N`` forks N event-loop processes that all answer
on one port.  The pieces, bottom-up:

* :class:`Replicator` — glues a :class:`~repro.serving.http.ServingApp`
  to a :mod:`~repro.serving.replog` log.  Mutations POSTed to *any*
  member are appended to the log first and then applied by replaying
  the appended record; a background tail task replays records the
  *other* members appended.  Every replica therefore absorbs the same
  mutation sequence through the same ``update_edges``/``update_weights``
  code paths, which keeps answers byte-identical across the fleet (and
  across warm standbys started with ``--follow``).
* :class:`SnapshotRefresher` — after every N applied mutations, rewrites
  the serving snapshot in place (write-new-then-rename, manifest last)
  with the absorbed ``replication_seq`` stamped in, so a restart tails
  the log from there instead of replaying history.
* :class:`Fleet` — the parent process: publishes the substrate once
  (:meth:`SharedSubstrate.publish`), forks the members, waits for their
  readiness reports, and tears everything down (SIGTERM → join → kill →
  unlink) on :meth:`Fleet.stop`.  Port sharing uses ``SO_REUSEPORT``
  when the platform has it; otherwise the parent runs a small
  round-robin TCP proxy in front of per-member ephemeral ports.

Memory model: the parent copies the arrays into shared memory exactly
once; each member attaches read-only views and builds a lazy-adjacency
graph over them, so per-member private RSS is bounded by Python itself
plus whatever per-vertex sets its own query mix touches — not by the
graph.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import signal
import socket
import threading
import time

import numpy as np

from repro.errors import ReproError
from repro.serving.replog import LogCursor, ReplicationLog, head_seq
from repro.serving.substrate import SharedSubstrate

__all__ = ["Fleet", "Replicator", "SnapshotRefresher"]

#: How often an idle member looks for foreign log records (seconds).
POLL_INTERVAL = 0.05

#: Age margin (seconds) a record must reach before post-refresh
#: compaction may drop it.  Restart safety never depends on this (a
#: member attaching after compaction starts from the snapshot that
#: already absorbed the dropped prefix); the margin exists for *running*
#: members, which read the log lock-free on a ~POLL_INTERVAL cadence —
#: two orders of magnitude of headroom over the poll window.
COMPACT_MIN_AGE = 5.0

#: How long Fleet.stop() waits for a SIGTERMed member before SIGKILL.
STOP_TIMEOUT = 15.0


class FleetError(RuntimeError):
    """A fleet failed to start or lost its members."""


# ----------------------------------------------------------------------
# Replication
# ----------------------------------------------------------------------
class Replicator:
    """Replays a replication log into one ServingApp, and feeds it.

    All graph mutations flow through here in fleet/follower mode:

    * :meth:`publish` (called by the app's POST handlers) appends the
      mutation to the log under the app's update lock, then applies
      every unapplied record — foreign stragglers first, then its own —
      strictly in seq order.
    * :meth:`start` spawns the tail task that does the same replay for
      records appended by *other* processes.

    A record that fails validation when replayed (e.g. an edge insert
    that lost a race with an identical insert on a sibling) is skipped —
    deterministically, by every replica, because they all validate the
    same payload against the same predecessor state.  The losing
    client's POST gets a 409.
    """

    def __init__(
        self,
        app,
        log_path,
        start_seq: int = 0,
        poll_interval: float = POLL_INTERVAL,
    ) -> None:
        self.app = app
        self.log = ReplicationLog(log_path)
        self.cursor = LogCursor(log_path, start_seq=start_seq)
        self._head = LogCursor(log_path, start_seq=start_seq)
        self.applied_seq = int(start_seq)
        self.apply_failures = 0
        self.poll_interval = poll_interval
        self.refresher: "SnapshotRefresher | None" = None
        self._task: "asyncio.Task | None" = None

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        if self._task is None:
            self._task = asyncio.ensure_future(self._run())

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._task
            self._task = None

    async def _run(self) -> None:
        while True:
            async with self.app._update_lock:
                await self._sync_locked()
            await asyncio.sleep(self.poll_interval)

    # -- status --------------------------------------------------------
    def status(self) -> dict:
        """Replication position: ``{"applied_seq", "head_seq", "lag"}``.

        The head probe is an incremental cursor (it only reads bytes
        appended since the previous status call), so polling this from
        ``/healthz`` stays O(new records), not O(log).
        """
        for _record in self._head.poll():
            pass
        head = max(self._head.seq, self.applied_seq)
        return {
            "applied_seq": self.applied_seq,
            "head_seq": head,
            "lag": max(0, head - self.applied_seq),
            "apply_failures": self.apply_failures,
        }

    # -- the write path ------------------------------------------------
    async def publish(self, op: str, payload: dict) -> dict:
        """Log one mutation, replay up to (and including) it, respond.

        The append happens under the app's update lock *after* catching
        up on foreign records, so the validation inside the replay runs
        against exactly the state every other replica will have when it
        reaches this seq.
        """
        from repro.serving.http import _HTTPError

        loop = asyncio.get_running_loop()
        async with self.app._update_lock:
            await self._sync_locked()
            record = await loop.run_in_executor(
                None, self.log.append, op, payload
            )
            response: "dict | None" = None
            conflict: "Exception | None" = None
            for pending in await loop.run_in_executor(None, self.cursor.poll):
                try:
                    result = await self._apply_record_locked(pending)
                except ReproError as exc:
                    self.apply_failures += 1
                    self.applied_seq = pending.seq
                    if pending.seq == record.seq:
                        # Deferred, not raised: the poll above already
                        # consumed every record in this batch, so bailing
                        # out mid-loop would drop a sibling's record that
                        # can never be re-polled — this replica would
                        # silently diverge from the rest of the fleet.
                        conflict = _HTTPError(
                            409,
                            "update conflicts with a concurrent mutation "
                            f"(seq {record.seq} skipped on every replica): "
                            f"{exc}",
                        )
                    continue
                self.applied_seq = pending.seq
                if pending.seq == record.seq:
                    response = result
            await self._maybe_refresh_locked()
            if conflict is not None:
                raise conflict
            if response is None:  # pragma: no cover — append is fsynced
                raise _HTTPError(
                    500, f"appended seq {record.seq} did not replay"
                )
            response["seq"] = record.seq
            return response

    # -- the replay path -----------------------------------------------
    async def _sync_locked(self) -> None:
        """Apply every unapplied foreign record; caller holds the lock."""
        loop = asyncio.get_running_loop()
        applied = False
        while True:
            records = await loop.run_in_executor(None, self.cursor.poll)
            if not records:
                break
            for record in records:
                try:
                    await self._apply_record_locked(record)
                except ReproError:
                    # Every replica validates the same payload against
                    # the same predecessor state, so every replica skips
                    # this record — divergence-free.
                    self.apply_failures += 1
                self.applied_seq = record.seq
                applied = True
        if applied:
            await self._maybe_refresh_locked()

    async def _apply_record_locked(self, record) -> dict:
        """Replay one record through the app's mutation paths."""
        loop = asyncio.get_running_loop()
        service = self.app.service
        if record.op == "update-weights":
            raw = record.payload.get("weights")
            if not isinstance(raw, list) or len(raw) != service.graph.n:
                raise ReproError(
                    f"replication seq {record.seq}: weights must be a "
                    f"list of {service.graph.n} numbers"
                )

            def _validated() -> np.ndarray:
                try:
                    array = np.asarray(raw, dtype=np.float64)
                    service.graph.with_weights(array)
                except (TypeError, ValueError) as exc:
                    raise ReproError(str(exc)) from exc
                return array

            candidate = await loop.run_in_executor(None, _validated)
            await self.app._apply_weights_locked(candidate)
            return {
                "status": "reweighted",
                "n": service.graph.n,
                "epoch": self.app._epoch,
                "invalidations": service.invalidations,
            }
        if record.op == "update-edges":
            from repro.graphs.delta import GraphDelta

            inserts, deletes = GraphDelta.validate(
                service.graph,
                record.payload.get("insert", ()),
                record.payload.get("delete", ()),
            )
            report = await self.app._apply_edges_locked(inserts, deletes)
            return {
                "status": "updated",
                "epoch": self.app._epoch,
                "kmax": service.kmax,
                **report.summary(),
            }
        raise ReproError(f"unknown replication op {record.op!r}")

    async def _maybe_refresh_locked(self) -> None:
        if self.refresher is not None:
            await self.refresher.maybe_refresh_locked(self.applied_seq)


class SnapshotRefresher:
    """Rewrites the serving snapshot after every N absorbed mutations.

    ``save_snapshot`` writes every array to a pid-suffixed temp file and
    renames, manifest last, so a reader (or a crash) mid-refresh sees
    either the old snapshot or the new one — never a torn mix; it also
    flocks the directory's ``.save.lock`` for the whole save, so two
    refreshers at different applied seqs (every fleet member runs one,
    and an operator may run ``repro snapshot refresh`` too) serialise
    instead of interleaving per-file renames, and a save that would
    regress the stamped seq is skipped.  The stamped ``replication_seq``
    is what lets the next cold start (or a ``--follow`` standby) skip
    the already-absorbed prefix of the log.

    When constructed with the replication ``log``, every successful
    refresh is followed by :meth:`ReplicationLog.compact` up to the seq
    the snapshot just made durable (with the :data:`COMPACT_MIN_AGE`
    margin for running readers), so the log stays proportional to the
    un-absorbed suffix instead of growing without bound.
    """

    def __init__(
        self,
        app,
        path,
        every: int,
        log: "ReplicationLog | None" = None,
        compact_min_age: float = COMPACT_MIN_AGE,
    ) -> None:
        if every < 1:
            raise ValueError(f"refresh interval must be >= 1, got {every}")
        self.app = app
        self.path = path
        self.every = int(every)
        self.log = log
        self.compact_min_age = float(compact_min_age)
        self.pending = 0
        self.last_applied = 0
        self.refreshes = 0
        self.last_seq = 0
        self.compacted_records = 0

    async def maybe_refresh_locked(self, applied_seq: int) -> None:
        """Count newly-absorbed seqs; refresh when the interval fills."""
        self.pending += max(0, applied_seq - self.last_applied)
        self.last_applied = max(self.last_applied, applied_seq)
        if self.pending < self.every:
            return
        from repro.serving.store import save_snapshot

        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None,
            lambda: save_snapshot(
                self.app.service, self.path, replication_seq=applied_seq
            ),
        )
        self.pending = 0
        self.refreshes += 1
        self.last_seq = applied_seq
        if self.log is not None:
            # Safe even when the save above was skipped as not-newer: the
            # manifest then already stamps a seq >= applied_seq, so every
            # record at or below it is durable in the snapshot.
            self.compacted_records += await loop.run_in_executor(
                None,
                lambda: self.log.compact(
                    applied_seq, min_age=self.compact_min_age
                ),
            )


def attach_replication(
    app,
    log_path,
    start_seq: int = 0,
    snapshot_path=None,
    refresh_every: int = 0,
    poll_interval: float = POLL_INTERVAL,
) -> Replicator:
    """Wire a Replicator (and optional refresher) onto a ServingApp.

    Shared by fleet members, ``repro serve --log``, and ``--follow``
    standbys; the caller still owns starting/stopping the tail task
    inside its event loop.
    """
    replicator = Replicator(
        app, log_path, start_seq=start_seq, poll_interval=poll_interval
    )
    if refresh_every > 0 and snapshot_path is not None:
        replicator.refresher = SnapshotRefresher(
            app, snapshot_path, refresh_every, log=replicator.log
        )
    app.replicator = replicator
    return replicator


# ----------------------------------------------------------------------
# Fleet members (child-process side)
# ----------------------------------------------------------------------
def _member_main(config: dict) -> None:
    """Entry point of one forked fleet member."""
    # Forked children inherit the parent's atexit bookkeeping, including
    # the owner registration for the substrate the PARENT published; an
    # exiting member must never unlink segments its siblings still map.
    from repro.serving import substrate as substrate_module

    substrate_module._LIVE_OWNERS.clear()

    from repro.serving.http import ServingApp

    substrate = SharedSubstrate.attach(config["descriptor"])
    service = substrate.build_service(
        backend=config["backend"], cache_size=config["cache_size"]
    )
    app = ServingApp(
        service,
        workers=config["workers"],
        max_body_bytes=config["max_body_bytes"],
        max_queue_depth=config["max_queue_depth"],
    )
    app.member_index = config["index"]
    replicator = attach_replication(
        app,
        config["log_path"],
        start_seq=config["start_seq"],
        snapshot_path=config.get("snapshot_path"),
        refresh_every=config.get("refresh_every", 0),
    )
    ready_queue = config["ready_queue"]

    def _report_ready(server) -> None:
        port = server.sockets[0].getsockname()[1]
        ready_queue.put((config["index"], port, os.getpid()))

    async def _main() -> None:
        await replicator.start()
        try:
            await app.run(
                host=config["host"],
                port=config["port"],
                on_ready=_report_ready,
                reuse_port=config["reuse_port"],
                handle_signals=True,
                drain_timeout=config.get("drain_timeout", 10.0),
            )
        finally:
            await replicator.stop()

    try:
        asyncio.run(_main())
    finally:
        substrate.close()


# ----------------------------------------------------------------------
# Round-robin proxy (fallback when SO_REUSEPORT is unavailable)
# ----------------------------------------------------------------------
class _RoundRobinProxy:
    """Tiny stdlib TCP proxy: one public port, N backend ports.

    Connections are dealt round-robin; a dead backend (connection
    refused — e.g. a killed replica) is skipped and the next one tried,
    so the fleet keeps answering as long as one member lives.
    """

    def __init__(self, host: str, port: int, backends: list[int]) -> None:
        self.host = host
        self.port = port
        self.backends = backends
        self._next = 0
        self._thread: "threading.Thread | None" = None
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._stop: "asyncio.Event | None" = None
        self._started = threading.Event()
        self._error: "BaseException | None" = None

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._runner, name="repro-fleet-proxy", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise FleetError("fleet proxy failed to start in time")
        if self._error is not None:
            raise FleetError(f"fleet proxy failed to bind: {self._error}")

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=10)

    def _runner(self) -> None:
        async def _main() -> None:
            server = await asyncio.start_server(
                self._handle, self.host, self.port
            )
            self.port = server.sockets[0].getsockname()[1]
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            self._started.set()
            try:
                await self._stop.wait()
            finally:
                server.close()
                await server.wait_closed()

        try:
            asyncio.run(_main())
        except BaseException as exc:  # pragma: no cover — surfaced in start
            self._error = exc
            self._started.set()

    async def _handle(self, client_reader, client_writer) -> None:
        upstream = None
        for _attempt in range(max(1, len(self.backends))):
            port = self.backends[self._next % len(self.backends)]
            self._next += 1
            try:
                upstream = await asyncio.open_connection(self.host, port)
                break
            except OSError:
                continue  # dead member — try the next one
        if upstream is None:
            client_writer.close()
            return
        up_reader, up_writer = upstream

        async def _pipe(reader, writer) -> None:
            try:
                while True:
                    chunk = await reader.read(65536)
                    if not chunk:
                        break
                    writer.write(chunk)
                    await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass
            finally:
                with contextlib.suppress(Exception):
                    writer.close()

        await asyncio.gather(
            _pipe(client_reader, up_writer),
            _pipe(up_reader, client_writer),
            return_exceptions=True,
        )


# ----------------------------------------------------------------------
# Fleet (parent-process side)
# ----------------------------------------------------------------------
class Fleet:
    """Publish one substrate, fork N serving members, manage their lives.

    Usage::

        fleet = Fleet(service, members=4, log_path=tmp / "repl.log")
        fleet.start()          # blocks until every member answers
        ... requests against fleet.url ...
        fleet.stop()           # SIGTERM → join → SIGKILL → unlink

    ``mode`` is ``"reuseport"`` (kernel load-balancing, one shared
    port), ``"proxy"`` (parent round-robins to per-member ephemeral
    ports), or ``"auto"`` (reuseport when the platform supports it).

    ``members`` is deliberately *not* capped at the core count (unlike
    the CPU-bound solver pools, which clamp via
    :func:`repro.utils.parallel.cap_workers`): members are event-loop
    processes that spend most of their life parked in ``epoll``, the
    count is explicit operator configuration, and the replication tests
    legitimately run more members than a small CI box has cores.
    """

    def __init__(
        self,
        service,
        members: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        mode: str = "auto",
        log_path=None,
        start_seq: "int | None" = None,
        snapshot_path=None,
        refresh_every: int = 0,
        workers: int = 0,
        max_queue_depth: int = 0,
        max_body_bytes: int = 64 * 1024 * 1024,
        cache_size: int = 1024,
        backend: str = "auto",
        drain_timeout: float = 10.0,
    ) -> None:
        if members < 1:
            raise FleetError(f"a fleet needs >= 1 member, got {members}")
        if mode not in ("auto", "reuseport", "proxy"):
            raise FleetError(f"unknown fleet mode {mode!r}")
        if log_path is None:
            raise FleetError("a fleet needs a replication log path")
        self.service = service
        self.members = int(members)
        self.host = host
        self.port = int(port)
        self.mode = self._resolve_mode(mode)
        self.log_path = log_path
        self.start_seq = start_seq
        self.snapshot_path = snapshot_path
        self.refresh_every = int(refresh_every)
        self.workers = int(workers)
        self.max_queue_depth = int(max_queue_depth)
        self.max_body_bytes = int(max_body_bytes)
        self.cache_size = int(cache_size)
        self.backend = backend
        self.drain_timeout = float(drain_timeout)
        self.substrate: "SharedSubstrate | None" = None
        self.processes: list = []
        self.member_ports: list[int] = []
        self._proxy: "_RoundRobinProxy | None" = None

    @staticmethod
    def _resolve_mode(mode: str) -> str:
        if mode != "auto":
            return mode
        return "reuseport" if hasattr(socket, "SO_REUSEPORT") else "proxy"

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- startup -------------------------------------------------------
    def start(self, timeout: float = 120.0) -> None:
        """Publish, fork, and wait until every member reports ready."""
        import multiprocessing

        context = multiprocessing.get_context("fork")
        if self.start_seq is None:
            # The service state handed to us IS the log head: members
            # must not replay mutations the state already contains.
            self.start_seq = head_seq(self.log_path)
        self.substrate = SharedSubstrate.publish(self.service)
        ready_queue = context.Queue()
        reuseport = self.mode == "reuseport"
        reserved: "socket.socket | None" = None
        if reuseport and self.port == 0:
            reserved = _reserve_port(self.host)
            self.port = reserved.getsockname()[1]
        try:
            for index in range(self.members):
                config = {
                    "index": index,
                    "descriptor": self.substrate.descriptor(),
                    "host": self.host,
                    "port": self.port if reuseport else 0,
                    "reuse_port": reuseport,
                    "ready_queue": ready_queue,
                    "log_path": str(self.log_path),
                    "start_seq": self.start_seq,
                    "snapshot_path": (
                        str(self.snapshot_path)
                        if self.snapshot_path is not None
                        else None
                    ),
                    "refresh_every": self.refresh_every,
                    "workers": self.workers,
                    "max_queue_depth": self.max_queue_depth,
                    "max_body_bytes": self.max_body_bytes,
                    "cache_size": self.cache_size,
                    "backend": self.backend,
                    "drain_timeout": self.drain_timeout,
                }
                process = context.Process(
                    target=_member_main,
                    args=(config,),
                    name=f"repro-fleet-{index}",
                    daemon=False,
                )
                process.start()
                self.processes.append(process)
            ports: dict[int, int] = {}
            deadline = time.monotonic() + timeout
            while len(ports) < self.members:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise FleetError(
                        f"only {len(ports)}/{self.members} members became "
                        f"ready within {timeout:.0f}s"
                    )
                try:
                    index, member_port, _pid = ready_queue.get(
                        timeout=min(remaining, 1.0)
                    )
                except Exception:
                    dead = [p for p in self.processes if not p.is_alive()]
                    if dead:
                        raise FleetError(
                            f"{len(dead)} member(s) exited during startup "
                            f"(exitcodes {[p.exitcode for p in dead]})"
                        )
                    continue
                ports[index] = member_port
            self.member_ports = [ports[i] for i in range(self.members)]
            if self.mode == "proxy":
                self._proxy = _RoundRobinProxy(
                    self.host, self.port, list(self.member_ports)
                )
                self._proxy.start()
                self.port = self._proxy.port
        except BaseException:
            self.stop()
            raise
        finally:
            if reserved is not None:
                reserved.close()

    # -- teardown ------------------------------------------------------
    def stop(self) -> None:
        """SIGTERM every member, reap them, then unlink the substrate.

        The unlink MUST come last: segments stay mapped (and usable) in
        any process that already attached, but a member still starting
        up would fail its attach if the names vanished early.
        """
        if self._proxy is not None:
            self._proxy.stop()
            self._proxy = None
        for process in self.processes:
            if process.is_alive():
                with contextlib.suppress(OSError):
                    os.kill(process.pid, signal.SIGTERM)
        deadline = time.monotonic() + STOP_TIMEOUT
        for process in self.processes:
            process.join(timeout=max(0.1, deadline - time.monotonic()))
        for process in self.processes:
            if process.is_alive():
                process.kill()
                process.join(timeout=5)
        self.processes = []
        if self.substrate is not None:
            self.substrate.unlink()
            self.substrate = None

    def __enter__(self) -> "Fleet":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()


def _reserve_port(host: str) -> socket.socket:
    """Bind (without listening) the first socket of a reuseport group.

    The caller keeps the returned socket open until every fleet member
    has bound the same port: closing it earlier would open a window in
    which an unrelated process could take the port and members would
    fail with EADDRINUSE.  A bound-but-not-listening TCP socket receives
    no connections, so holding it is free; forked members inherit the fd,
    which only extends the guarantee for as long as any member lives.
    """
    reserved = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        reserved.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        reserved.bind((host, 0))
    except BaseException:
        reserved.close()
        raise
    return reserved
