"""Keyed LRU caching for the serving layer.

One implementation backs both caches of :class:`repro.serving.service
.QueryService` — the query→:class:`~repro.influential.results.ResultSet`
result cache and the expansion-engine pool's structure cache.  It is a
plain ``OrderedDict`` LRU with the three things a serving cache needs
beyond ``functools.lru_cache``: explicit invalidation (single key,
predicate, or full clear — weight updates must be able to evict), hit /
miss / eviction counters for the service's stats endpoint, and a
capacity of zero meaning "disabled" so callers can switch caching off
without branching.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Hashable, Iterator, TypeVar

V = TypeVar("V")

_MISSING = object()


class LRUCache:
    """Least-recently-used mapping with stats and explicit invalidation.

    ``get`` refreshes recency and counts a hit or miss; ``put`` inserts
    (or refreshes) and evicts the least recently used entries beyond
    ``capacity``.  ``capacity == 0`` disables storage entirely: every
    ``get`` misses and ``put`` is a no-op, which keeps the caller's code
    path identical with caching switched off.
    """

    __slots__ = ("_capacity", "_data", "hits", "misses", "evictions")

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        self._capacity = capacity
        self._data: OrderedDict[Hashable, object] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def capacity(self) -> int:
        """Maximum number of entries held (0 = caching disabled)."""
        return self._capacity

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        """Membership test without touching recency or the counters."""
        return key in self._data

    def __iter__(self) -> Iterator[Hashable]:
        """Keys, least recently used first (snapshot for safe mutation)."""
        return iter(list(self._data))

    def values(self) -> list[object]:
        """Current values, least recently used first.  Touches neither the
        counters nor recency (in-place maintenance like reweighting must
        not skew hit rates)."""
        return list(self._data.values())

    def get(self, key: Hashable, default: V = None) -> V:  # type: ignore[assignment]
        """The cached value (refreshing its recency), or ``default``."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self._data.move_to_end(key)
        self.hits += 1
        return value  # type: ignore[return-value]

    def put(self, key: Hashable, value: object) -> None:
        """Insert or refresh ``key``, evicting LRU entries past capacity."""
        if self._capacity == 0:
            return
        data = self._data
        if key in data:
            data.move_to_end(key)
        data[key] = value
        while len(data) > self._capacity:
            data.popitem(last=False)
            self.evictions += 1

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry; True if it was present."""
        return self._data.pop(key, _MISSING) is not _MISSING

    def invalidate_where(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose key satisfies ``predicate``; returns the
        number dropped (used for per-k invalidation of serving caches)."""
        doomed = [key for key in self._data if predicate(key)]
        for key in doomed:
            del self._data[key]
        return len(doomed)

    def clear(self) -> None:
        """Drop everything (counters are kept — they describe the cache's
        lifetime, not its contents)."""
        self._data.clear()

    def stats(self) -> dict[str, int]:
        """Counters plus current size, JSON-ready."""
        return {
            "size": len(self._data),
            "capacity": self._capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def __repr__(self) -> str:
        return (
            f"LRUCache(size={len(self._data)}/{self._capacity}, "
            f"hits={self.hits}, misses={self.misses})"
        )
