"""Batched multi-query serving over one shared CSR graph.

The ROADMAP's north star is serving heavy traffic, and PR 1/2 made single
queries fast; this package is the layer that makes *many* queries fast
together:

* :class:`~repro.serving.query.InfluentialQuery` — one request, with a
  canonical cache key;
* :class:`~repro.serving.cache.LRUCache` — the keyed LRU both serving
  caches use;
* :class:`~repro.serving.engine_pool.ExpansionEnginePool` — shared
  expansion-engine state (seed components, relabelled local CSRs,
  Zobrist tables) reused across queries;
* :class:`~repro.serving.service.QueryService` — loads a graph once,
  caches decompositions and results, answers batches, and shards
  independent queries across worker processes;
* :mod:`~repro.serving.oracle` — the small-graph oracle harness pinning
  every served answer to the brute-force reference.

Entry points: ``QueryService(graph).submit(...)`` /
``submit_many(...)``, :func:`repro.influential.api.top_r_many`, and the
``repro batch`` CLI subcommand.
"""

from repro.serving.cache import LRUCache
from repro.serving.engine_pool import ExpansionEnginePool
from repro.serving.query import InfluentialQuery
from repro.serving.service import QueryService

__all__ = [
    "ExpansionEnginePool",
    "InfluentialQuery",
    "LRUCache",
    "QueryService",
]
