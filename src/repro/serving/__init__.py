"""Batched multi-query serving over one shared CSR graph.

The ROADMAP's north star is serving heavy traffic, and PR 1/2 made single
queries fast; this package is the layer that makes *many* queries fast
together:

* :class:`~repro.serving.query.InfluentialQuery` — one request, with a
  canonical cache key;
* :class:`~repro.serving.cache.LRUCache` — the keyed LRU both serving
  caches use;
* :class:`~repro.serving.engine_pool.ExpansionEnginePool` — shared
  expansion-engine state (seed components, relabelled local CSRs,
  Zobrist tables) reused across queries;
* :class:`~repro.serving.service.QueryService` — loads a graph once,
  caches decompositions and results, answers batches, and shards
  independent queries across worker processes;
* :mod:`~repro.serving.http` — the asyncio HTTP front end
  (:class:`~repro.serving.http.ServingApp`, :func:`~repro.serving.http
  .serve`) with single-flight request coalescing;
* :mod:`~repro.serving.updates` — scoped invalidation for live edge
  updates (:meth:`~repro.serving.service.QueryService.update_edges`):
  topology deltas from :class:`repro.graphs.delta.GraphDelta` drop only
  the caches the batch can actually have changed;
* :mod:`~repro.serving.store` — persistent graph snapshots
  (:func:`~repro.serving.store.save_snapshot` /
  :func:`~repro.serving.store.load_service`): mmapped CSR arrays,
  weights, labels and cached decompositions, so a restarted server
  skips both graph rebuild and re-peeling;
* :mod:`~repro.serving.oracle` — the small-graph oracle harness pinning
  every served answer to the brute-force reference.

Entry points: ``QueryService(graph).submit(...)`` /
``submit_many(...)``, :func:`repro.influential.api.top_r_many`, and the
``repro batch`` / ``repro serve`` / ``repro snapshot`` CLI subcommands.
"""

from repro.serving.cache import LRUCache
from repro.serving.engine_pool import ExpansionEnginePool
from repro.serving.http import ServingApp, run_server_in_thread, serve
from repro.serving.query import InfluentialQuery
from repro.serving.service import QueryService
from repro.serving.store import (
    Snapshot,
    load_service,
    load_snapshot,
    save_snapshot,
)
from repro.serving.updates import UpdateReport

__all__ = [
    "ExpansionEnginePool",
    "InfluentialQuery",
    "LRUCache",
    "QueryService",
    "ServingApp",
    "Snapshot",
    "UpdateReport",
    "load_service",
    "load_snapshot",
    "run_server_in_thread",
    "save_snapshot",
    "serve",
]
