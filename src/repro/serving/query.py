"""The unit of serving traffic: one top-r community request.

:class:`InfluentialQuery` is a frozen, picklable bundle of everything
:func:`repro.influential.api.top_r_communities` accepts (plus the
``cohesion`` switch routing to the k-truss solver family), with one job
beyond carrying parameters: producing a **canonical cache key**.  Two
queries that must return identical results — e.g. the aggregator spelled
``"sum-surplus(2)"`` versus a :class:`~repro.aggregators.summation
.SumSurplus` instance with ``alpha=2`` — collapse to the same key, while
anything that can change the answer (k, r, s, method, eps, the TONIC
flag, local-search knobs) is part of it.  The ``backend`` is deliberately
*not* part of the key: the two engines returning identical results is a
repo-level invariant enforced by the parity and oracle suites, so a
result computed under either backend may serve both.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping

from repro.aggregators.base import Aggregator
from repro.aggregators.registry import get_aggregator
from repro.errors import SpecError
from repro.influential.constraints import LabelPredicate

__all__ = ["InfluentialQuery"]

#: Cohesion models a query may ask for.
COHESIONS = ("core", "truss")


@dataclass(frozen=True)
class InfluentialQuery:
    """Parameters of one served query (defaults mirror ``top_r_communities``).

    ``cohesion="truss"`` swaps the k-core community model for k-truss
    (served by :mod:`repro.influential.truss_search`); everything else
    flows straight into :func:`~repro.influential.api.top_r_communities`.
    Parameter *well-formedness* (k/r/s sanity) is checked by the solvers
    at submit time, so building a query object never raises for values a
    stricter graph might still reject.
    """

    k: int
    r: int
    f: "str | Aggregator" = "sum"
    s: int | None = None
    method: str = "auto"
    eps: float = 0.0
    non_overlapping: bool = False
    greedy: bool = True
    seed_order: str | None = None
    rng_seed: int | None = None
    backend: str = "auto"
    cohesion: str = "core"
    constraints: "LabelPredicate | Mapping[str, object] | None" = None

    def __post_init__(self) -> None:
        # Field *types* are validated here because queries routinely arrive
        # from JSON workloads: a string-typed number must surface as a
        # SpecError (the CLI's `error: ...` contract), not as a TypeError
        # traceback from deep inside a solver.  Value ranges stay with the
        # solvers so service and cold calls reject them identically.
        self._require_int("k", self.k)
        self._require_int("r", self.r)
        if self.s is not None:
            self._require_int("s", self.s)
        if self.rng_seed is not None:
            self._require_int("rng_seed", self.rng_seed)
        if isinstance(self.eps, bool) or not isinstance(self.eps, (int, float)):
            raise SpecError(
                f"query field 'eps' must be a number, got {self.eps!r}"
            )
        for name in ("non_overlapping", "greedy"):
            if not isinstance(getattr(self, name), bool):
                raise SpecError(
                    f"query field {name!r} must be a bool, "
                    f"got {getattr(self, name)!r}"
                )
        for name in ("method", "backend", "cohesion"):
            if not isinstance(getattr(self, name), str):
                raise SpecError(
                    f"query field {name!r} must be a string, "
                    f"got {getattr(self, name)!r}"
                )
        if self.seed_order is not None and not isinstance(self.seed_order, str):
            raise SpecError(
                f"query field 'seed_order' must be a string, "
                f"got {self.seed_order!r}"
            )
        if not isinstance(self.f, (str, Aggregator)):
            raise SpecError(
                f"query field 'f' must be an aggregator name or instance, "
                f"got {self.f!r}"
            )
        if self.cohesion not in COHESIONS:
            raise SpecError(
                f"unknown cohesion model {self.cohesion!r}; "
                f"expected one of {COHESIONS}"
            )
        # `constraints` arrives from JSON as {"labels": <predicate shape>};
        # normalise to the hashable LabelPredicate so the frozen dataclass
        # stays picklable/hashable and two spellings of one constraint
        # collapse to one cache identity.
        if self.constraints is not None and not isinstance(
            self.constraints, LabelPredicate
        ):
            if not isinstance(self.constraints, Mapping):
                raise SpecError(
                    f"query field 'constraints' must be a mapping like "
                    f"{{'labels': ...}}, got {self.constraints!r}"
                )
            unknown = set(self.constraints) - {"labels"}
            if unknown:
                raise SpecError(
                    f"unknown constraint field(s) {sorted(map(str, unknown))}; "
                    f"expected among ['labels']"
                )
            object.__setattr__(
                self,
                "constraints",
                LabelPredicate.from_json(self.constraints.get("labels")),
            )

    @staticmethod
    def _require_int(name: str, value: object) -> None:
        if isinstance(value, bool) or not isinstance(value, int):
            raise SpecError(
                f"query field {name!r} must be an integer, got {value!r}"
            )

    @classmethod
    def create(
        cls, query: "InfluentialQuery | Mapping[str, object]", **overrides
    ) -> "InfluentialQuery":
        """Coerce ``query`` (an instance or a mapping, e.g. one decoded
        from a JSON workload file) into an :class:`InfluentialQuery`."""
        if isinstance(query, InfluentialQuery):
            return replace(query, **overrides) if overrides else query
        if isinstance(query, Mapping):
            merged = {**query, **overrides}
            unknown = set(merged) - set(cls.__dataclass_fields__)
            if unknown:
                raise SpecError(
                    f"unknown query field(s) {sorted(unknown)}; "
                    f"expected among {sorted(cls.__dataclass_fields__)}"
                )
            return cls(**merged)  # type: ignore[arg-type]
        raise SpecError(
            f"cannot interpret {type(query).__name__} as an InfluentialQuery"
        )

    @property
    def aggregator(self) -> Aggregator:
        """The resolved aggregator instance."""
        return get_aggregator(self.f)

    def cache_key(self) -> tuple:
        """Canonical, hashable identity of this query's *answer*.

        Layout is stable — ``(cohesion, k, r, aggregator-name, s, method,
        eps, non_overlapping, greedy, seed_order, rng_seed, constraints)``
        — so cache consumers can invalidate by position (the service's
        per-k invalidation reads index 1).  The label predicate rides at
        the *end*, so the positional reads of older consumers stay valid.
        """
        return (
            self.cohesion,
            self.k,
            self.r,
            self.aggregator.name,
            self.s,
            self.method,
            float(self.eps),
            self.non_overlapping,
            self.greedy,
            self.seed_order,
            self.rng_seed,
            self.constraints,
        )

    def solver_kwargs(self) -> dict[str, object]:
        """Keyword arguments for ``top_r_communities`` (backend excluded —
        the service resolves it against its own default)."""
        return {
            "k": self.k,
            "r": self.r,
            "f": self.f,
            "s": self.s,
            "method": self.method,
            "eps": self.eps,
            "non_overlapping": self.non_overlapping,
            "greedy": self.greedy,
            "seed_order": self.seed_order,
            "rng_seed": self.rng_seed,
            "labels": self.constraints,
        }

    def wire_dict(self) -> dict[str, object]:
        """JSON-able flat request body (the legacy ``/query`` shape,
        also one entry of a ``repro batch`` workload file).
        ``create`` round-trips it; the label predicate serialises to
        its ``{"labels": ...}`` wire form."""
        body: dict[str, object] = {
            "k": self.k,
            "r": self.r,
            "f": self.f if isinstance(self.f, str) else self.aggregator.name,
            "s": self.s,
            "method": self.method,
            "eps": self.eps,
            "non_overlapping": self.non_overlapping,
            "greedy": self.greedy,
            "seed_order": self.seed_order,
            "rng_seed": self.rng_seed,
            "cohesion": self.cohesion,
        }
        if self.constraints is not None:
            body["constraints"] = {"labels": self.constraints.to_json()}
        return body

    def describe(self) -> str:
        """Compact one-line rendering for logs and CLI output."""
        parts = [f"k={self.k}", f"r={self.r}", f"f={self.aggregator.name}"]
        if self.s is not None:
            parts.append(f"s={self.s}")
        if self.method != "auto":
            parts.append(f"method={self.method}")
        if self.eps:
            parts.append(f"eps={self.eps:g}")
        if self.non_overlapping:
            parts.append("tonic")
        if self.cohesion != "core":
            parts.append(f"cohesion={self.cohesion}")
        if self.constraints is not None:
            parts.append(self.constraints.describe())
        return "query(" + ", ".join(parts) + ")"
