"""Persistent graph snapshots: restart a service without recomputing.

A deployment pays three costs before its first answer: parsing/generating
the graph, flattening it to CSR, and running the core (and possibly
truss) decomposition.  All three are pure functions of the topology and
weights, so this module persists their outputs — the flat int CSR arrays,
the weight/label vectors, and the cached decompositions — as a directory
of raw ``.npy`` files plus a JSON manifest:

.. code-block:: text

    snapshot/
      manifest.json       format marker, counts, which arrays exist
      indptr.npy          int64, length n + 1
      indices.npy         int32 (int64 above 2^31 vertices), length 2m
      weights.npy         float64, length n
      core_numbers.npy    per-vertex core numbers (always present)
      labels.json         optional vertex labels
      truss_edges.npy     optional, (t, 2) int64 edge endpoints
      truss_values.npy    optional, per-edge truss numbers
      index_members.npy   optional (v2), concatenated community member ids
      index_offsets.npy   optional (v2), per-community delimiters
      index_values.npy    optional (v2), float64 per-community values

``load_snapshot`` memory-maps the arrays by default (``mmap_mode="r"``),
so a restarted server — or the Nth worker on one machine — touches pages
on demand instead of copying the graph; ``load_service`` goes one step
further and stands up a ready :class:`~repro.serving.service.QueryService`
whose decomposition caches are seeded from the snapshot, skipping the
re-peel entirely (the no-re-peel probe in ``tests/serving/test_snapshot``
pins this).

The manifest is written **last**, so a crashed save leaves a directory
without one — which loads refuse with a :class:`~repro.errors
.SnapshotError` instead of serving a torn graph.  Loads re-check array
lengths against the manifest and the CSR invariants against each other;
deeper trust (the arrays being a symmetric simple graph) follows from the
manifest marker, mirroring ``graph_from_csr_arrays(trusted=True)``.
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

try:  # pragma: no cover — fcntl exists everywhere this repo targets
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None

from repro._version import __version__
from repro.errors import SnapshotError
from repro.graphs.builder import graph_from_csr_arrays
from repro.graphs.graph import Graph

if TYPE_CHECKING:  # pragma: no cover — import cycle guard (service ↔ store)
    from repro.serving.service import QueryService

__all__ = ["Snapshot", "save_snapshot", "load_snapshot", "load_service"]

#: Manifest ``format`` marker — refuse anything else.
SNAPSHOT_FORMAT = "repro-graph-snapshot"
#: Bump on incompatible layout changes; loads refuse newer versions.
#: Version 2 added the optional precomputed community index arrays
#: (``index_members`` / ``index_offsets`` / ``index_values``).
SNAPSHOT_VERSION = 2
#: Versions this build can read (2 is a strict superset of 1).
SUPPORTED_VERSIONS = (1, 2)

_MANIFEST = "manifest.json"
#: flock'd while a save is in flight — serialises concurrent savers.
_SAVE_LOCK = ".save.lock"


@dataclass(frozen=True)
class Snapshot:
    """Everything a serving process needs, loaded (or mapped) from disk."""

    path: pathlib.Path
    indptr: np.ndarray
    indices: np.ndarray
    weights: np.ndarray
    core_numbers: np.ndarray
    labels: list[str] | None
    truss_numbers: dict[tuple[int, int], int] | None
    manifest: dict
    #: :meth:`repro.index.InfluentialIndex.to_payload` form, when saved.
    index_payload: dict | None = None

    @property
    def n(self) -> int:
        """Number of vertices."""
        return int(self.indptr.size - 1)

    @property
    def m(self) -> int:
        """Number of undirected edges."""
        return int(self.indices.size // 2)

    @property
    def replication_seq(self) -> int:
        """Last replication-log seq this snapshot absorbed (0 if unknown)."""
        value = self.manifest.get("replication_seq", 0)
        return int(value) if isinstance(value, int) else 0

    def graph(self) -> Graph:
        """Materialise the :class:`Graph` (CSR cache pre-seeded)."""
        graph = graph_from_csr_arrays(
            self.indptr,
            self.indices,
            self.weights,
            labels=self.labels,
            trusted=True,
        )
        return graph


def save_snapshot(
    service: "QueryService",
    path: "str | pathlib.Path",
    include_truss: "bool | str" = "auto",
    replication_seq: "int | None" = None,
) -> pathlib.Path:
    """Persist ``service``'s graph and cached decompositions to ``path``.

    ``include_truss`` controls the (optional) truss decomposition:
    ``"auto"`` saves it only if the service has already computed it,
    ``True`` forces the computation so the snapshot can serve
    ``cohesion="truss"`` traffic without a cold peel, ``False`` omits it.

    ``replication_seq`` records how far into a replication log this
    state reaches: a process starting from the snapshot tails the log
    from that seq instead of replaying history (see
    :mod:`repro.serving.replog`).  The periodic in-place refresh
    (``repro snapshot refresh``, ``repro serve --refresh-every``) is
    exactly this save with the absorbed seq stamped in.

    Returns the snapshot directory.  Overwrites any snapshot already at
    ``path``; the manifest is written last, so an interrupted save is
    detected (and refused) at load time rather than served.

    Concurrent saves into one directory are serialised by an exclusive
    ``flock`` on ``.save.lock``: each per-file rename below is atomic,
    but two interleaved savers (a fleet member's periodic refresh racing
    a sibling's, or an operator's ``repro snapshot refresh``) could
    otherwise leave arrays from one state next to a manifest from
    another.  Under that lock, a save carrying a ``replication_seq`` no
    newer than the seq already stamped on disk is skipped — replay is
    deterministic, so an equal seq means an identical state, and an
    older one would regress the snapshot a racing refresher just wrote.
    """
    if include_truss not in (True, False, "auto"):
        raise SnapshotError(
            f"include_truss must be True, False or 'auto', got {include_truss!r}"
        )
    root = pathlib.Path(path)
    root.mkdir(parents=True, exist_ok=True)
    with open(root / _SAVE_LOCK, "ab") as lock_handle:
        if fcntl is not None:
            fcntl.flock(lock_handle.fileno(), fcntl.LOCK_EX)
        try:
            _save_snapshot_locked(service, root, include_truss, replication_seq)
        finally:
            if fcntl is not None:
                fcntl.flock(lock_handle.fileno(), fcntl.LOCK_UN)
    return root


def _manifest_replication_seq(root: pathlib.Path) -> "int | None":
    """``replication_seq`` of the complete snapshot at ``root``, if any."""
    try:
        manifest = json.loads((root / _MANIFEST).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(manifest, dict):
        return None
    value = manifest.get("replication_seq")
    if isinstance(value, bool) or not isinstance(value, int):
        return None
    return value


def _save_snapshot_locked(
    service: "QueryService",
    root: pathlib.Path,
    include_truss: "bool | str",
    replication_seq: "int | None",
) -> None:
    if replication_seq is not None:
        existing = _manifest_replication_seq(root)
        if existing is not None and existing >= int(replication_seq):
            return
    graph = service.graph
    csr = graph.csr
    stale = root / _MANIFEST
    if stale.exists():
        stale.unlink()  # an interrupted overwrite must not look complete

    def _save_array(name: str, array: np.ndarray) -> None:
        # Temp-write + fsync + rename: the service being saved may be
        # *backed by this very directory* (load_service → update_weights →
        # save_snapshot refresh).  Truncating indptr.npy in place would
        # tear the read-only memmap we are about to read from; renaming
        # swaps the directory entry while open memmaps keep the old inode.
        # The fsync makes manifest-written-last hold across power loss,
        # not just process crashes (delayed allocation could otherwise
        # persist the manifest before the array data blocks).  The pid in
        # the temp name keeps two refreshers (a fleet member's periodic
        # refresh racing an operator's `repro snapshot refresh`, say) from
        # truncating each other's half-written temp files; last rename
        # wins either way, and both candidates are complete.
        tmp = root / f"{name}.npy.{os.getpid()}.tmp"
        with open(tmp, "wb") as handle:  # np.save(path) would append .npy
            np.save(handle, array, allow_pickle=False)
            handle.flush()
            os.fsync(handle.fileno())
        tmp.replace(root / f"{name}.npy")

    def _save_text(name: str, text: str) -> None:
        tmp = root / f"{name}.{os.getpid()}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        tmp.replace(root / name)

    _save_array("indptr", csr.indptr)
    _save_array("indices", csr.indices)
    _save_array("weights", graph.weights)
    _save_array("core_numbers", service.core_numbers)
    if graph.labels is not None:
        _save_text("labels.json", json.dumps(graph.labels))

    # peek_truss_numbers (rather than the raw attribute) matters for a
    # service that has absorbed edge-update deltas: it refreshes any
    # lazily pending components, so a snapshot never persists a partially
    # evicted truss cache.
    truss = service.peek_truss_numbers() if include_truss == "auto" else None
    if include_truss is True:
        truss = service.truss_numbers
    has_truss = include_truss is not False and truss is not None
    if has_truss:
        items = sorted(truss.items())
        edges = np.array(
            [edge for edge, __ in items], dtype=np.int64
        ).reshape(len(items), 2)
        values = np.array([t for __, t in items], dtype=np.int64)
        _save_array("truss_edges", edges)
        _save_array("truss_values", values)

    index = service.index
    has_index = index is not None and index.built
    index_manifest = None
    if has_index:
        payload = index.to_payload()
        _save_array("index_members", payload["members"])
        _save_array("index_offsets", payload["offsets"])
        _save_array("index_values", payload["values"])
        # The array-shaped half lives in .npy files (mmap-friendly); the
        # per-level header is small and rides in the manifest.
        index_manifest = {
            "depth": payload["depth"],
            "aggregators": payload["aggregators"],
            "entries": payload["entries"],
        }

    manifest = {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "created_by": __version__,
        "n": graph.n,
        "m": graph.m,
        "kmax": service.kmax,
        "has_labels": graph.labels is not None,
        "has_truss": has_truss,
        "has_index": has_index,
        "index": index_manifest,
        "indices_dtype": str(csr.indices.dtype),
    }
    if replication_seq is not None:
        manifest["replication_seq"] = int(replication_seq)
    # Flush the directory entries (all the renames above) before the
    # manifest lands: its presence must imply the arrays are durable.
    directory = os.open(root, os.O_RDONLY)
    try:
        os.fsync(directory)
    finally:
        os.close(directory)
    _save_text(_MANIFEST, json.dumps(manifest, indent=2) + "\n")


def _load_array(
    root: pathlib.Path, name: str, mmap: bool, expected_len: int | None
) -> np.ndarray:
    file = root / f"{name}.npy"
    if not file.exists():
        raise SnapshotError(
            f"snapshot {root} is missing {file.name} — partial or corrupt"
        )
    try:
        array = np.load(file, mmap_mode="r" if mmap else None)
    except Exception as exc:  # numpy raises ValueError/OSError on garbage
        raise SnapshotError(f"snapshot array {file} is unreadable: {exc}")
    if expected_len is not None and array.shape[0] != expected_len:
        raise SnapshotError(
            f"snapshot array {file.name} has length {array.shape[0]}, "
            f"manifest promises {expected_len}"
        )
    return array


def load_snapshot(
    path: "str | pathlib.Path", mmap: bool = True
) -> Snapshot:
    """Read (or memory-map) a snapshot directory back into arrays.

    ``mmap=True`` (the default) opens every array with ``mmap_mode="r"``:
    nothing is copied until a kernel touches it, and N processes loading
    the same snapshot share the page cache.  Raises
    :class:`~repro.errors.SnapshotError` on anything that is not a
    complete, self-consistent snapshot: a missing/garbled manifest (the
    signature of an interrupted save), missing or truncated arrays, or
    lengths that contradict the manifest.
    """
    root = pathlib.Path(path)
    if not root.is_dir():
        raise SnapshotError(f"snapshot path {root} is not a directory")
    manifest_file = root / _MANIFEST
    if not manifest_file.exists():
        raise SnapshotError(
            f"{root} has no {_MANIFEST} — not a snapshot, or a save that "
            f"did not complete"
        )
    try:
        manifest = json.loads(manifest_file.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise SnapshotError(f"snapshot manifest {manifest_file} is garbled: {exc}")
    if not isinstance(manifest, dict) or manifest.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(
            f"{manifest_file} is not a {SNAPSHOT_FORMAT} manifest"
        )
    version = manifest.get("version")
    if version not in SUPPORTED_VERSIONS:
        raise SnapshotError(
            f"snapshot version {version!r} is not supported "
            f"(this build reads versions {SUPPORTED_VERSIONS})"
        )
    try:
        n, m = int(manifest["n"]), int(manifest["m"])
    except (KeyError, TypeError, ValueError):
        raise SnapshotError(f"snapshot manifest {manifest_file} lacks n/m counts")

    indptr = _load_array(root, "indptr", mmap, n + 1)
    indices = _load_array(root, "indices", mmap, 2 * m)
    weights = _load_array(root, "weights", mmap, n)
    cores = _load_array(root, "core_numbers", mmap, n)
    if indptr.ndim != 1 or int(indptr[-1]) != indices.shape[0]:
        raise SnapshotError(
            f"snapshot {root}: indptr[-1] != len(indices) — arrays are torn"
        )

    labels: list[str] | None = None
    if manifest.get("has_labels"):
        label_file = root / "labels.json"
        if not label_file.exists():
            raise SnapshotError(f"snapshot {root} is missing labels.json")
        try:
            labels = json.loads(label_file.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise SnapshotError(f"snapshot labels {label_file} are garbled: {exc}")
        if not isinstance(labels, list) or len(labels) != n:
            raise SnapshotError(
                f"snapshot {root}: labels.json does not hold {n} labels"
            )

    truss: dict[tuple[int, int], int] | None = None
    if manifest.get("has_truss"):
        edges = _load_array(root, "truss_edges", mmap, None)
        values = _load_array(root, "truss_values", mmap, None)
        if edges.ndim != 2 or edges.shape[1] != 2 or edges.shape[0] != values.shape[0]:
            raise SnapshotError(
                f"snapshot {root}: truss arrays disagree "
                f"({edges.shape} edges vs {values.shape} values)"
            )
        if edges.shape[0] != m:
            raise SnapshotError(
                f"snapshot {root}: {edges.shape[0]} truss edges for {m} edges"
            )
        truss = {
            (int(u), int(v)): int(t)
            for (u, v), t in zip(edges, values)
        }

    index_payload: dict | None = None
    if manifest.get("has_index"):
        header = manifest.get("index")
        if not isinstance(header, dict) or not isinstance(
            header.get("entries"), list
        ):
            raise SnapshotError(
                f"snapshot {root}: manifest promises an index but carries "
                f"no per-level header"
            )
        members = _load_array(root, "index_members", mmap, None)
        offsets = _load_array(root, "index_offsets", mmap, None)
        values = _load_array(root, "index_values", mmap, None)
        total = sum(
            0 if entry.get("pending") else int(entry.get("count", 0))
            for entry in header["entries"]
        )
        if (
            offsets.ndim != 1
            or offsets.shape[0] != total + 1
            or values.shape[0] != total
            or members.shape[0] != int(offsets[-1] if offsets.size else 0)
        ):
            raise SnapshotError(
                f"snapshot {root}: index arrays disagree with the manifest "
                f"({total} communities promised)"
            )
        index_payload = {
            "depth": int(header.get("depth", 0)),
            "aggregators": header.get("aggregators", []),
            "entries": header["entries"],
            "members": members,
            "offsets": offsets,
            "values": values,
        }

    return Snapshot(
        path=root,
        indptr=indptr,
        indices=indices,
        weights=weights,
        core_numbers=cores,
        labels=labels,
        truss_numbers=truss,
        manifest=manifest,
        index_payload=index_payload,
    )


def load_service(
    path: "str | pathlib.Path",
    mmap: bool = True,
    backend: str = "auto",
    cache_size: int = 1024,
    pool_capacity: int = 1024,
) -> "QueryService":
    """A ready :class:`~repro.serving.service.QueryService` from a snapshot.

    The graph is rebuilt with its CSR cache pre-seeded from the mapped
    arrays (no flattening), and the service's core — and, when saved,
    truss — decomposition caches are injected from the snapshot, so the
    cold-start cost is file mapping plus adjacency reconstruction: no
    peel runs before the first query.
    """
    from repro.index import InfluentialIndex
    from repro.serving.service import QueryService

    snapshot = load_snapshot(path, mmap=mmap)
    index = None
    if snapshot.index_payload is not None:
        index = InfluentialIndex.from_payload(snapshot.index_payload)
    return QueryService(
        snapshot.graph(),
        backend=backend,
        cache_size=cache_size,
        pool_capacity=pool_capacity,
        core_numbers=np.asarray(snapshot.core_numbers),
        truss_numbers=snapshot.truss_numbers,
        index=index,
    )
