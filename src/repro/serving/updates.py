"""Scoped cache invalidation for live edge updates.

:class:`~repro.serving.service.QueryService` used to answer any topology
change with ``replace_graph`` — a full reset of the engine pool, the
result cache and the truss decomposition, even for one inserted edge.
This module is the surgical alternative: it threads a
:class:`~repro.graphs.delta.GraphDelta` batch through the serving state
and drops **only what the batch can actually have changed**.

The scoping rests on the locality bound the delta reports
(:attr:`~repro.graphs.delta.DeltaReport.max_affected_core`, "kbar"):

* any degree constraint ``k > kbar`` has an *identical* maximal k-core
  (same vertices, same induced edges) before and after the batch, so the
  engine pool's per-k seed state and every cached result at such a k
  survive untouched;
* per-k seed state at ``k <= kbar`` is dropped (component partitions can
  merge/split there) and lazily rebuilt from the repaired core numbers;
* a pooled :class:`~repro.influential.expansion_csr.ComponentStructure`
  is a pure function of the topology *induced on its members*, so an LRU
  entry is dropped only when some applied edge has **both** endpoints
  inside its member set — structures for untouched communities survive
  even at affected ks;
* cached results for ``cohesion="truss"`` queries are all dropped (the
  truss lattice has no equally tight locality bound), and cached truss
  numbers are evicted only for the connected components containing a
  touched vertex, then recomputed lazily — per affected component, on
  the next truss query — because truss numbers never cross a component
  boundary.

Weight updates are untouched by all of this: they keep going through
:meth:`~repro.serving.service.QueryService.update_weights`, which
preserves every topology-derived cache.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.csr import CSRAdjacency
from repro.graphs.delta import DeltaReport
from repro.graphs.graph import Graph

__all__ = [
    "UpdateReport",
    "component_mask",
    "evict_truss_entries",
    "refresh_truss_numbers",
    "structure_survives",
]


@dataclass
class UpdateReport:
    """What one served edge-update batch changed (JSON-ready summary)."""

    delta: DeltaReport
    structures_dropped: int = 0
    truss_entries_dropped: int = 0
    results_dropped: int = 0

    def summary(self) -> dict[str, object]:
        """The payload served by ``POST /update-edges`` and the CLI."""
        delta = self.delta
        return {
            "inserted": len(delta.inserted),
            "deleted": len(delta.deleted),
            "n": delta.graph.n,
            "m": delta.graph.m,
            "touched": int(delta.touched.size),
            "cores_changed": delta.cores_changed,
            "max_affected_core": delta.max_affected_core,
            "strategy": delta.strategy,
            "structures_dropped": self.structures_dropped,
            "truss_entries_dropped": self.truss_entries_dropped,
            "results_dropped": self.results_dropped,
        }


def component_mask(csr: CSRAdjacency, seeds: np.ndarray) -> np.ndarray:
    """Boolean mask of every vertex connected to any seed vertex.

    One vectorised frontier BFS over the CSR — the helper the truss
    eviction uses to turn "touched vertices" into "affected components".
    """
    mask = np.zeros(csr.n, dtype=bool)
    frontier = np.unique(np.asarray(seeds, dtype=np.int64))
    if frontier.size == 0:
        return mask
    mask[frontier] = True
    while frontier.size:
        neigh = csr.gather(frontier)
        neigh = neigh[~mask[neigh]]
        if neigh.size == 0:
            break
        mask[neigh] = True
        frontier = np.unique(neigh)
    return mask


def structure_survives(
    members: np.ndarray, edges: tuple[tuple[int, int], ...]
) -> bool:
    """True when no applied edge lies inside ``members`` (sorted ids).

    A cached component structure only encodes the topology induced on its
    member set, so an edge with at most one endpoint inside leaves every
    cached array (local CSR, degrees, cascade predicate, articulation)
    valid.
    """
    for u, v in edges:
        lo = int(np.searchsorted(members, u))
        if lo < members.size and members[lo] == u:
            hi = int(np.searchsorted(members, v))
            if hi < members.size and members[hi] == v:
                return False
    return True


def evict_truss_entries(
    truss_numbers: dict[tuple[int, int], int], affected: np.ndarray
) -> tuple[dict[tuple[int, int], int], int]:
    """Drop cached truss numbers inside affected components.

    ``affected`` is a boolean vertex mask (see :func:`component_mask`).
    Truss numbers are triangle-derived and triangles never span
    components, so entries fully outside the mask stay exact.  Returns
    the surviving dict and how many entries were evicted.
    """
    kept = {
        edge: t
        for edge, t in truss_numbers.items()
        if not (affected[edge[0]] or affected[edge[1]])
    }
    return kept, len(truss_numbers) - len(kept)


def refresh_truss_numbers(
    graph: Graph,
    truss_numbers: dict[tuple[int, int], int],
    pending: np.ndarray,
    backend: str = "auto",
) -> dict[tuple[int, int], int]:
    """Recompute truss numbers for the pending components and merge.

    ``pending`` is a vertex mask closed under connectivity (a union of
    whole components of ``graph``).  The recomputation runs on a same-n
    graph whose adjacency keeps only the pending components — vertex ids
    are unchanged, so the freshly peeled edge keys merge straight into
    the surviving dict.
    """
    from repro.truss.decomposition import truss_decomposition

    adjacency = [
        graph.adjacency[v] if pending[v] else set() for v in range(graph.n)
    ]
    induced = Graph(adjacency, graph.weights, _trusted=True)
    merged = dict(truss_numbers)
    merged.update(truss_decomposition(induced, backend=backend))
    return merged
