"""Solution certification against Definitions 3, 4 and 5.

Solvers return :class:`~repro.influential.community.Community` objects;
these checkers re-derive every claimed property from the graph:

* cohesiveness — every member has >= k neighbours inside (Def. 3.1);
* connectivity — the induced subgraph is connected (Def. 3.2);
* value — the stored influence value matches a fresh evaluation;
* maximality — no *one-vertex extension* keeps the value (a sound,
  polynomial necessary condition for Def. 3.3; the exponential full check
  lives in the brute-force oracle);
* size and disjointness for Definitions 4-5.

``certify_*`` raise :class:`CertificationError` with a precise message;
``check_*`` return booleans for use in property tests.
"""

from __future__ import annotations

import math

from repro.aggregators.base import Aggregator
from repro.aggregators.registry import get_aggregator
from repro.errors import CertificationError
from repro.graphs.components import is_connected_subset
from repro.graphs.graph import Graph
from repro.influential.community import Community
from repro.influential.results import ResultSet

#: Relative tolerance when comparing recomputed influence values.
VALUE_RTOL = 1e-9


def check_cohesive(graph: Graph, vertices: frozenset[int], k: int) -> bool:
    """Definition 3 constraint (1): minimum induced degree >= k."""
    adj = graph.adjacency
    return bool(vertices) and all(len(adj[v] & vertices) >= k for v in vertices)


def check_connected(graph: Graph, vertices: frozenset[int]) -> bool:
    """Definition 3 constraint (2): induced subgraph connected."""
    return is_connected_subset(graph, vertices)


def check_maximal(
    graph: Graph,
    vertices: frozenset[int],
    k: int,
    aggregator: Aggregator,
) -> bool:
    """One-vertex-extension maximality (necessary condition for Def. 3.3).

    If adding any single adjacent vertex yields a connected cohesive
    superset with the *same* value, the community is certainly not
    maximal.  (The converse needs multi-vertex extensions; the brute-force
    oracle covers that on small graphs.)
    """
    value = aggregator.value(graph, vertices)
    adj = graph.adjacency
    boundary = set()
    for v in vertices:
        boundary |= adj[v]
    boundary -= vertices
    for candidate in boundary:
        extended = vertices | {candidate}
        if not check_cohesive(graph, extended, k):
            continue
        extended_value = aggregator.value(graph, extended)
        if math.isclose(extended_value, value, rel_tol=VALUE_RTOL):
            return False
    return True


def certify_community(
    graph: Graph,
    community: Community,
    k: int | None = None,
    s: int | None = None,
    require_maximal: bool = False,
) -> None:
    """Raise :class:`CertificationError` unless ``community`` is valid.

    Checks cohesiveness, connectivity, stored-value consistency, the size
    bound when ``s`` is given, and (optionally) one-vertex-extension
    maximality.
    """
    degree_bound = k if k is not None else community.k
    members = community.vertices
    if not check_cohesive(graph, members, degree_bound):
        raise CertificationError(
            f"community {sorted(members)} violates the degree constraint "
            f"k={degree_bound}"
        )
    if not check_connected(graph, members):
        raise CertificationError(f"community {sorted(members)} is not connected")
    aggregator = get_aggregator(community.aggregator)
    recomputed = aggregator.value(graph, members)
    if not math.isclose(recomputed, community.value, rel_tol=VALUE_RTOL):
        raise CertificationError(
            f"stored value {community.value} != recomputed {recomputed} "
            f"under {community.aggregator}"
        )
    if s is not None and community.size > s:
        raise CertificationError(
            f"community size {community.size} exceeds the bound s={s}"
        )
    if require_maximal and not check_maximal(graph, members, degree_bound, aggregator):
        raise CertificationError(
            f"community {sorted(members)} has a same-value one-vertex extension"
        )


def certify_result_set(
    graph: Graph,
    results: ResultSet,
    k: int | None = None,
    s: int | None = None,
    non_overlapping: bool = False,
    require_maximal: bool = False,
) -> None:
    """Certify every community plus ranking order and (optionally)
    pairwise disjointness (Definition 5)."""
    previous = math.inf
    for community in results:
        certify_community(graph, community, k=k, s=s, require_maximal=require_maximal)
        if community.value > previous + VALUE_RTOL:
            raise CertificationError("result set is not sorted by value")
        previous = community.value
    if non_overlapping and not results.is_pairwise_disjoint():
        raise CertificationError("result set violates the non-overlapping constraint")
