"""Executable reduction gadgets from the paper's hardness proofs.

Each function constructs the graph transformation used in a Section III
proof, returning the transformed graph plus whatever bookkeeping the
argument needs.  Tests instantiate the gadgets on small inputs and verify
the stated equivalences hold when solved exactly — i.e. the proofs
"execute".

* Theorem 1 (avg is NP-hard): zero-weight copy of G plus one universal
  vertex of weight ``wc``; G has a (k-1)-clique iff the top-1 k-influential
  community under avg has value ``wc / (k + 1)``.
* Theorem 3 (no constant-factor approximation for avg): all-``wc`` copy of
  G plus a universal vertex of weight ``|V| * wc``, tying avg quality to
  the MSMD_k minimisation.
* Theorem 4 (size-constrained sum is NP-hard): uniform weights and
  ``s = k + 1`` make the top-1 size-constrained community under sum a
  (k+1)-clique detector.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.graphs.builder import GraphBuilder
from repro.graphs.graph import Graph


def _with_universal_vertex(
    graph: Graph, weights: np.ndarray, universal_weight: float
) -> tuple[Graph, int]:
    """Copy ``graph``, append a vertex adjacent to everything."""
    n = graph.n
    builder = GraphBuilder(n)
    for u, v in graph.edges():
        builder.add_edge(u, v)
    builder.set_weights(weights)
    hub = builder.add_vertex(weight=universal_weight)
    for v in range(n):
        builder.add_edge(v, hub)
    return builder.build(), hub


def avg_hardness_gadget(graph: Graph, wc: float = 100.0) -> tuple[Graph, int]:
    """Theorem 1 construction.

    Every original vertex gets weight 0; a new universal vertex ``u`` of
    weight ``wc`` is attached to all of them.  In the result, a k-influential
    community achieving avg value ``wc / (k + 1)`` must be ``u`` plus a
    (k-1)-clique of G: u contributes the only weight, so avg maximisation
    is community-size minimisation, and the smallest connected min-degree-k
    subgraph containing u has k+1 vertices exactly when G has a
    (k-1)-clique.  Returns (gadget graph, hub vertex id).
    """
    if wc <= 0:
        raise ReproError(f"hub weight must be positive, got {wc}")
    zero_weights = np.zeros(graph.n, dtype=np.float64)
    return _with_universal_vertex(graph, zero_weights, wc)


def avg_gadget_certificate_value(k: int, wc: float = 100.0) -> float:
    """The avg value witnessing a (k-1)-clique: ``wc / (k + 1)``."""
    return wc / (k + 1)


def inapproximability_gadget(graph: Graph, wc: float = 1.0) -> tuple[Graph, int]:
    """Theorem 3 construction.

    Every original vertex gets weight ``wc``; the universal vertex gets
    ``|V| * wc``.  An alpha-approximation for top-1 (k+1)-influential
    community under avg on this gadget yields a (4/alpha)-approximation
    for MSMD_k on G — tests verify the value identity
    ``avg(S + hub) = (|S| + |V|) * wc / (|S| + 1)`` that the proof rests on.
    """
    if wc <= 0:
        raise ReproError(f"base weight must be positive, got {wc}")
    uniform = np.full(graph.n, wc, dtype=np.float64)
    return _with_universal_vertex(graph, uniform, graph.n * wc)


def sum_size_constrained_gadget(graph: Graph) -> Graph:
    """Theorem 4 construction: unit weights, solve with ``s = k + 1``.

    With all weights 1 and size bound k+1, a size-constrained community of
    sum value k+1 exists iff G contains a (k+1)-clique (a connected
    subgraph on k+1 vertices with minimum degree k is precisely K_{k+1}).
    """
    return graph.with_weights(np.ones(graph.n, dtype=np.float64))


def clique_decision_via_tic(graph: Graph, clique_size: int) -> bool:
    """Decide "does G contain a clique of size q" through the TIC problem.

    Instantiates the Theorem 4 reduction and solves it with the exact
    size-constrained solver: q-clique exists iff the top-1 community with
    k = q - 1, s = q under sum has value q.  Exponential (it drives
    TIC-EXACT); only sensible on small graphs — which is the point: the
    reduction direction "clique solves TIC -> TIC at least as hard" is
    what the tests check.
    """
    if clique_size < 2:
        raise ReproError(f"clique size must be >= 2, got {clique_size}")
    if clique_size > graph.n:
        return False
    from repro.influential.exact import tic_exact

    gadget = sum_size_constrained_gadget(graph)
    k = clique_size - 1
    result = tic_exact(gadget, k=k, r=1, s=clique_size, f="sum")
    return len(result) > 0 and result[0].value == float(clique_size)
