"""Hardness constructions (paper Section III) and solution certification.

:mod:`repro.hardness.reductions` builds the reduction gadgets of Theorems
1, 3 and 4 as executable graph transformations — tests run solvers on the
gadgets to confirm the reductions behave as the proofs claim.
:mod:`repro.hardness.certificates` validates claimed solutions against
Definitions 3-5 (the postcondition checker for every solver).
"""

from repro.hardness.certificates import (
    certify_community,
    certify_result_set,
    check_cohesive,
    check_connected,
    check_maximal,
)
from repro.hardness.reductions import (
    avg_hardness_gadget,
    clique_decision_via_tic,
    inapproximability_gadget,
    sum_size_constrained_gadget,
)

__all__ = [
    "avg_hardness_gadget",
    "certify_community",
    "certify_result_set",
    "check_cohesive",
    "check_connected",
    "check_maximal",
    "clique_decision_via_tic",
    "inapproximability_gadget",
    "sum_size_constrained_gadget",
]
