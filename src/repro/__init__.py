"""Top-r influential community search under aggregation functions.

A complete Python reproduction of Peng, Bian, Li, Wang, Yu — "Finding
Top-r Influential Communities under Aggregation Functions", ICDE 2022
(arXiv:2207.01029): the community model, all algorithms (naive, improved
epsilon-approximate, exact, local search, min/max baselines), the
non-overlapping variants, the hardness gadgets, and the full benchmark
harness over synthetic stand-ins of the paper's datasets.

Quickstart::

    from repro import figure1_graph, top_r_communities

    graph = figure1_graph()
    result = top_r_communities(graph, k=2, r=2, f="sum")
    for community in result:
        print(sorted(community.vertices), community.value)
"""

from repro._version import __version__
from repro.aggregators import get_aggregator
from repro.graphs import Graph, GraphBuilder
from repro.graphs.generators import (
    figure1_graph,
    generate_aminer,
    snap_like_graph,
)
from repro.influential import Community, top_r_communities

__all__ = [
    "Community",
    "Graph",
    "GraphBuilder",
    "__version__",
    "figure1_graph",
    "generate_aminer",
    "get_aggregator",
    "snap_like_graph",
    "top_r_communities",
]
