"""Induced-subgraph helpers.

``G[H]`` — the subgraph induced by a vertex set ``H`` (paper Table II) —
appears in every definition.  Solvers mostly avoid materialising it (they
work on the base graph restricted by a set), but tests, the certifier and
the exact solver want a real :class:`Graph`, which
:func:`induced_subgraph` provides together with the id remapping.

When the parent graph has already materialised its CSR backend, the child
graph's CSR arrays are derived from the parent's with one vectorised
gather-filter-remap pass and attached to the returned graph, so induced
subgraphs never pay the set-flattening cost again.  The subset statistics
(:func:`induced_degrees`, :func:`induced_edge_count`,
:func:`min_induced_degree`) likewise run over flat arrays under the CSR
backend and over set intersections under the set backend.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.graphs.backend import resolve_backend
from repro.graphs.csr import CSRAdjacency, membership_mask
from repro.graphs.graph import Graph


def induced_subgraph(
    graph: Graph, vertices: Iterable[int]
) -> tuple[Graph, dict[int, int]]:
    """Materialise ``G[H]`` as a standalone graph.

    Returns ``(subgraph, mapping)`` where ``mapping[original_id] = new_id``.
    New ids follow sorted original order, so the mapping is deterministic.
    """
    ordered = sorted(set(vertices))
    for v in ordered:
        graph.check_vertex(v)
    mapping = {v: i for i, v in enumerate(ordered)}
    member = set(ordered)
    adj: list[set[int]] = [set() for __ in ordered]
    base = graph.adjacency
    for v in ordered:
        nv = mapping[v]
        for u in base[v] & member:
            adj[nv].add(mapping[u])
    weights = np.asarray([graph.weight(v) for v in ordered], dtype=np.float64)
    labels = None
    if graph.labels is not None:
        labels = [graph.labels[v] for v in ordered]
    sub = Graph(adj, weights, labels=labels, _trusted=True)
    if graph.has_csr:
        sub._csr = _induced_csr(graph.csr, ordered)
    return sub, mapping


def _induced_csr(csr: CSRAdjacency, ordered: list[int]) -> CSRAdjacency:
    """Child CSR arrays from the parent's, without touching Python sets.

    Gather the members' neighbour runs, drop non-members, remap ids via a
    lookup array.  Remapping is monotone (members are sorted), so the
    child's neighbour runs stay sorted.
    """
    members = np.asarray(ordered, dtype=np.int64)
    remap = np.full(csr.n, -1, dtype=np.int64)
    remap[members] = np.arange(len(members), dtype=np.int64)
    mask = np.zeros(csr.n, dtype=bool)
    mask[members] = True
    neigh, owners, __ = csr.gather_full(members)
    inside = mask[neigh]
    counts = np.bincount(remap[owners[inside]], minlength=len(members))
    indptr = np.zeros(len(members) + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return CSRAdjacency(indptr, remap[neigh[inside]])


def induced_degrees(
    graph: Graph, vertices: Iterable[int], backend: str = "auto"
) -> dict[int, int]:
    """``d(v, H)`` for every ``v`` in ``H``, without building ``G[H]``."""
    subset = set(vertices)
    if _use_csr_stats(graph, subset, backend):
        degrees = _subset_degree_array(graph, subset)
        return {v: int(degrees[v]) for v in subset}
    adj = graph.adjacency
    return {v: len(adj[v] & subset) for v in subset}


def induced_edge_count(
    graph: Graph, vertices: Iterable[int], backend: str = "auto"
) -> int:
    """Number of edges inside ``G[H]``."""
    subset = set(vertices)
    if _use_csr_stats(graph, subset, backend):
        degrees = _subset_degree_array(graph, subset)
        return int(degrees.sum()) // 2
    adj = graph.adjacency
    return sum(len(adj[v] & subset) for v in subset) // 2


def min_induced_degree(
    graph: Graph, vertices: Iterable[int], backend: str = "auto"
) -> int:
    """``delta(H)``: minimum degree inside the induced subgraph.

    Returns 0 for the empty set (matching the convention that an empty
    subgraph is never a k-core for k >= 1).
    """
    subset = set(vertices)
    if not subset:
        return 0
    if _use_csr_stats(graph, subset, backend):
        degrees = _subset_degree_array(graph, subset)
        return int(degrees[np.fromiter(subset, dtype=np.int64)].min())
    adj = graph.adjacency
    return min(len(adj[v] & subset) for v in subset)


def _use_csr_stats(graph: Graph, subset: set[int], backend: str) -> bool:
    """Route subset statistics: the CSR path's full-length mask/bincount is
    O(n) per call, so subsets tiny relative to the graph stay on the
    subset-proportional set intersections (mirrors kcore_of_subset)."""
    return resolve_backend(backend) == "csr" and len(subset) * 16 >= graph.n


def _subset_degree_array(graph: Graph, subset: set[int]) -> np.ndarray:
    return graph.csr.subset_degrees(membership_mask(graph.n, subset))
