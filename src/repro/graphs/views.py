"""Induced-subgraph helpers.

``G[H]`` — the subgraph induced by a vertex set ``H`` (paper Table II) —
appears in every definition.  Solvers mostly avoid materialising it (they
work on the base graph restricted by a set), but tests, the certifier and
the exact solver want a real :class:`Graph`, which
:func:`induced_subgraph` provides together with the id remapping.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.graphs.graph import Graph


def induced_subgraph(
    graph: Graph, vertices: Iterable[int]
) -> tuple[Graph, dict[int, int]]:
    """Materialise ``G[H]`` as a standalone graph.

    Returns ``(subgraph, mapping)`` where ``mapping[original_id] = new_id``.
    New ids follow sorted original order, so the mapping is deterministic.
    """
    ordered = sorted(set(vertices))
    for v in ordered:
        graph.check_vertex(v)
    mapping = {v: i for i, v in enumerate(ordered)}
    member = set(ordered)
    adj: list[set[int]] = [set() for __ in ordered]
    base = graph.adjacency
    for v in ordered:
        nv = mapping[v]
        for u in base[v] & member:
            adj[nv].add(mapping[u])
    weights = np.asarray([graph.weight(v) for v in ordered], dtype=np.float64)
    labels = None
    if graph.labels is not None:
        labels = [graph.labels[v] for v in ordered]
    return Graph(adj, weights, labels=labels, _trusted=True), mapping


def induced_degrees(graph: Graph, vertices: Iterable[int]) -> dict[int, int]:
    """``d(v, H)`` for every ``v`` in ``H``, without building ``G[H]``."""
    subset = set(vertices)
    adj = graph.adjacency
    return {v: len(adj[v] & subset) for v in subset}


def induced_edge_count(graph: Graph, vertices: Iterable[int]) -> int:
    """Number of edges inside ``G[H]``."""
    subset = set(vertices)
    adj = graph.adjacency
    return sum(len(adj[v] & subset) for v in subset) // 2


def min_induced_degree(graph: Graph, vertices: Iterable[int]) -> int:
    """``delta(H)``: minimum degree inside the induced subgraph.

    Returns 0 for the empty set (matching the convention that an empty
    subgraph is never a k-core for k >= 1).
    """
    subset = set(vertices)
    if not subset:
        return 0
    adj = graph.adjacency
    return min(len(adj[v] & subset) for v in subset)
