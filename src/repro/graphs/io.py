"""Reading and writing graphs in the SNAP-style edge-list format.

The paper downloads its datasets from the Stanford Network Analysis Platform
whose files are whitespace-separated ``u v`` lines with ``#`` comments.  We
read exactly that dialect (tolerating duplicate and reversed edges, and
remapping arbitrary ids to dense 0..n-1), and we write it back so generated
stand-in datasets can be cached on disk and inspected with standard tools.

Vertex weights travel in a companion file of ``vertex weight`` lines.
Published SNAP graphs carry no influence weights at all, so
:func:`synthetic_influence_weights` derives plausible ones from graph
structure (degree, core number, PageRank) or a seeded random model —
enough for every benchmark in this repo, including the Figure 14 case
study, to run on real downloaded edge lists via ``repro ingest``.
"""

from __future__ import annotations

import os
from typing import Iterable, TextIO

import numpy as np

from repro.errors import GraphError, SpecError, WeightError
from repro.graphs.builder import GraphBuilder
from repro.graphs.graph import Graph

#: Synthetic-influence weight models ``ingest_edge_list`` understands.
WEIGHT_MODES = ("degree", "core", "pagerank", "lognormal", "uniform")


def _open_for_read(path: str | os.PathLike[str]) -> TextIO:
    return open(path, "r", encoding="utf-8")


def load_edge_list(
    path: str | os.PathLike[str],
    comment: str = "#",
) -> tuple[Graph, dict[int, int]]:
    """Load a SNAP-style edge list.

    Returns ``(graph, id_map)`` where ``id_map[original_id] = dense_id``.
    Self-loops are dropped (SNAP files occasionally contain them); duplicate
    and mirrored edges collapse to one undirected edge.
    """
    id_map: dict[int, int] = {}
    edges: list[tuple[int, int]] = []
    with _open_for_read(path) as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line or line.startswith(comment):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphError(f"{path}:{lineno}: expected 'u v', got {line!r}")
            try:
                raw_u, raw_v = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise GraphError(
                    f"{path}:{lineno}: non-integer endpoint in {line!r}"
                ) from exc
            if raw_u == raw_v:
                continue
            for raw in (raw_u, raw_v):
                if raw not in id_map:
                    id_map[raw] = len(id_map)
            edges.append((id_map[raw_u], id_map[raw_v]))
    builder = GraphBuilder(len(id_map))
    builder.add_edges(edges)
    return builder.build(), id_map


def save_edge_list(
    graph: Graph,
    path: str | os.PathLike[str],
    header: str | None = None,
) -> None:
    """Write the graph as ``u v`` lines (each undirected edge once)."""
    with open(path, "w", encoding="utf-8") as f:
        if header:
            for line in header.splitlines():
                f.write(f"# {line}\n")
        f.write(f"# nodes: {graph.n} edges: {graph.m}\n")
        for u, v in graph.edges():
            f.write(f"{u} {v}\n")


def load_weights(
    path: str | os.PathLike[str],
    n: int,
    comment: str = "#",
) -> np.ndarray:
    """Load a ``vertex weight`` file into a dense array of length ``n``.

    Missing vertices default to weight 0; out-of-range ids are an error.
    """
    weights = np.zeros(n, dtype=np.float64)
    with _open_for_read(path) as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line or line.startswith(comment):
                continue
            parts = line.split()
            if len(parts) != 2:
                raise WeightError(
                    f"{path}:{lineno}: expected 'vertex weight', got {line!r}"
                )
            try:
                v, w = int(parts[0]), float(parts[1])
            except ValueError as exc:
                raise WeightError(f"{path}:{lineno}: malformed line {line!r}") from exc
            if not 0 <= v < n:
                raise WeightError(f"{path}:{lineno}: vertex {v} out of range [0,{n})")
            if w < 0 or not np.isfinite(w):
                raise WeightError(f"{path}:{lineno}: invalid weight {w}")
            weights[v] = w
    return weights


def save_weights(
    weights: Iterable[float],
    path: str | os.PathLike[str],
) -> None:
    """Write weights as ``vertex weight`` lines."""
    with open(path, "w", encoding="utf-8") as f:
        f.write("# vertex weight\n")
        for v, w in enumerate(weights):
            f.write(f"{v} {w:.12g}\n")


def _pagerank(graph: Graph, damping: float = 0.85, iterations: int = 30) -> np.ndarray:
    """Standard power-iteration PageRank over the undirected CSR."""
    n = graph.n
    rank = np.full(n, 1.0 / n)
    csr = graph.csr
    degrees = graph.degrees().astype(np.float64)
    # Isolated vertices contribute their whole mass as teleport.
    safe_degrees = np.where(degrees > 0, degrees, 1.0)
    for __ in range(iterations):
        share = rank / safe_degrees
        spread = np.zeros(n)
        np.add.at(spread, csr.indices, np.repeat(share, np.diff(csr.indptr)))
        dangling = float(rank[degrees == 0].sum())
        rank = (1.0 - damping) / n + damping * (spread + dangling / n)
    return rank


def synthetic_influence_weights(
    graph: Graph,
    mode: str = "degree",
    seed: int | None = None,
) -> np.ndarray:
    """Derive an influence-weight vector for a graph that ships without one.

    Structural modes rank vertices the way the paper's citation-derived
    weights do — well-connected authors are influential:

    * ``degree`` — ``deg(v) + 1`` (the +1 keeps isolated vertices valid);
    * ``core`` — ``core(v) + 1``, a robustness-flavoured variant;
    * ``pagerank`` — PageRank scaled to mean 1, the smoothest proxy.

    Random modes draw i.i.d. weights from a seeded generator:

    * ``lognormal`` — heavy-tailed, shaped like real citation counts;
    * ``uniform`` — ``U[0, 1)``, the repo's benchmark default.

    All modes return finite non-negative float64 (what ``Graph`` demands)
    and are deterministic given ``(graph, mode, seed)``.
    """
    if mode not in WEIGHT_MODES:
        raise SpecError(
            f"unknown weight mode {mode!r}; expected one of {WEIGHT_MODES}"
        )
    n = graph.n
    if mode == "degree":
        return graph.degrees().astype(np.float64) + 1.0
    if mode == "core":
        from repro.core.decomposition import core_decomposition

        return core_decomposition(graph).astype(np.float64) + 1.0
    if mode == "pagerank":
        if n == 0:
            return np.zeros(0, dtype=np.float64)
        return _pagerank(graph) * n
    rng = np.random.default_rng(seed)
    if mode == "lognormal":
        return rng.lognormal(mean=0.0, sigma=1.0, size=n)
    return rng.uniform(0.0, 1.0, size=n)


def degree_quantile_labels(
    graph: Graph,
    names: tuple[str, ...] = ("deg:low", "deg:mid", "deg:high"),
) -> list[str]:
    """Bucket vertices into degree terciles (or ``len(names)``-tiles).

    Gives an unlabeled ingested graph just enough structure for
    label-constrained queries: the shared ``deg:`` prefix exercises
    prefix predicates, the individual buckets exact/any ones.  Bucket
    edges come from quantiles of the degree distribution, so every name
    is populated on any graph with degree variance.
    """
    if not names:
        raise SpecError("need at least one label bucket name")
    degrees = graph.degrees().astype(np.float64)
    if graph.n == 0:
        return []
    quantiles = np.quantile(degrees, np.linspace(0, 1, len(names) + 1)[1:-1])
    buckets = np.searchsorted(quantiles, degrees, side="right")
    return [names[int(bucket)] for bucket in buckets]


def ingest_edge_list(
    path: str | os.PathLike[str],
    weights: str = "degree",
    seed: int | None = None,
    labels: str | None = None,
    comment: str = "#",
) -> tuple[Graph, dict[int, int]]:
    """Load a SNAP edge list and dress it for influential-community search.

    One call gives a fully served-ready graph: dense ids, a synthetic
    influence weighting (:func:`synthetic_influence_weights` mode), and —
    with ``labels="degree"`` — degree-tercile vertex labels so constrained
    queries work out of the box.  Returns ``(graph, id_map)`` like
    :func:`load_edge_list`.
    """
    graph, id_map = load_edge_list(path, comment=comment)
    graph = graph.with_weights(synthetic_influence_weights(graph, weights, seed))
    if labels is not None and labels != "none":
        if labels != "degree":
            raise SpecError(
                f"unknown label mode {labels!r}; expected 'degree' or 'none'"
            )
        graph = graph.with_labels(degree_quantile_labels(graph))
    return graph, id_map
