"""Reading and writing graphs in the SNAP-style edge-list format.

The paper downloads its datasets from the Stanford Network Analysis Platform
whose files are whitespace-separated ``u v`` lines with ``#`` comments.  We
read exactly that dialect (tolerating duplicate and reversed edges, and
remapping arbitrary ids to dense 0..n-1), and we write it back so generated
stand-in datasets can be cached on disk and inspected with standard tools.

Vertex weights travel in a companion file of ``vertex weight`` lines.
"""

from __future__ import annotations

import os
from typing import Iterable, TextIO

import numpy as np

from repro.errors import GraphError, WeightError
from repro.graphs.builder import GraphBuilder
from repro.graphs.graph import Graph


def _open_for_read(path: str | os.PathLike[str]) -> TextIO:
    return open(path, "r", encoding="utf-8")


def load_edge_list(
    path: str | os.PathLike[str],
    comment: str = "#",
) -> tuple[Graph, dict[int, int]]:
    """Load a SNAP-style edge list.

    Returns ``(graph, id_map)`` where ``id_map[original_id] = dense_id``.
    Self-loops are dropped (SNAP files occasionally contain them); duplicate
    and mirrored edges collapse to one undirected edge.
    """
    id_map: dict[int, int] = {}
    edges: list[tuple[int, int]] = []
    with _open_for_read(path) as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line or line.startswith(comment):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphError(f"{path}:{lineno}: expected 'u v', got {line!r}")
            try:
                raw_u, raw_v = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise GraphError(
                    f"{path}:{lineno}: non-integer endpoint in {line!r}"
                ) from exc
            if raw_u == raw_v:
                continue
            for raw in (raw_u, raw_v):
                if raw not in id_map:
                    id_map[raw] = len(id_map)
            edges.append((id_map[raw_u], id_map[raw_v]))
    builder = GraphBuilder(len(id_map))
    builder.add_edges(edges)
    return builder.build(), id_map


def save_edge_list(
    graph: Graph,
    path: str | os.PathLike[str],
    header: str | None = None,
) -> None:
    """Write the graph as ``u v`` lines (each undirected edge once)."""
    with open(path, "w", encoding="utf-8") as f:
        if header:
            for line in header.splitlines():
                f.write(f"# {line}\n")
        f.write(f"# nodes: {graph.n} edges: {graph.m}\n")
        for u, v in graph.edges():
            f.write(f"{u} {v}\n")


def load_weights(
    path: str | os.PathLike[str],
    n: int,
    comment: str = "#",
) -> np.ndarray:
    """Load a ``vertex weight`` file into a dense array of length ``n``.

    Missing vertices default to weight 0; out-of-range ids are an error.
    """
    weights = np.zeros(n, dtype=np.float64)
    with _open_for_read(path) as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line or line.startswith(comment):
                continue
            parts = line.split()
            if len(parts) != 2:
                raise WeightError(
                    f"{path}:{lineno}: expected 'vertex weight', got {line!r}"
                )
            try:
                v, w = int(parts[0]), float(parts[1])
            except ValueError as exc:
                raise WeightError(f"{path}:{lineno}: malformed line {line!r}") from exc
            if not 0 <= v < n:
                raise WeightError(f"{path}:{lineno}: vertex {v} out of range [0,{n})")
            if w < 0 or not np.isfinite(w):
                raise WeightError(f"{path}:{lineno}: invalid weight {w}")
            weights[v] = w
    return weights


def save_weights(
    weights: Iterable[float],
    path: str | os.PathLike[str],
) -> None:
    """Write weights as ``vertex weight`` lines."""
    with open(path, "w", encoding="utf-8") as f:
        f.write("# vertex weight\n")
        for v, w in enumerate(weights):
            f.write(f"{v} {w:.12g}\n")
