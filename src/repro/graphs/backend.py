"""Backend selection for the graph kernels.

Two implementations of every hot kernel coexist:

* ``"set"`` — the original pure-Python paths over the list-of-sets
  adjacency (reference semantics, kept for parity checking);
* ``"csr"`` — vectorised numpy paths over :class:`repro.graphs.csr.CSRAdjacency`
  flat arrays (the default).

Kernels take a ``backend="auto"`` keyword; ``"auto"`` resolves to the
ambient default, which :func:`use_backend` scopes for a block — this is how
:func:`repro.influential.api.top_r_communities` threads one ``backend=``
argument through every solver without each call site learning a new
parameter.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator

from repro.errors import GraphError

#: Recognised backend names ("auto" resolves to the current default).
BACKENDS = ("set", "csr")

#: Environment variable overriding the initial default backend.  CI uses it
#: to run the whole test suite on a {set, csr} matrix without touching any
#: call site; an unknown value fails fast at import rather than silently
#: running the wrong engine.
BACKEND_ENV_VAR = "REPRO_GRAPH_BACKEND"


def _initial_default() -> str:
    name = os.environ.get(BACKEND_ENV_VAR, "csr")
    if name not in BACKENDS:
        raise GraphError(
            f"{BACKEND_ENV_VAR}={name!r} is not a graph backend; "
            f"expected one of {BACKENDS}"
        )
    return name


# A ContextVar rather than a module global: concurrent queries (threads or
# asyncio tasks) scoping different backends via use_backend() cannot race
# each other's "auto" resolutions.
_default_backend: ContextVar[str] = ContextVar(
    "repro_graph_backend", default=_initial_default()
)


def _check(name: str) -> None:
    if name not in BACKENDS:
        raise GraphError(
            f"unknown graph backend {name!r}; expected one of {BACKENDS} or 'auto'"
        )


def get_default_backend() -> str:
    """The backend that ``backend="auto"`` currently resolves to."""
    return _default_backend.get()


def set_default_backend(name: str) -> None:
    """Set the default backend for the current context (and contexts later
    forked from it)."""
    _check(name)
    _default_backend.set(name)


def resolve_backend(backend: str | None = None) -> str:
    """Resolve a ``backend=`` argument to a concrete backend name."""
    if backend is None or backend == "auto":
        return _default_backend.get()
    _check(backend)
    return backend


@contextmanager
def use_backend(backend: str | None) -> Iterator[str]:
    """Scope the default backend for a ``with`` block (re-entrant)."""
    resolved = resolve_backend(backend)
    token = _default_backend.set(resolved)
    try:
        yield resolved
    finally:
        _default_backend.reset(token)
