"""Graph substrate: weighted undirected graphs plus IO and generators.

The paper's algorithms all operate on an undirected graph ``G = (V, E, w)``
with non-negative vertex weights (Section II).  :class:`Graph` is the
immutable runtime representation; :class:`GraphBuilder` assembles one from
edges; :mod:`repro.graphs.generators` produces the synthetic datasets used
in place of the SNAP downloads (see DESIGN.md Section 4).
"""

from repro.graphs.backend import (
    BACKENDS,
    get_default_backend,
    resolve_backend,
    set_default_backend,
    use_backend,
)
from repro.graphs.builder import GraphBuilder
from repro.graphs.components import (
    bfs_order,
    connected_components,
    connected_components_of,
    is_connected_subset,
)
from repro.graphs.csr import CSRAdjacency
from repro.graphs.delta import DeltaReport, GraphDelta
from repro.graphs.graph import Graph
from repro.graphs.io import (
    load_edge_list,
    load_weights,
    save_edge_list,
    save_weights,
)
from repro.graphs.lazy import LazyAdjacency
from repro.graphs.views import induced_degrees, induced_edge_count, induced_subgraph

__all__ = [
    "BACKENDS",
    "CSRAdjacency",
    "DeltaReport",
    "Graph",
    "GraphBuilder",
    "GraphDelta",
    "LazyAdjacency",
    "bfs_order",
    "get_default_backend",
    "resolve_backend",
    "set_default_backend",
    "use_backend",
    "connected_components",
    "connected_components_of",
    "induced_degrees",
    "induced_edge_count",
    "induced_subgraph",
    "is_connected_subset",
    "load_edge_list",
    "load_weights",
    "save_edge_list",
    "save_weights",
]
