"""Hand-built example graphs from the paper.

:func:`figure1_graph` reconstructs the 11-vertex running example (Figure 1)
whose top-r communities under sum/avg/min the paper works out in Examples 1
and 2; the integration tests verify our solvers reproduce those results.

Reconstruction notes
--------------------
The paper prints the weight multiset {2, 4, 6, 8, 10, 12, 14, 15, 20, 50,
62} (total 203) but the figure's vertex-weight placement cannot be read
from the extracted text, and the numbers quoted across Examples 1-2 and the
Theorem 2 walkthrough are not simultaneously satisfiable by any placement
(e.g. no placement makes avg({v6, v7, v11}) exactly 22 while keeping the
total at 203).  We therefore re-derive a placement and edge set from the
*results* the paper states, all of which hold exactly on this graph:

* sum, k=2: top-2 = {v1..v11} (value 203) and {v1..v11} minus v3 (Ex. 1);
* sum, k=2, s=4: {v3, v6, v9, v10} is a size-constrained community with
  influence value 40 (Ex. 1);
* min, k=2: top-2 = {v5, v7, v8} then {v3, v9, v10} (Ex. 1, same order);
* avg, k=2: top-2 = {v1, v2, v4} (value 24) then {v6, v7, v11} (Ex. 1);
* avg, k=2, top-3 non-overlapping = {v1, v2, v4}, {v6, v7, v11},
  {v3, v9, v10} with values 24, 67/3, 38/3 (Ex. 2 — the paper prints the
  middle value as 22; with the printed weight multiset the exact value is
  67/3 ~ 22.33, the ranking is unchanged);
* {v5, v6, v7}, {v5, v7, v8}, {v6, v7, v11} are all mutually overlapping
  avg-communities (the Section II motivation for Definition 5).
"""

from __future__ import annotations

from repro.errors import GraphError
from repro.graphs.builder import GraphBuilder
from repro.graphs.graph import Graph

#: Vertex weights, keyed by the paper's 1-based names v1..v11.
FIGURE1_WEIGHTS = {
    1: 62.0,
    2: 4.0,
    3: 8.0,
    4: 6.0,
    5: 12.0,
    6: 2.0,
    7: 15.0,
    8: 14.0,
    9: 10.0,
    10: 20.0,
    11: 50.0,
}

#: Edges (1-based).  Triangles {1,2,4}, {5,6,7}, {3,9,10}, {6,7,11}-ish
#: cluster plus the connectors that make Examples 1-2 come out right.
FIGURE1_EDGES = [
    (1, 2),
    (1, 4),
    (2, 4),
    (2, 5),
    (5, 6),
    (5, 7),
    (6, 7),
    (5, 8),
    (7, 8),
    (6, 11),
    (7, 11),
    (3, 9),
    (3, 10),
    (9, 10),
    (6, 9),
    (6, 10),
]


def figure1_graph() -> Graph:
    """The 11-vertex running example of the paper (Figure 1).

    Vertices are 0-based internally: paper vertex ``v{i}`` is id ``i - 1``.
    Labels carry the paper names (``v1``..``v11``).
    """
    builder = GraphBuilder(11)
    for i in range(1, 12):
        builder.set_weight(i - 1, FIGURE1_WEIGHTS[i])
        builder.set_label(i - 1, f"v{i}")
    for u, v in FIGURE1_EDGES:
        builder.add_edge(u - 1, v - 1)
    return builder.build()


def paper_vertex_set(names: list[str] | str) -> frozenset[int]:
    """Translate paper-style names to 0-based ids.

    Accepts either a list like ``["v1", "v2"]`` or a compact string like
    ``"v1 v2 v4"``.
    """
    if isinstance(names, str):
        names = names.split()
    return frozenset(int(name.lstrip("v")) - 1 for name in names)


def barbell_graph(
    clique: int = 5,
    path: int = 2,
    weights: "list[float] | None" = None,
) -> Graph:
    """Two ``clique``-cliques joined by a ``path``-vertex bridge.

    The classic stress shape for community search: two dense communities
    (each a (clique-1)-core and clique-truss) whose only connection is a
    low-cohesion path that any k >= 2 peel severs.  Vertices are numbered
    left clique ``0..clique-1``, bridge ``clique..clique+path-1``, right
    clique onward; default weights are ``1, 2, 3, ...`` so the right
    clique strictly dominates the left under every aggregator.
    """
    if clique < 2:
        raise GraphError(f"barbell cliques need >= 2 vertices, got {clique}")
    if path < 0:
        raise GraphError(f"bridge length must be >= 0, got {path}")
    n = 2 * clique + path
    builder = GraphBuilder(n)
    left = list(range(clique))
    bridge = list(range(clique, clique + path))
    right = list(range(clique + path, n))
    for block in (left, right):
        for i, u in enumerate(block):
            for v in block[i + 1 :]:
                builder.add_edge(u, v)
    chain = [left[-1], *bridge, right[0]]
    for u, v in zip(chain, chain[1:]):
        builder.add_edge(u, v)
    if weights is None:
        weights = [float(v + 1) for v in range(n)]
    builder.set_weights(weights)
    return builder.build()


def tiny_kcore_graph() -> Graph:
    """A 7-vertex graph with a clear 3-core, used across unit tests.

    Vertices 0-3 form a K4 (the 3-core); 4 hangs off 0 and 1 (together they
    are the 2-core); 5-6 form a pendant edge (the 1-core fringe).  Weights
    are 1..7 so aggregation values are easy to compute by hand.
    """
    builder = GraphBuilder(7)
    for v in range(7):
        builder.set_weight(v, float(v + 1))
    builder.add_edges(
        [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (4, 0), (4, 1), (5, 6)]
    )
    return builder.build()
