"""Random graph models.

The paper analyses its algorithms under power-law degree distributions
(Definition 9: ``P(k) ~ k^-gamma`` with ``2 < gamma < 3``) and evaluates on
SNAP social networks, which empirically follow such laws.  This module
provides the generators from which the dataset stand-ins are assembled:

* :func:`gnp_random_graph`, :func:`gnm_random_graph` — Erdős–Rényi models,
  used by tests as unstructured baselines;
* :func:`barabasi_albert` — preferential attachment, gamma ~ 3;
* :func:`powerlaw_degree_sequence` + :func:`powerlaw_configuration_model` —
  draw a degree sequence from a truncated discrete power law and realise it
  with the erased configuration model (multi-edges and self-loops dropped),
  giving direct control of gamma;
* :func:`chung_lu` — expected-degree model, a faster power-law alternative.

All generators take a seed (or Generator) and are fully deterministic.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graphs.builder import GraphBuilder
from repro.graphs.graph import Graph
from repro.utils.rng import make_rng


def gnp_random_graph(
    n: int, p: float, seed: int | np.random.Generator | None = None
) -> Graph:
    """Erdős–Rényi G(n, p): each of the C(n,2) edges appears with prob p."""
    if not 0.0 <= p <= 1.0:
        raise GraphError(f"edge probability must be in [0, 1], got {p}")
    rng = make_rng(seed)
    builder = GraphBuilder(n)
    if p > 0 and n > 1:
        # Vectorised upper-triangle sampling: much faster than nested loops.
        iu, ju = np.triu_indices(n, k=1)
        mask = rng.random(len(iu)) < p
        for u, v in zip(iu[mask], ju[mask]):
            builder.add_edge(int(u), int(v))
    return builder.build()


def gnm_random_graph(
    n: int, m: int, seed: int | np.random.Generator | None = None
) -> Graph:
    """Erdős–Rényi G(n, m): exactly ``m`` distinct edges, chosen uniformly."""
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise GraphError(f"cannot place {m} edges in a graph with {n} vertices")
    rng = make_rng(seed)
    builder = GraphBuilder(n)
    chosen: set[tuple[int, int]] = set()
    while len(chosen) < m:
        u = int(rng.integers(n))
        v = int(rng.integers(n))
        if u == v:
            continue
        edge = (min(u, v), max(u, v))
        if edge not in chosen:
            chosen.add(edge)
            builder.add_edge(*edge)
    return builder.build()


def barabasi_albert(
    n: int, m: int, seed: int | np.random.Generator | None = None
) -> Graph:
    """Barabási–Albert preferential attachment with ``m`` edges per arrival.

    Starts from a star on ``m + 1`` vertices; every subsequent vertex
    attaches to ``m`` distinct existing vertices sampled proportionally to
    degree (implemented with the standard repeated-endpoints trick).
    """
    if m < 1 or n < m + 1:
        raise GraphError(f"need n >= m + 1 >= 2, got n={n}, m={m}")
    rng = make_rng(seed)
    builder = GraphBuilder(n)
    # repeated_nodes holds each vertex once per incident edge endpoint, so
    # uniform sampling from it is degree-proportional sampling.
    repeated_nodes: list[int] = []
    for v in range(1, m + 1):
        builder.add_edge(0, v)
        repeated_nodes.extend((0, v))
    for v in range(m + 1, n):
        targets: set[int] = set()
        while len(targets) < m:
            targets.add(repeated_nodes[int(rng.integers(len(repeated_nodes)))])
        for t in targets:
            builder.add_edge(v, t)
            repeated_nodes.extend((v, t))
    return builder.build()


def powerlaw_degree_sequence(
    n: int,
    gamma: float,
    d_min: int = 1,
    d_max: int | None = None,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Sample a graphical-ish degree sequence from ``P(d) ~ d^-gamma``.

    Degrees are drawn i.i.d. from the truncated discrete power law on
    ``[d_min, d_max]`` (default cap ``sqrt(n)``, the standard choice that
    keeps the erased configuration model's edge loss negligible).  The
    sequence sum is forced even by incrementing one entry if needed.
    """
    if not 1.0 < gamma:
        raise GraphError(f"gamma must exceed 1, got {gamma}")
    if d_min < 1:
        raise GraphError(f"d_min must be >= 1, got {d_min}")
    if d_max is None:
        d_max = max(d_min, int(round(np.sqrt(n))))
    if d_max < d_min:
        raise GraphError(f"d_max {d_max} < d_min {d_min}")
    rng = make_rng(seed)
    support = np.arange(d_min, d_max + 1, dtype=np.float64)
    pmf = support**-gamma
    pmf /= pmf.sum()
    degrees = rng.choice(support.astype(np.int64), size=n, p=pmf)
    if degrees.sum() % 2 == 1:
        degrees[int(rng.integers(n))] += 1
    return degrees


def powerlaw_configuration_model(
    n: int,
    gamma: float,
    d_min: int = 1,
    d_max: int | None = None,
    seed: int | np.random.Generator | None = None,
) -> Graph:
    """Erased configuration model over a power-law degree sequence.

    Stubs are paired by a random shuffle; self-loops and parallel edges are
    erased (the usual simple-graph projection), so realised degrees can fall
    slightly below the drawn sequence — acceptable for benchmark stand-ins.
    """
    rng = make_rng(seed)
    degrees = powerlaw_degree_sequence(n, gamma, d_min, d_max, rng)
    stubs = np.repeat(np.arange(n), degrees)
    rng.shuffle(stubs)
    builder = GraphBuilder(n)
    for i in range(0, len(stubs) - 1, 2):
        u, v = int(stubs[i]), int(stubs[i + 1])
        if u != v:
            builder.add_edge(u, v)
    return builder.build()


def chung_lu(
    n: int,
    expected_degrees: np.ndarray,
    seed: int | np.random.Generator | None = None,
) -> Graph:
    """Chung–Lu model: edge (u,v) appears w.p. ``min(1, d_u d_v / sum(d))``.

    Implemented with the O(n + m) skip-sampling trick of Miller & Hagberg,
    processing vertices in decreasing expected degree.
    """
    weights = np.asarray(expected_degrees, dtype=np.float64)
    if weights.shape != (n,):
        raise GraphError(f"expected_degrees must have shape ({n},)")
    if n and weights.min() < 0:
        raise GraphError("expected degrees must be non-negative")
    rng = make_rng(seed)
    builder = GraphBuilder(n)
    total = weights.sum()
    if total <= 0:
        return builder.build()
    order = np.argsort(-weights)
    sorted_w = weights[order]
    for i in range(n - 1):
        wi = sorted_w[i]
        if wi <= 0:
            break
        j = i + 1
        p = min(1.0, wi * sorted_w[j] / total)
        while j < n and p > 0:
            if p < 1.0:
                # Geometric skip ahead over non-edges.
                skip = int(np.floor(np.log(rng.random()) / np.log(1.0 - p)))
                j += skip
            if j < n:
                q = min(1.0, wi * sorted_w[j] / total)
                if rng.random() < q / p:
                    builder.add_edge(int(order[i]), int(order[j]))
                p = q
                j += 1
    return builder.build()
