"""Planted-community graphs for controlled solver evaluation.

A generator that embeds dense, high-weight communities inside a sparse
background graph.  Tests and the effectiveness experiments (paper Exp-VII)
use it because the ground truth is known by construction: each planted
block is a clique (or near-clique) whose members carry weights drawn from a
designated band, so the expected top-r answers under sum/avg/min are
predictable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError
from repro.graphs.builder import GraphBuilder
from repro.graphs.graph import Graph
from repro.utils.rng import make_rng


@dataclass(frozen=True)
class PlantedSpec:
    """One planted block: ``size`` vertices, intra-edge prob, weight band."""

    size: int
    intra_p: float = 1.0
    weight_low: float = 1.0
    weight_high: float = 2.0

    def __post_init__(self) -> None:
        if self.size < 2:
            raise GraphError(f"planted block needs >= 2 vertices, got {self.size}")
        if not 0.0 < self.intra_p <= 1.0:
            raise GraphError(f"intra_p must be in (0, 1], got {self.intra_p}")
        if self.weight_low < 0 or self.weight_high < self.weight_low:
            raise GraphError("weight band must satisfy 0 <= low <= high")


def planted_communities(
    n_background: int,
    blocks: list[PlantedSpec],
    background_p: float = 0.01,
    attach_edges: int = 2,
    background_weight_high: float = 1.0,
    seed: int | np.random.Generator | None = None,
) -> tuple[Graph, list[frozenset[int]]]:
    """Build a background G(n, p) with dense weighted blocks planted in it.

    Each block's vertices are appended after the background vertices and
    wired internally with probability ``intra_p``; ``attach_edges`` random
    edges tie each block to the background so the graph stays connected
    enough without eroding the blocks' boundaries.

    Returns ``(graph, planted)`` where ``planted[i]`` is the vertex set of
    block ``i``.
    """
    if n_background < 1:
        raise GraphError(f"need at least 1 background vertex, got {n_background}")
    if not 0.0 <= background_p <= 1.0:
        raise GraphError(f"background_p must be in [0, 1], got {background_p}")
    rng = make_rng(seed)
    total = n_background + sum(b.size for b in blocks)
    builder = GraphBuilder(total)

    # Background: sparse Erdős–Rényi + a random spanning chain so it is
    # connected (isolated background vertices add noise without value).
    for u in range(n_background - 1):
        builder.add_edge(u, u + 1)
    if background_p > 0 and n_background > 1:
        iu, ju = np.triu_indices(n_background, k=2)
        mask = rng.random(len(iu)) < background_p
        for u, v in zip(iu[mask], ju[mask]):
            builder.add_edge(int(u), int(v))
    for v in range(n_background):
        builder.set_weight(v, float(rng.uniform(0.0, background_weight_high)))

    planted: list[frozenset[int]] = []
    cursor = n_background
    for block in blocks:
        members = list(range(cursor, cursor + block.size))
        cursor += block.size
        for i, u in enumerate(members):
            builder.set_weight(
                u, float(rng.uniform(block.weight_low, block.weight_high))
            )
            for v in members[i + 1 :]:
                if block.intra_p >= 1.0 or rng.random() < block.intra_p:
                    builder.add_edge(u, v)
        for __ in range(attach_edges):
            inside = members[int(rng.integers(len(members)))]
            outside = int(rng.integers(n_background))
            if inside != outside and not builder.has_edge(inside, outside):
                builder.add_edge(inside, outside)
        planted.append(frozenset(members))
    return builder.build(), planted
