"""Scaled synthetic stand-ins for the paper's SNAP datasets (Table III).

The paper evaluates on seven SNAP graphs, from Email (37K vertices) to
FriendSter (65.6M vertices / 1.8B edges).  Those downloads are unavailable
offline and unholdable in pure Python at full size, so each dataset is
replaced by a deterministic synthetic graph that preserves the properties
the algorithms are sensitive to (DESIGN.md Section 4):

* a power-law degree backbone with ``2 < gamma < 3`` (Definition 9 — the
  paper's complexity analysis assumes exactly this regime);
* planted dense social blocks giving non-trivial k-cores (``kmax`` well
  above the experiment sweep, as in the real data);
* the paper's *relative* ordering of size and density across datasets
  (Orkut densest, FriendSter largest, Email smallest-but-dense);
* PageRank vertex weights with damping 0.85 (the paper's weighting).

Every spec records the paper's original statistics so the Table III bench
can print paper-vs-stand-in side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError
from repro.graphs.builder import GraphBuilder
from repro.graphs.generators.random_graphs import powerlaw_degree_sequence
from repro.graphs.graph import Graph
from repro.utils.rng import make_rng


@dataclass(frozen=True)
class SnapLikeSpec:
    """Recipe for one stand-in dataset plus the paper's original stats."""

    name: str
    #: Paper's Table III numbers, for side-by-side reporting.
    paper_n: int
    paper_m: int
    paper_dmax: int
    paper_davg: float
    paper_kmax: int
    #: Stand-in construction parameters.
    n: int
    gamma: float
    d_min: int
    d_max: int
    n_blocks: int
    block_size: tuple[int, int]
    block_intra_p: float
    seed: int
    #: k values to sweep in experiments (paper: {4,6,8,10} small datasets,
    #: {40,50,100,200} large ones; stand-ins scale the large sweep down).
    k_sweep: tuple[int, ...] = (4, 6, 8, 10)
    #: Default k (paper: 4 for small datasets, 40 for large ones).
    default_k: int = 4


def _spec(**kwargs: object) -> SnapLikeSpec:
    return SnapLikeSpec(**kwargs)  # type: ignore[arg-type]


#: The seven datasets of Table III, ordered as in the paper.
SNAP_LIKE_SPECS: dict[str, SnapLikeSpec] = {
    spec.name: spec
    for spec in [
        _spec(
            name="domainpub",
            paper_n=22_692, paper_m=60_830, paper_dmax=125,
            paper_davg=5.35, paper_kmax=31,
            n=800, gamma=2.6, d_min=2, d_max=40,
            n_blocks=10, block_size=(10, 20), block_intra_p=0.85,
            seed=101,
        ),
        _spec(
            name="email",
            paper_n=36_692, paper_m=183_831, paper_dmax=1_383,
            paper_davg=10.02, paper_kmax=43,
            n=1_200, gamma=2.3, d_min=3, d_max=120,
            n_blocks=12, block_size=(10, 22), block_intra_p=0.75,
            seed=102,
        ),
        _spec(
            name="dblp",
            paper_n=317_080, paper_m=1_049_866, paper_dmax=343,
            paper_davg=6.62, paper_kmax=113,
            n=2_000, gamma=2.6, d_min=2, d_max=60,
            n_blocks=20, block_size=(8, 20), block_intra_p=0.85,
            seed=103,
        ),
        _spec(
            name="youtube",
            paper_n=1_134_890, paper_m=2_987_624, paper_dmax=28_754,
            paper_davg=5.27, paper_kmax=51,
            n=3_000, gamma=2.2, d_min=2, d_max=260,
            n_blocks=18, block_size=(10, 24), block_intra_p=0.7,
            seed=104,
        ),
        _spec(
            name="orkut",
            paper_n=3_072_441, paper_m=117_185_083, paper_dmax=33_313,
            paper_davg=76.28, paper_kmax=253,
            n=2_500, gamma=2.4, d_min=8, d_max=200,
            n_blocks=24, block_size=(16, 32), block_intra_p=0.85,
            seed=105,
            k_sweep=(8, 12, 16, 20), default_k=8,
        ),
        _spec(
            name="livejournal",
            paper_n=3_997_962, paper_m=34_681_189, paper_dmax=14_815,
            paper_davg=17.35, paper_kmax=360,
            n=4_000, gamma=2.4, d_min=4, d_max=220,
            n_blocks=28, block_size=(18, 32), block_intra_p=0.85,
            seed=106,
            k_sweep=(8, 12, 16, 20), default_k=8,
        ),
        _spec(
            name="friendster",
            paper_n=65_608_366, paper_m=1_806_067_135, paper_dmax=5_214,
            paper_davg=55.06, paper_kmax=304,
            n=6_000, gamma=2.5, d_min=5, d_max=160,
            n_blocks=36, block_size=(16, 32), block_intra_p=0.8,
            seed=107,
            k_sweep=(8, 12, 16, 20), default_k=8,
        ),
    ]
}


def snap_like_topology(spec: SnapLikeSpec) -> Graph:
    """Build the unweighted topology of a stand-in dataset.

    Power-law erased-configuration backbone, then ``n_blocks`` dense blocks
    of random vertices wired with ``block_intra_p`` (the social-community
    layer that gives the graph real k-cores), then a spanning chain over
    component representatives so the graph is connected like the SNAP
    giant components the paper uses.
    """
    rng = make_rng(spec.seed)
    degrees = powerlaw_degree_sequence(spec.n, spec.gamma, spec.d_min, spec.d_max, rng)
    stubs = np.repeat(np.arange(spec.n), degrees)
    rng.shuffle(stubs)
    builder = GraphBuilder(spec.n)
    for i in range(0, len(stubs) - 1, 2):
        u, v = int(stubs[i]), int(stubs[i + 1])
        if u != v:
            builder.add_edge(u, v)

    lo, hi = spec.block_size
    for __ in range(spec.n_blocks):
        size = int(rng.integers(lo, hi + 1))
        members = rng.choice(spec.n, size=size, replace=False)
        for i in range(size):
            for j in range(i + 1, size):
                if rng.random() < spec.block_intra_p:
                    builder.add_edge(int(members[i]), int(members[j]))

    graph = builder.build()
    return _connect_components(graph, rng)


def _connect_components(graph: Graph, rng: np.random.Generator) -> Graph:
    """Chain component representatives together so the result is connected."""
    from repro.graphs.components import connected_components

    components = connected_components(graph)
    if len(components) <= 1:
        return graph
    builder = GraphBuilder(graph.n)
    for u, v in graph.edges():
        builder.add_edge(u, v)
    reps = [min(comp) for comp in components]
    for a, b in zip(reps, reps[1:]):
        builder.add_edge(a, b)
    return builder.build().with_weights(graph.weights)


def snap_like_graph(name: str, weighted: bool = True) -> Graph:
    """Build a stand-in dataset by name, with PageRank weights by default.

    Weights follow the paper's protocol: PageRank with damping factor 0.85
    (Section VI, "the weight of vertices is the PageRank value").
    """
    spec = SNAP_LIKE_SPECS.get(name.lower())
    if spec is None:
        known = ", ".join(sorted(SNAP_LIKE_SPECS))
        raise DatasetError(f"unknown dataset {name!r}; known: {known}")
    graph = snap_like_topology(spec)
    if not weighted:
        return graph
    from repro.centrality.pagerank import pagerank

    return graph.with_weights(pagerank(graph, damping=0.85))
