"""Synthetic graph generators.

These replace the paper's downloaded datasets (no network access, and pure
Python cannot hold billion-edge graphs): power-law models for the SNAP
stand-ins of Table III, a planted-community model for controlled solver
tests, a synthetic Aminer-style co-authorship network for the Section VI.C
case study, and the exact 11-vertex running example of Figure 1.
"""

from repro.graphs.generators.aminer import generate_aminer
from repro.graphs.generators.examples import figure1_graph, tiny_kcore_graph
from repro.graphs.generators.planted import planted_communities
from repro.graphs.generators.random_graphs import (
    barabasi_albert,
    chung_lu,
    gnm_random_graph,
    gnp_random_graph,
    powerlaw_configuration_model,
    powerlaw_degree_sequence,
)
from repro.graphs.generators.snap_like import SNAP_LIKE_SPECS, snap_like_graph

__all__ = [
    "SNAP_LIKE_SPECS",
    "barabasi_albert",
    "chung_lu",
    "figure1_graph",
    "generate_aminer",
    "gnm_random_graph",
    "gnp_random_graph",
    "planted_communities",
    "powerlaw_configuration_model",
    "powerlaw_degree_sequence",
    "snap_like_graph",
    "tiny_kcore_graph",
]
