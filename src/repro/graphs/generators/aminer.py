"""Synthetic Aminer-style co-authorship network for the case study.

Paper Section VI.C runs the top-3 non-overlapping k-influential community
search (k=4) on the Aminer cross-domain dataset — five research fields
(Data Mining, Medical Informatics, Theory, Visualization, Database) where
vertices are researchers, edges are co-authorships, and weights are
citation indices (the paper's discussion contrasts i10-index for min,
G-index for avg, and plain citation mass for sum).

The real dataset is not downloadable here, so we synthesise a network with
the same qualitative anatomy:

* each field contains a handful of *senior groups* — near-cliques of 5-8
  frequently co-authoring researchers (the Fig 14 communities are exactly
  such groups);
* senior groups are stitched to a long tail of junior researchers with few
  edges (students co-author with one or two seniors);
* weights are drawn per researcher from a log-normal "citations" variable
  from which h-, g- and i10-style indices are derived, with senior groups
  biased upward differently per field — so min/avg/sum provably prefer
  different groups, which is the case study's point.

Researcher names are generated deterministically so Fig 14-style output is
reproducible and readable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError
from repro.graphs.builder import GraphBuilder
from repro.graphs.graph import Graph
from repro.utils.rng import make_rng

#: The five Aminer fields of the case study.
FIELDS = ("Data Mining", "Medical Informatics", "Theory", "Visualization", "Database")

_GIVEN = (
    "Ada", "Ben", "Chen", "Dana", "Emil", "Fatima", "Guo", "Hana", "Ivan",
    "Jun", "Kai", "Lena", "Ming", "Nora", "Omar", "Ping", "Qi", "Rosa",
    "Sam", "Tara", "Uri", "Vera", "Wei", "Xin", "Yara", "Zhen",
)
_FAMILY = (
    "Abe", "Berg", "Cao", "Diaz", "Eng", "Faro", "Gao", "Hart", "Ito",
    "Jain", "Kim", "Liu", "Mora", "Nair", "Oz", "Park", "Qian", "Rao",
    "Shen", "Tran", "Ueda", "Vogel", "Wang", "Xu", "Yang", "Zhou",
)


@dataclass(frozen=True)
class AminerSpec:
    """Size knobs for the synthetic co-authorship network."""

    juniors_per_field: int = 120
    groups_per_field: int = 3
    group_size: tuple[int, int] = (5, 8)
    seed: int = 4242

    def __post_init__(self) -> None:
        if self.juniors_per_field < 10:
            raise DatasetError("need at least 10 juniors per field")
        if self.groups_per_field < 1:
            raise DatasetError("need at least one senior group per field")
        lo, hi = self.group_size
        if lo < 5 or hi < lo:
            raise DatasetError("group sizes must satisfy 5 <= lo <= hi")


@dataclass(frozen=True)
class AminerMetadata:
    """Ground-truth bookkeeping returned alongside the graph."""

    field_of: list[str]
    senior_groups: list[frozenset[int]]
    citations: np.ndarray
    h_index: np.ndarray
    g_index: np.ndarray
    i10_index: np.ndarray


def _researcher_name(rng: np.random.Generator, used: set[str]) -> str:
    while True:
        name = (
            f"{_GIVEN[int(rng.integers(len(_GIVEN)))]} "
            f"{_FAMILY[int(rng.integers(len(_FAMILY)))]}"
        )
        if name not in used:
            used.add(name)
            return name
        # Disambiguate collisions with a middle initial.
        initial = chr(ord("A") + int(rng.integers(26)))
        candidate = f"{name.split()[0]} {initial}. {name.split()[1]}"
        if candidate not in used:
            used.add(candidate)
            return candidate


def _citation_indices(
    rng: np.random.Generator, paper_counts: np.ndarray, boost: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Derive citations and h/g/i10-style indices from paper counts.

    Each researcher's per-paper citations are log-normal scaled by their
    ``boost``; the indices follow the standard definitions computed on the
    sampled per-paper citation vectors.
    """
    n = len(paper_counts)
    citations = np.zeros(n)
    h_index = np.zeros(n)
    g_index = np.zeros(n)
    i10_index = np.zeros(n)
    for v in range(n):
        per_paper = np.sort(
            rng.lognormal(mean=1.0, sigma=1.0, size=int(paper_counts[v])) * boost[v]
        )[::-1]
        citations[v] = per_paper.sum()
        ranks = np.arange(1, len(per_paper) + 1)
        h_mask = per_paper >= ranks
        h_index[v] = int(h_mask.sum())
        cumulative = np.cumsum(per_paper)
        g_mask = cumulative >= ranks**2
        g_index[v] = int(g_mask.sum())
        i10_index[v] = int((per_paper >= 10).sum())
    return citations, h_index, g_index, i10_index


def generate_aminer(
    spec: AminerSpec | None = None,
    weight_kind: str = "citations",
) -> tuple[Graph, AminerMetadata]:
    """Build the synthetic co-authorship network.

    ``weight_kind`` selects which derived index becomes the graph's vertex
    weight: ``citations``, ``h`` (h-index), ``g`` (G-index) or ``i10``
    (i10-index) — the quantities the paper's case-study discussion names.
    Use :meth:`Graph.with_weights` with the metadata arrays to re-weight
    without regenerating.
    """
    spec = spec or AminerSpec()
    rng = make_rng(spec.seed)
    builder = GraphBuilder(0)
    used_names: set[str] = set()
    field_of: list[str] = []
    senior_groups: list[frozenset[int]] = []

    for field_idx, field in enumerate(FIELDS):
        field_vertices: list[int] = []
        # Senior groups: near-cliques of heavily co-authoring researchers.
        for g in range(spec.groups_per_field):
            lo, hi = spec.group_size
            size = int(rng.integers(lo, hi + 1))
            members = [
                builder.add_vertex(label=_researcher_name(rng, used_names))
                for __ in range(size)
            ]
            field_of.extend([field] * size)
            for i in range(size):
                for j in range(i + 1, size):
                    if rng.random() < 0.9:
                        builder.add_edge(members[i], members[j])
            # Repair pass: the case study runs with k = 4, so every senior
            # must keep at least min(4, size-1) in-group co-authors even on
            # unlucky draws.
            needed = min(4, size - 1)
            member_set = set(members)
            for u in members:
                while len(builder.neighbors(u) & member_set) < needed:
                    candidates = [
                        w for w in members if w != u and not builder.has_edge(u, w)
                    ]
                    candidates.sort(
                        key=lambda w: len(builder.neighbors(w) & member_set)
                    )
                    builder.add_edge(u, candidates[0])
            senior_groups.append(frozenset(members))
            field_vertices.extend(members)
        # Junior tail: each junior co-authors with 1-3 researchers already
        # in the field (preferring seniors), rarely across fields.
        for __ in range(spec.juniors_per_field):
            v = builder.add_vertex(label=_researcher_name(rng, used_names))
            field_of.append(field)
            coauthors = int(rng.integers(1, 4))
            for __c in range(coauthors):
                partner = field_vertices[int(rng.integers(len(field_vertices)))]
                if partner != v and not builder.has_edge(v, partner):
                    builder.add_edge(v, partner)
            field_vertices.append(v)
        # Occasional cross-field collaboration keeps the graph connected.
        if field_idx > 0:
            for __ in range(3):
                a = field_vertices[int(rng.integers(len(field_vertices)))]
                b = int(rng.integers(0, field_vertices[0]))
                if a != b and not builder.has_edge(a, b):
                    builder.add_edge(a, b)

    graph = builder.build()
    n = graph.n
    is_senior = np.zeros(n, dtype=bool)
    for group in senior_groups:
        for v in group:
            is_senior[v] = True
    # Seniors write many papers with higher impact; different groups get
    # different profiles (uniform-high vs spiky) so min/avg/sum disagree.
    paper_counts = np.where(
        is_senior, rng.integers(40, 140, size=n), rng.integers(2, 25, size=n)
    )
    boost = np.ones(n)
    for gi, group in enumerate(senior_groups):
        profile = gi % 3
        for v in group:
            if profile == 0:  # uniformly strong: favoured by min
                boost[v] = 4.0 + rng.uniform(-0.3, 0.3)
            elif profile == 1:  # elite spiky: favoured by avg/max
                boost[v] = rng.choice([2.0, 10.0], p=[0.5, 0.5])
            else:  # broad and diverse: favoured by sum
                boost[v] = rng.uniform(1.0, 6.0)
    citations, h_index, g_index, i10_index = _citation_indices(
        rng, paper_counts, boost
    )
    metadata = AminerMetadata(
        field_of=field_of,
        senior_groups=senior_groups,
        citations=citations,
        h_index=h_index,
        g_index=g_index,
        i10_index=i10_index,
    )
    weights = {
        "citations": citations,
        "h": h_index,
        "g": g_index,
        "i10": i10_index,
    }.get(weight_kind)
    if weights is None:
        raise DatasetError(
            f"unknown weight_kind {weight_kind!r}; expected citations/h/g/i10"
        )
    return graph.with_weights(weights), metadata
