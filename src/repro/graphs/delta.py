"""Incremental edge updates: patch a live CSR instead of rebuilding it.

The solvers treat :class:`~repro.graphs.graph.Graph` as immutable, and
until now the serving layer honoured that by *replacing* the graph on any
topology change — re-flattening the CSR (an O(m log m) lexsort plus a
Python pass over every adjacency set) and re-peeling the full core
decomposition for a single inserted edge.  :class:`GraphDelta` keeps the
immutability contract (every ``apply`` returns a *new* ``Graph``) while
paying only for what actually changed:

* **CSR patching** — each edge update is two tombstoned positions (a
  deletion) or two appended entries (an insertion) against the flat
  ``indices`` array; a batch is compacted into fresh arrays by one
  vectorised ``np.delete``/``np.insert`` memcpy per edge instead of the
  Python flattening.  ``indptr`` is repaired with two slice increments.
  The set adjacency is patched copy-on-write: only the endpoints' sets
  are duplicated, every other vertex shares its set with the old graph.
* **Incremental core repair** — the classic locality bound for single
  edge updates (Li, Yu & Mao, TKDE 2014; Sariyüce et al., VLDB 2013):
  inserting or deleting ``{u, v}`` can only change core numbers of
  vertices with core number ``k = min(core(u), core(v))``, and by at
  most one.  So instead of re-peeling the graph, each edge re-peels the
  touched endpoints' k-core subgraph — the mask ``cores >= k`` — to the
  ``(k+1)``-core (insertion) or the ``k``-core (deletion); exactly the
  level-``k`` vertices that enter (or drop out of) that core move to
  ``k + 1`` (or ``k - 1``).  Survivor sets are *exact*: the new
  ``(k+1)``-core is contained in ``{cores >= k}``, so the bounded peel
  computes the true new core, not an approximation.
* **Large batches fall back** — ``batch_threshold`` caps how many
  sequential single-edge repairs are worth it; past it the delta patches
  the adjacency in one pass and recomputes the decomposition with the
  ordinary bulk kernel, which is what the repair loop would asymptote to
  anyway.

``backend="set"`` is the parity oracle: it applies the same updates the
slow way (fresh adjacency, full ``core_decomposition(backend="set")``,
lazy CSR) so the property suites can pin the incremental path bit for
bit.

A batch is **one atomic step**: validation (shape, range, self-loops,
in-batch duplicates, inserting an existing edge, deleting a missing one)
happens before any state is touched, so a rejected batch leaves the
delta — and every graph it previously produced — exactly as it was.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.core.decomposition import core_decomposition
from repro.errors import GraphError, VertexError
from repro.graphs.backend import resolve_backend
from repro.graphs.csr import CSRAdjacency
from repro.graphs.graph import Graph
from repro.graphs.lazy import LazyAdjacency

__all__ = ["DeltaReport", "GraphDelta", "normalize_edge_updates"]

#: Past this many edge updates in one batch, the incremental per-edge
#: repair loop (O(edits * m) array traffic) loses to one bulk recompute.
DEFAULT_BATCH_THRESHOLD = 64


def _as_vertex(value: object, n: int) -> int:
    """Coerce one endpoint to a valid vertex id (bools are not vertices)."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise GraphError(
            f"edge endpoints must be integers, got {value!r} "
            f"({type(value).__name__})"
        )
    vertex = int(value)
    if not 0 <= vertex < n:
        raise VertexError(vertex, n)
    return vertex


def normalize_edge_updates(
    edges: Iterable[object], n: int, label: str
) -> list[tuple[int, int]]:
    """Validate an edge list into canonical ``(u, v)`` pairs with u < v.

    Raises :class:`~repro.errors.GraphError` on anything that is not a
    duplicate-free list of in-range, non-self-loop vertex pairs; ``label``
    names the offending list ("insert"/"delete") in the message.
    """
    if isinstance(edges, (str, bytes)):
        raise GraphError(f"{label} edges must be a list of (u, v) pairs")
    normalized: list[tuple[int, int]] = []
    seen: set[tuple[int, int]] = set()
    for entry in edges:
        if not isinstance(entry, Sequence) or len(entry) != 2:
            raise GraphError(
                f"{label} edge {entry!r} is not a (u, v) pair"
            )
        u, v = (_as_vertex(value, n) for value in entry)
        if u == v:
            raise GraphError(f"{label} edge ({u}, {v}) is a self-loop")
        edge = (u, v) if u < v else (v, u)
        if edge in seen:
            raise GraphError(
                f"{label} edge {edge} appears more than once in the batch"
            )
        seen.add(edge)
        normalized.append(edge)
    return normalized


@dataclass(frozen=True)
class DeltaReport:
    """What one :meth:`GraphDelta.apply` batch did.

    ``touched`` is the invalidation scope: every endpoint of an applied
    edge plus every vertex whose core number changed.  ``max_affected_core``
    is the highest level k whose maximal k-core subgraph may differ from
    the pre-update graph — any k above it has an identical k-core (same
    vertices, same induced edges), which is what lets serving caches keep
    their entries for unaffected degree constraints.  The bound is tight
    per contribution: an inserted edge is induced in k-cores only up to
    the *smaller* of its endpoints' (new) core numbers — so attaching a
    low-core vertex to a high-core hub affects only the low levels, not
    everything up to the hub's core.
    """

    graph: Graph
    core_numbers: np.ndarray
    inserted: tuple[tuple[int, int], ...]
    deleted: tuple[tuple[int, int], ...]
    touched: np.ndarray
    cores_changed: int
    max_affected_core: int
    strategy: str = field(default="incremental")

    @property
    def edges_applied(self) -> int:
        """Total edge updates in the batch."""
        return len(self.inserted) + len(self.deleted)


class GraphDelta:
    """Apply batches of edge insertions/deletions to a live graph.

    Usage::

        delta = GraphDelta(graph, core_numbers=cores)   # cores optional
        report = delta.apply(insert=[(0, 5)], delete=[(2, 3)])
        report.graph          # new Graph, CSR already patched
        report.core_numbers   # repaired, == core_decomposition(new graph)

    The delta is reusable: after ``apply`` it tracks the updated graph,
    so successive batches stack.  ``graph``/``core_numbers`` always
    expose the current state.
    """

    def __init__(
        self,
        graph: Graph,
        core_numbers: np.ndarray | None = None,
        backend: str = "auto",
        batch_threshold: int = DEFAULT_BATCH_THRESHOLD,
    ) -> None:
        if batch_threshold < 1:
            raise GraphError(
                f"batch_threshold must be >= 1, got {batch_threshold}"
            )
        if core_numbers is not None and core_numbers.shape != (graph.n,):
            raise GraphError(
                f"core_numbers shape {core_numbers.shape} does not match "
                f"{graph.n} vertices"
            )
        self._graph = graph
        self._backend = resolve_backend(backend)
        self._batch_threshold = batch_threshold
        self._cores = core_numbers
        self.batches_applied = 0
        self.edges_applied = 0

    @property
    def graph(self) -> Graph:
        """The current (post-delta) graph."""
        return self._graph

    @property
    def core_numbers(self) -> np.ndarray:
        """Core numbers of the current graph (computed once if not seeded)."""
        if self._cores is None:
            self._cores = core_decomposition(self._graph, backend=self._backend)
        return self._cores

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    @staticmethod
    def validate(
        graph: Graph,
        insert: Iterable[object] = (),
        delete: Iterable[object] = (),
    ) -> tuple[list[tuple[int, int]], list[tuple[int, int]]]:
        """Check one batch against ``graph`` without applying anything.

        Returns the normalized ``(inserts, deletes)`` pairs, or raises
        :class:`~repro.errors.GraphError` /
        :class:`~repro.errors.VertexError` for malformed pairs, self
        loops, out-of-range vertices, in-batch duplicates, an empty
        batch, inserting an edge that already exists, or deleting one
        that does not.  The HTTP front end calls this up front so a bad
        request costs a 400 and nothing else (no epoch bump, no worker
        pool teardown).
        """
        inserts = normalize_edge_updates(insert, graph.n, "insert")
        deletes = normalize_edge_updates(delete, graph.n, "delete")
        if not inserts and not deletes:
            raise GraphError(
                "edge update batch is empty (nothing to insert or delete)"
            )
        overlap = set(inserts) & set(deletes)
        if overlap:
            raise GraphError(
                f"edge {sorted(overlap)[0]} appears in both insert and delete"
            )
        adjacency = graph.adjacency
        for u, v in inserts:
            if v in adjacency[u]:
                raise GraphError(f"insert edge ({u}, {v}) already exists")
        for u, v in deletes:
            if v not in adjacency[u]:
                raise GraphError(f"delete edge ({u}, {v}) does not exist")
        return inserts, deletes

    # ------------------------------------------------------------------
    # Batch application
    # ------------------------------------------------------------------
    def apply(
        self,
        insert: Iterable[object] = (),
        delete: Iterable[object] = (),
    ) -> DeltaReport:
        """Apply one atomic batch; returns the :class:`DeltaReport`.

        Validation runs completely before any mutation, so a raised
        :class:`~repro.errors.GraphError` leaves the delta untouched.
        An entirely empty batch is rejected — callers that reached this
        far with nothing to do almost certainly built their edge lists
        wrong, and the serving layer must not pay an epoch bump for it.
        """
        inserts, deletes = self.validate(self._graph, insert, delete)
        old_cores = self.core_numbers
        if (
            self._backend == "set"
            or len(inserts) + len(deletes) > self._batch_threshold
        ):
            report = self._apply_recompute(inserts, deletes, old_cores)
        else:
            report = self._apply_incremental(inserts, deletes, old_cores)
        self._graph = report.graph
        self._cores = report.core_numbers
        self.batches_applied += 1
        self.edges_applied += report.edges_applied
        return report

    # ------------------------------------------------------------------
    # Incremental path (CSR patch + bounded re-peel)
    # ------------------------------------------------------------------
    def _apply_incremental(
        self,
        inserts: list[tuple[int, int]],
        deletes: list[tuple[int, int]],
        old_cores: np.ndarray,
    ) -> DeltaReport:
        graph = self._graph
        csr = graph.csr
        indptr = csr.indptr.copy()
        indices = csr.indices.copy()
        # A lazy (substrate-attached) adjacency stays lazy: the new graph
        # re-derives neighbour sets from the patched CSR on demand, so no
        # set is ever materialised for vertices the update didn't touch.
        lazy = isinstance(graph.adjacency, LazyAdjacency)
        if lazy:
            adjacency, copied = None, None
        else:
            adjacency, copied = list(graph.adjacency), set()
        cores = old_cores.copy()
        changed = np.zeros(graph.n, dtype=bool)

        def own(vertex: int) -> set[int]:
            if vertex not in copied:
                adjacency[vertex] = set(adjacency[vertex])
                copied.add(vertex)
            return adjacency[vertex]

        # Deletions first, then insertions; each edge is one exact step
        # (patch both substrates, then repair cores against the patched
        # CSR), so the repair always sees the true intermediate graph.
        for u, v in deletes:
            indptr, indices = _delete_edge_csr(indptr, indices, u, v)
            if not lazy:
                own(u).discard(v)
                own(v).discard(u)
            self._repair_delete(
                CSRAdjacency(indptr, indices), cores, changed, u, v
            )
        for u, v in inserts:
            indptr, indices = _insert_edge_csr(indptr, indices, u, v)
            if not lazy:
                own(u).add(v)
                own(v).add(u)
            self._repair_insert(
                CSRAdjacency(indptr, indices), cores, changed, u, v
            )

        new_csr = CSRAdjacency(indptr, indices)
        if lazy:
            adjacency = LazyAdjacency(new_csr.indptr, new_csr.indices)
        new_graph = Graph(
            adjacency, graph.weights, labels=graph.labels, _trusted=True
        )
        new_graph._csr = new_csr
        return self._report(
            new_graph, old_cores, cores, changed, inserts, deletes,
            strategy="incremental",
        )

    @staticmethod
    def _repair_insert(
        csr: CSRAdjacency,
        cores: np.ndarray,
        changed: np.ndarray,
        u: int,
        v: int,
    ) -> None:
        """Exact core repair after inserting ``{u, v}`` (already in csr).

        Only vertices at level ``k = min(core(u), core(v))`` can rise, and
        the new ``(k+1)``-core is contained in ``{cores >= k}`` (insertion
        raises core numbers by at most one, and only at level k), so
        peeling that mask to the ``(k+1)``-core finds exactly the risers.
        """
        k = int(min(cores[u], cores[v]))
        mask = cores >= k
        csr.peel_to_kcore(mask, k + 1)
        rose = np.flatnonzero(mask & (cores == k))
        if rose.size:
            cores[rose] = k + 1
            changed[rose] = True

    @staticmethod
    def _repair_delete(
        csr: CSRAdjacency,
        cores: np.ndarray,
        changed: np.ndarray,
        u: int,
        v: int,
    ) -> None:
        """Exact core repair after deleting ``{u, v}`` (already gone).

        Mirror bound: only level-k vertices can drop (by one), and the new
        k-core is still contained in ``{cores >= k}``, so the bounded peel
        to the k-core identifies exactly the vertices that fall to k - 1.
        """
        k = int(min(cores[u], cores[v]))
        mask = cores >= k
        csr.peel_to_kcore(mask, k)
        fell = np.flatnonzero(~mask & (cores >= k))
        if fell.size:
            cores[fell] = k - 1
            changed[fell] = True

    # ------------------------------------------------------------------
    # Recompute path (oracle semantics / large batches)
    # ------------------------------------------------------------------
    def _apply_recompute(
        self,
        inserts: list[tuple[int, int]],
        deletes: list[tuple[int, int]],
        old_cores: np.ndarray,
    ) -> DeltaReport:
        graph = self._graph
        adjacency, copied = list(graph.adjacency), set()

        def own(vertex: int) -> set[int]:
            if vertex not in copied:
                adjacency[vertex] = set(adjacency[vertex])
                copied.add(vertex)
            return adjacency[vertex]

        for u, v in deletes:
            own(u).discard(v)
            own(v).discard(u)
        for u, v in inserts:
            own(u).add(v)
            own(v).add(u)
        new_graph = Graph(
            adjacency, graph.weights, labels=graph.labels, _trusted=True
        )
        cores = core_decomposition(new_graph, backend=self._backend)
        changed = cores != old_cores
        return self._report(
            new_graph, old_cores, cores, changed, inserts, deletes,
            strategy="recompute",
        )

    def _report(
        self,
        new_graph: Graph,
        old_cores: np.ndarray,
        new_cores: np.ndarray,
        changed: np.ndarray,
        inserts: list[tuple[int, int]],
        deletes: list[tuple[int, int]],
        strategy: str,
    ) -> DeltaReport:
        endpoints = np.zeros(new_graph.n, dtype=bool)
        for u, v in inserts:
            endpoints[u] = endpoints[v] = True
        for u, v in deletes:
            endpoints[u] = endpoints[v] = True
        net_changed = new_cores != old_cores
        touched = np.flatnonzero(endpoints | changed | net_changed)
        # The k-core at level q differs between the old and new graph only
        # when (a) a vertex crosses the q threshold — q <= max(old, new)
        # for some *changed* vertex — or (b) an applied edge is induced in
        # the q-region: an inserted edge exists only in the new graph, so
        # only for q <= min of its endpoints' new cores (deleted edges
        # mirror with old cores).  max() of those contributions is the
        # bound; notably an edge touching a high-core hub contributes its
        # *low* endpoint's level, not the hub's.
        levels = [int(min(new_cores[u], new_cores[v])) for u, v in inserts]
        levels += [int(min(old_cores[u], old_cores[v])) for u, v in deletes]
        changed_ids = np.flatnonzero(net_changed)
        if changed_ids.size:
            levels.append(
                int(
                    np.maximum(
                        old_cores[changed_ids], new_cores[changed_ids]
                    ).max()
                )
            )
        return DeltaReport(
            graph=new_graph,
            core_numbers=new_cores,
            inserted=tuple(inserts),
            deleted=tuple(deletes),
            touched=touched,
            cores_changed=int(np.count_nonzero(net_changed)),
            max_affected_core=max(levels, default=0),
            strategy=strategy,
        )


# ----------------------------------------------------------------------
# CSR splicing (the tombstone/append compaction primitives)
# ----------------------------------------------------------------------
def _run_position(
    indptr: np.ndarray, indices: np.ndarray, owner: int, value: int
) -> int:
    """Absolute position of ``value`` (or its insertion point) in the
    sorted neighbour run of ``owner``."""
    lo, hi = int(indptr[owner]), int(indptr[owner + 1])
    return lo + int(np.searchsorted(indices[lo:hi], value))


def _insert_edge_csr(
    indptr: np.ndarray, indices: np.ndarray, u: int, v: int
) -> tuple[np.ndarray, np.ndarray]:
    """Append ``{u, v}`` into patched copies of the CSR arrays.

    Two entries join the flat ``indices`` array at their sorted positions
    in one ``np.insert`` compaction; when both land on the same absolute
    boundary position (adjacent — possibly empty — runs), the entry
    belonging to the earlier run must be emitted first, and run order is
    owner order, hence the ``(position, owner)`` ordering.
    """
    additions = sorted(
        (
            (_run_position(indptr, indices, u, v), u, v),
            (_run_position(indptr, indices, v, u), v, u),
        )
    )
    positions = [position for position, __, __unused in additions]
    values = np.asarray(
        [value for __, __unused, value in additions], dtype=indices.dtype
    )
    indices = np.insert(indices, positions, values)
    indptr = indptr.copy()
    indptr[u + 1 :] += 1
    indptr[v + 1 :] += 1
    return indptr, indices


def _delete_edge_csr(
    indptr: np.ndarray, indices: np.ndarray, u: int, v: int
) -> tuple[np.ndarray, np.ndarray]:
    """Tombstone ``{u, v}``'s two entries and compact in one pass."""
    positions = [
        _run_position(indptr, indices, u, v),
        _run_position(indptr, indices, v, u),
    ]
    indices = np.delete(indices, positions)
    indptr = indptr.copy()
    indptr[u + 1 :] -= 1
    indptr[v + 1 :] -= 1
    return indptr, indices
