"""The immutable weighted undirected graph at the bottom of everything.

Design notes
------------
Vertices are dense integers ``0..n-1``; an optional ``labels`` list carries
external names (used by the Aminer case study to show researcher names).
Weights live in a numpy float64 array.  Topology is held in **two
backends** over the same edge set:

* **set adjacency** (``self.adjacency``) — a list of Python sets, the
  primary storage.  O(1) membership tests and per-vertex set intersections
  make it the right substrate for the *incremental* paths: small cascades
  in :class:`repro.core.peeler.PeelingWorkspace`, BFS/component queries
  restricted to shrinking alive-sets, and the reference ("set" backend)
  implementations of every kernel.
* **CSR arrays** (``self.csr``) — flat ``indptr``/``indices`` arrays
  (:class:`repro.graphs.csr.CSRAdjacency`; indices int32 on any graph an
  int32 can index), built lazily on first access and cached for the
  graph's lifetime.  The *bulk* kernels run here at numpy speed:
  :func:`repro.core.decomposition.core_decomposition` (frontier bucket
  peeling), :func:`repro.core.kcore.kcore_of_subset` (mask peeling),
  triangle/support counting in :mod:`repro.truss.decomposition`, the
  initial degree computation of
  :class:`~repro.core.peeler.PeelingWorkspace`, and the candidate
  expansion of Algorithms 1/2
  (:mod:`repro.influential.expansion_csr`).

Which backend a kernel uses is controlled by its ``backend=`` keyword and
the ambient default in :mod:`repro.graphs.backend` (``"csr"`` unless
overridden); ``with use_backend("set")`` restores the pure-Python paths,
which the parity test suite exploits to check both backends agree.
Derived graphs (:meth:`with_weights`, :meth:`with_labels`, and induced
subgraphs built by :func:`repro.graphs.views.induced_subgraph`) share or
precompute the CSR cache so the flattening cost is paid once per topology.

Instances are frozen after construction (builders and generators are the
only producers); algorithms that need mutation take a
:class:`repro.core.peeler.PeelingWorkspace` copy instead, so one immutable
graph can serve many concurrent searches.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import GraphError, VertexError, WeightError
from repro.graphs.csr import CSRAdjacency
from repro.graphs.lazy import LazyAdjacency


class Graph:
    """Undirected vertex-weighted graph (paper Section II, Table II).

    Not meant to be constructed directly in user code — use
    :class:`repro.graphs.GraphBuilder` or a generator.  The constructor
    validates but does not copy ``adjacency`` (builders hand over ownership).
    """

    __slots__ = ("_adj", "_weights", "_m", "_labels", "_csr")

    def __init__(
        self,
        adjacency: list[set[int]],
        weights: np.ndarray | Sequence[float] | None = None,
        labels: Sequence[str] | None = None,
        _trusted: bool = False,
    ) -> None:
        n = len(adjacency)
        if weights is None:
            weights = np.zeros(n, dtype=np.float64)
        else:
            weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (n,):
            raise WeightError(
                f"weights shape {weights.shape} does not match {n} vertices"
            )
        if n and (not np.all(np.isfinite(weights)) or weights.min() < 0):
            raise WeightError("vertex weights must be finite and non-negative")
        if not _trusted:
            self._validate_adjacency(adjacency)
        self._adj = adjacency
        self._weights = weights
        weights.setflags(write=False)
        if isinstance(adjacency, LazyAdjacency):
            # Substrate-attached graph: the edge count comes from the CSR
            # arrays directly, without materialising any neighbour set.
            self._m = adjacency.edge_count
        else:
            self._m = sum(len(neigh) for neigh in adjacency) // 2
        self._csr = None
        if labels is not None:
            if len(labels) != n:
                raise GraphError(f"{len(labels)} labels for {n} vertices")
            self._labels = list(labels)
        else:
            self._labels = None

    @staticmethod
    def _validate_adjacency(adjacency: list[set[int]]) -> None:
        n = len(adjacency)
        for u, neigh in enumerate(adjacency):
            for v in neigh:
                if not 0 <= v < n:
                    raise VertexError(v, n)
                if v == u:
                    raise GraphError(f"self-loop at vertex {u}")
                if u not in adjacency[v]:
                    raise GraphError(f"edge ({u}, {v}) is not symmetric")

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of vertices."""
        return len(self._adj)

    @property
    def m(self) -> int:
        """Number of (undirected) edges."""
        return self._m

    @property
    def weights(self) -> np.ndarray:
        """Read-only weight array, indexed by vertex id."""
        return self._weights

    @property
    def labels(self) -> list[str] | None:
        """External vertex names, if the graph carries any."""
        return self._labels

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:
        return f"Graph(n={self.n}, m={self.m})"

    def check_vertex(self, v: int) -> None:
        """Raise :class:`VertexError` unless ``v`` is a valid vertex id."""
        if not 0 <= v < self.n:
            raise VertexError(v, self.n)

    def label_of(self, v: int) -> str:
        """The display name of ``v`` (falls back to ``v{id}``)."""
        self.check_vertex(v)
        if self._labels is not None:
            return self._labels[v]
        return f"v{v}"

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def neighbors(self, v: int) -> set[int]:
        """``N(v, G)``: the neighbour set of ``v``.  Do not mutate."""
        self.check_vertex(v)
        return self._adj[v]

    def degree(self, v: int) -> int:
        """``d(v, G)``: degree of ``v`` in the full graph."""
        self.check_vertex(v)
        return len(self._adj[v])

    def has_edge(self, u: int, v: int) -> bool:
        """True if ``{u, v}`` is an edge."""
        self.check_vertex(u)
        self.check_vertex(v)
        return v in self._adj[u]

    def vertices(self) -> range:
        """All vertex ids."""
        return range(self.n)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate each undirected edge once, as (u, v) with u < v."""
        for u, neigh in enumerate(self._adj):
            for v in neigh:
                if u < v:
                    yield u, v

    @property
    def adjacency(self) -> list[set[int]]:
        """The raw adjacency list.

        Exposed for performance-critical internal code (peelers, BFS); the
        sets must be treated as read-only.
        """
        return self._adj

    @property
    def csr(self) -> CSRAdjacency:
        """The CSR backend: flat ``indptr``/``indices`` arrays.

        Built lazily on first access (one O(m log m) lexsort flattening)
        and cached for the graph's lifetime; derived graphs share the
        cache, so a topology pays the build exactly once.
        """
        if self._csr is None:
            self._csr = CSRAdjacency.from_adjacency(self._adj)
        return self._csr

    @property
    def has_csr(self) -> bool:
        """True if the CSR backend has already been materialised."""
        return self._csr is not None

    def degrees(self) -> np.ndarray:
        """Degree of every vertex as an int64 array."""
        if self._csr is not None:
            return self._csr.degrees()
        return np.fromiter(
            (len(neigh) for neigh in self._adj), dtype=np.int64, count=self.n
        )

    @property
    def max_degree(self) -> int:
        """``dmax`` as reported in the paper's Table III."""
        if self.n == 0:
            return 0
        if self._csr is not None:
            # Also the lazy-adjacency path: substrate-attached graphs always
            # carry a seeded CSR, so no neighbour set is materialised here.
            return int(self._csr.degrees().max())
        return max(len(neigh) for neigh in self._adj)

    @property
    def avg_degree(self) -> float:
        """``davg = 2m/n`` as reported in the paper's Table III."""
        if self.n == 0:
            return 0.0
        return 2.0 * self.m / self.n

    # ------------------------------------------------------------------
    # Weights
    # ------------------------------------------------------------------
    def weight(self, v: int) -> float:
        """``w(v)``: weight of a single vertex."""
        self.check_vertex(v)
        return float(self._weights[v])

    @property
    def total_weight(self) -> float:
        """``w(V)``: sum of all vertex weights (balanced density needs it)."""
        return float(self._weights.sum())

    def weight_of(self, vertices: Iterable[int]) -> float:
        """``w(H)``: total weight of a vertex subset."""
        weights = self._weights
        return float(sum(weights[v] for v in vertices))

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def with_weights(self, weights: np.ndarray | Sequence[float]) -> "Graph":
        """A graph with identical topology but new vertex weights."""
        derived = Graph(self._adj, weights, labels=self._labels, _trusted=True)
        derived._csr = self._csr  # same topology: share the CSR cache
        return derived

    def with_labels(self, labels: Sequence[str]) -> "Graph":
        """A graph with identical topology/weights but new labels."""
        derived = Graph(self._adj, self._weights, labels=labels, _trusted=True)
        derived._csr = self._csr
        return derived
