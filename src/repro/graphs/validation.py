"""Structural invariants of graphs, checkable on demand.

Generators and loaders call :func:`validate_graph` in tests (and optionally
in production via ``strict=True`` flags) to catch symmetry violations,
self-loops, weight anomalies and label mismatches early rather than deep
inside a solver.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError, WeightError
from repro.graphs.graph import Graph


def validate_graph(graph: Graph) -> None:
    """Raise if any structural invariant of ``graph`` is violated.

    Checks: adjacency symmetry, no self-loops, endpoint ranges, edge count
    bookkeeping, weight domain, and label arity.  O(n + m).
    """
    adj = graph.adjacency
    n = graph.n
    half_edges = 0
    for u, neighbours in enumerate(adj):
        for v in neighbours:
            if not 0 <= v < n:
                raise GraphError(f"edge endpoint {v} out of range at vertex {u}")
            if v == u:
                raise GraphError(f"self-loop at vertex {u}")
            if u not in adj[v]:
                raise GraphError(f"asymmetric edge ({u}, {v})")
        half_edges += len(neighbours)
    if half_edges != 2 * graph.m:
        raise GraphError(
            f"edge count mismatch: adjacency holds {half_edges // 2}, graph says {graph.m}"
        )
    weights = graph.weights
    if weights.shape != (n,):
        raise WeightError(f"weights shape {weights.shape} for {n} vertices")
    if n and (not np.all(np.isfinite(weights)) or float(weights.min()) < 0.0):
        raise WeightError("weights must be finite and non-negative")
    if graph.labels is not None and len(graph.labels) != n:
        raise GraphError(f"{len(graph.labels)} labels for {n} vertices")


def assert_same_topology(a: Graph, b: Graph) -> None:
    """Raise unless the two graphs have identical vertex/edge sets."""
    if a.n != b.n:
        raise GraphError(f"vertex counts differ: {a.n} vs {b.n}")
    for u in range(a.n):
        if a.adjacency[u] != b.adjacency[u]:
            raise GraphError(f"neighbourhoods of vertex {u} differ")
