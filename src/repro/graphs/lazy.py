"""Lazy list-of-sets adjacency view over CSR arrays.

The two graph backends store the same topology twice: flat CSR arrays
(the bulk-kernel substrate) and a list of Python sets (the incremental /
reference substrate).  For a graph *built* edge-by-edge the sets come
first and the CSR is derived; for a graph *attached* from a snapshot or
a shared-memory substrate it is the other way around — the CSR arrays
already exist (and are shared, read-only, with every other process on
the machine), while the Python sets would cost O(n + 2m) private heap
per process to materialise eagerly.  On the serving graphs that heap is
the dominant per-worker memory, dwarfing the arrays themselves.

:class:`LazyAdjacency` is the fix: a sequence that *looks like* the
list-of-sets adjacency but materialises each vertex's neighbour set on
first access, straight from the (possibly shared) CSR arrays.  A worker
that only runs CSR kernels touches no set at all; the "set" backend and
the incremental peelers materialise exactly the vertices they visit.
Sets are cached after first build, so amortised access cost matches the
eager list.

The view is read-only by contract, like ``Graph.adjacency`` itself.
"""

from __future__ import annotations

import numpy as np

__all__ = ["LazyAdjacency"]


class LazyAdjacency:
    """List-of-sets facade over sorted CSR ``indptr``/``indices`` arrays.

    Supports exactly the access patterns :class:`repro.graphs.graph.Graph`
    and the set-backend kernels use: ``len()``, indexing, iteration.  The
    arrays must satisfy the CSR invariants (``graph_from_csr_arrays``
    validates them before building one of these).
    """

    __slots__ = ("_indptr", "_indices", "_sets")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray) -> None:
        self._indptr = indptr
        self._indices = indices
        # Sparse cache: most workers touch a tiny fraction of vertices.
        self._sets: dict[int, set[int]] = {}

    @property
    def edge_count(self) -> int:
        """Number of undirected edges (``len(indices) // 2``)."""
        return int(self._indices.size) // 2

    def __len__(self) -> int:
        return int(self._indptr.size) - 1

    def __getitem__(self, vertex: int) -> set[int]:
        if isinstance(vertex, slice):
            return [self[v] for v in range(*vertex.indices(len(self)))]
        v = int(vertex)
        if v < 0:
            v += len(self)
        cached = self._sets.get(v)
        if cached is not None:
            return cached
        if not 0 <= v < len(self):
            raise IndexError(vertex)
        run = self._indices[self._indptr[v] : self._indptr[v + 1]]
        materialized = set(run.tolist())
        self._sets[v] = materialized
        return materialized

    def __iter__(self):
        for v in range(len(self)):
            yield self[v]

    def to_sets(self) -> list[set[int]]:
        """Materialise the full eager list (used by bulk rewrite paths)."""
        return [self[v] for v in range(len(self))]

    def __repr__(self) -> str:
        return (
            f"LazyAdjacency(n={len(self)}, m={self.edge_count}, "
            f"materialized={len(self._sets)})"
        )
