"""Mutable assembly of :class:`~repro.graphs.graph.Graph` instances.

The builder tolerates duplicate edge insertions and both edge orientations,
silently ignores repeats, and rejects self-loops — matching how raw SNAP
edge lists behave (they contain both ``(u, v)`` and ``(v, u)`` lines).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import GraphError, VertexError
from repro.graphs.graph import Graph


class GraphBuilder:
    """Accumulate vertices and edges, then ``build()`` an immutable Graph.

    >>> b = GraphBuilder(3)
    >>> b.add_edge(0, 1).add_edge(1, 2)  # doctest: +ELLIPSIS
    <repro.graphs.builder.GraphBuilder object at ...>
    >>> g = b.build()
    >>> (g.n, g.m)
    (3, 2)
    """

    def __init__(self, n: int = 0) -> None:
        if n < 0:
            raise GraphError(f"vertex count must be non-negative, got {n}")
        self._adj: list[set[int]] = [set() for __ in range(n)]
        self._weights: list[float] = [0.0] * n
        self._labels: list[str] | None = None
        self._built = False

    @property
    def n(self) -> int:
        """Number of vertices added so far."""
        return len(self._adj)

    def _check(self, v: int) -> None:
        if not 0 <= v < len(self._adj):
            raise VertexError(v, len(self._adj))

    def add_vertex(self, weight: float = 0.0, label: str | None = None) -> int:
        """Append a vertex; returns its id."""
        self._adj.append(set())
        self._weights.append(weight)
        if label is not None:
            if self._labels is None:
                self._labels = [f"v{i}" for i in range(len(self._adj) - 1)]
            self._labels.append(label)
        elif self._labels is not None:
            self._labels.append(f"v{len(self._adj) - 1}")
        return len(self._adj) - 1

    def ensure_vertex(self, v: int) -> "GraphBuilder":
        """Grow the vertex set so that id ``v`` exists."""
        if v < 0:
            raise VertexError(v, len(self._adj))
        while len(self._adj) <= v:
            self.add_vertex()
        return self

    def add_edge(self, u: int, v: int) -> "GraphBuilder":
        """Add the undirected edge {u, v}; duplicates are ignored."""
        self._check(u)
        self._check(v)
        if u == v:
            raise GraphError(f"self-loop at vertex {u}")
        self._adj[u].add(v)
        self._adj[v].add(u)
        return self

    def add_edges(self, edges: Iterable[tuple[int, int]]) -> "GraphBuilder":
        """Add many undirected edges."""
        for u, v in edges:
            self.add_edge(u, v)
        return self

    def has_edge(self, u: int, v: int) -> bool:
        """True if {u, v} has been added."""
        self._check(u)
        self._check(v)
        return v in self._adj[u]

    def neighbors(self, v: int) -> set[int]:
        """Current neighbour set of ``v`` (a copy, safe to keep)."""
        self._check(v)
        return set(self._adj[v])

    def set_weight(self, v: int, weight: float) -> "GraphBuilder":
        """Assign ``w(v)``."""
        self._check(v)
        self._weights[v] = float(weight)
        return self

    def set_weights(self, weights: Sequence[float] | np.ndarray) -> "GraphBuilder":
        """Assign all vertex weights at once."""
        if len(weights) != len(self._adj):
            raise GraphError(
                f"{len(weights)} weights for {len(self._adj)} vertices"
            )
        self._weights = [float(w) for w in weights]
        return self

    def set_label(self, v: int, label: str) -> "GraphBuilder":
        """Assign a display name to ``v``."""
        self._check(v)
        if self._labels is None:
            self._labels = [f"v{i}" for i in range(len(self._adj))]
        self._labels[v] = label
        return self

    def build(self, warm_csr: bool = False) -> Graph:
        """Freeze into a :class:`Graph`.  The builder must not be reused.

        ``warm_csr=True`` materialises the CSR backend eagerly (it is
        otherwise built lazily on first kernel use) — callers that will
        immediately run bulk kernels, like the benchmark drivers, pay the
        flattening cost up front instead of inside a timed region.
        """
        if self._built:
            raise GraphError("builder already consumed; create a new one")
        self._built = True
        graph = Graph(
            self._adj,
            np.asarray(self._weights, dtype=np.float64),
            labels=self._labels,
            _trusted=True,
        )
        if warm_csr:
            graph.csr  # noqa: B018 — touch to populate the cache
        return graph


def graph_from_csr_arrays(
    indptr,
    indices,
    weights: Sequence[float] | None = None,
    labels: Sequence[str] | None = None,
    trusted: bool = False,
    lazy_adjacency: bool = False,
) -> Graph:
    """Rebuild a :class:`Graph` from flat CSR arrays.

    The inverse of flattening: the serving layer's process-pool workers
    receive one ``(indptr, indices, weights)`` payload per worker and
    reconstruct the graph without re-parsing edge lists or re-sorting
    anything.  Both backends come up warm — the set adjacency is built
    from the neighbour runs and the CSR cache is seeded directly from the
    (validated) arrays, so no flattening cost is paid either.

    ``trusted=True`` skips the per-edge symmetry/self-loop re-validation
    (an O(m) Python loop that dominates reconstruction time).  The cheap
    vectorised shape/sortedness checks still run.  Reserve it for arrays
    this process produced or a manifest already vouches for — snapshot
    loads (:func:`repro.serving.store.load_snapshot`) and same-machine
    worker payloads — never for arrays off the wire.

    ``lazy_adjacency=True`` (requires ``trusted=True``) skips the eager
    list-of-sets build entirely and installs a
    :class:`repro.graphs.lazy.LazyAdjacency` view instead: neighbour sets
    materialise per vertex on first access.  This is how fleet members and
    pool workers attach to a shared/mmapped substrate without paying the
    O(n + 2m) private-heap copy of the set backend.
    """
    from repro.graphs.csr import CSRAdjacency
    from repro.graphs.lazy import LazyAdjacency

    if lazy_adjacency and not trusted:
        raise GraphError(
            "lazy_adjacency requires trusted=True: per-edge validation "
            "would materialise every neighbour set anyway"
        )
    indptr = np.ascontiguousarray(indptr, dtype=np.int64)
    if indptr.ndim != 1 or indptr.size < 1:
        raise GraphError("indptr must be a 1-D array of length n + 1")
    n = int(indptr.size - 1)
    indices = np.ascontiguousarray(indices)
    if indices.ndim != 1 or int(indptr[-1]) != indices.size:
        raise GraphError(
            f"indices length {indices.size} does not match indptr[-1]="
            f"{int(indptr[-1])}"
        )
    if indices.size > 1:
        # Every kernel assumes sorted neighbour runs; one vectorised pass
        # checks ascending order everywhere except across run boundaries.
        # Strict ascent within a run also rules out duplicate entries.
        descending = np.diff(indices.astype(np.int64)) <= 0
        boundary = np.zeros(indices.size - 1, dtype=bool)
        starts = indptr[1:-1]
        starts = starts[(starts > 0) & (starts < indices.size)]
        boundary[starts - 1] = True
        if np.any(descending & ~boundary):
            raise GraphError("neighbour runs must be sorted ascending")
    csr = CSRAdjacency(indptr, indices)
    if lazy_adjacency:
        adjacency = LazyAdjacency(csr.indptr, csr.indices)
    else:
        adjacency = [
            set(indices[indptr[v] : indptr[v + 1]].tolist()) for v in range(n)
        ]
        if sum(len(neigh) for neigh in adjacency) != indices.size:
            raise GraphError("indices contain duplicate entries within a run")
    # The Graph constructor re-validates symmetry/self-loops/ranges — CSR
    # payloads cross process boundaries, so by default they are not
    # trusted input.
    graph = Graph(adjacency, weights, labels=labels, _trusted=trusted)
    graph._csr = csr
    return graph


def graph_from_edges(
    edges: Iterable[tuple[int, int]],
    weights: Sequence[float] | None = None,
    n: int | None = None,
) -> Graph:
    """Convenience: build a graph straight from an edge iterable.

    ``n`` defaults to 1 + the largest endpoint mentioned; isolated trailing
    vertices therefore need an explicit ``n`` (or ``weights``, whose length
    wins when larger).
    """
    edge_list = [(int(u), int(v)) for u, v in edges]
    implied = 1 + max((max(u, v) for u, v in edge_list), default=-1)
    size = max(implied, n or 0, len(weights) if weights is not None else 0)
    builder = GraphBuilder(size)
    builder.add_edges(edge_list)
    if weights is not None:
        if len(weights) < size:
            raise GraphError(f"{len(weights)} weights for {size} vertices")
        builder.set_weights(weights)
    return builder.build()
