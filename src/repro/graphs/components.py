"""Connectivity primitives: BFS, connected components, subset connectivity.

These run both on the full graph and — crucially for every solver — on an
arbitrary *vertex subset*, because communities live inside induced
subgraphs.  Subset variants take the candidate set as a Python set and never
materialise an induced graph object.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.graphs.backend import resolve_backend
from repro.graphs.csr import membership_mask
from repro.graphs.graph import Graph


def bfs_order(graph: Graph, source: int, within: set[int] | None = None) -> list[int]:
    """Vertices reachable from ``source`` in BFS order.

    When ``within`` is given, traversal is restricted to that vertex set
    (``source`` must belong to it).  Neighbour visits are sorted for
    determinism — solver outputs must not depend on set iteration order.
    """
    graph.check_vertex(source)
    if within is not None and source not in within:
        raise ValueError(f"source {source} not in the restricting set")
    adj = graph.adjacency
    seen = {source}
    order = [source]
    queue = deque([source])
    while queue:
        u = queue.popleft()
        if within is None:
            candidates = adj[u]
        else:
            candidates = adj[u] & within
        for v in sorted(candidates):
            if v not in seen:
                seen.add(v)
                order.append(v)
                queue.append(v)
    return order


def connected_components(graph: Graph) -> list[set[int]]:
    """All connected components of the full graph, as vertex sets.

    Components are ordered by their smallest vertex id.
    """
    return connected_components_of(graph, range(graph.n))


def connected_components_of(
    graph: Graph, vertices: Iterable[int], backend: str = "auto"
) -> list[set[int]]:
    """Connected components of the subgraph induced by ``vertices``.

    Runs in O(|H| + |E(G[H])|).  Deterministic: components are emitted in
    order of their smallest member.  Under the CSR backend, subsets that
    are a sizable fraction of the graph are split by vectorised frontier
    BFS (:meth:`repro.graphs.csr.CSRAdjacency.components_of_mask`); tiny
    subsets keep the subset-proportional set BFS, mirroring the routing of
    ``kcore_of_subset``.
    """
    subset = set(vertices)
    if resolve_backend(backend) == "csr" and len(subset) * 16 >= graph.n:
        mask = membership_mask(graph.n, subset)
        return [
            set(piece.tolist())
            for piece in graph.csr.components_of_mask(mask)
        ]
    for v in subset:
        graph.check_vertex(v)
    adj = graph.adjacency
    unvisited = set(subset)
    components: list[set[int]] = []
    # Iterate seeds in sorted order so output order is stable.
    for seed in sorted(subset):
        if seed not in unvisited:
            continue
        comp = {seed}
        unvisited.discard(seed)
        queue = deque([seed])
        while queue:
            u = queue.popleft()
            for v in adj[u] & unvisited:
                unvisited.discard(v)
                comp.add(v)
                queue.append(v)
        components.append(comp)
    return components


def is_connected_subset(graph: Graph, vertices: Iterable[int]) -> bool:
    """True if ``G[vertices]`` is connected (empty set counts as False).

    Single-vertex subsets are connected.  This is constraint (2) of the
    paper's Definition 3.
    """
    subset = set(vertices)
    if not subset:
        return False
    seed = next(iter(subset))
    adj = graph.adjacency
    seen = {seed}
    queue = deque([seed])
    while queue:
        u = queue.popleft()
        for v in adj[u] & subset:
            if v not in seen:
                seen.add(v)
                queue.append(v)
    return len(seen) == len(subset)


def shortest_hop_distances(
    graph: Graph, source: int, within: set[int] | None = None
) -> dict[int, int]:
    """Hop distance from ``source`` to every reachable vertex (BFS levels).

    Used by the local search to rank the "s nearest neighbours" of a seed
    vertex (Algorithm 4, Line 4).
    """
    graph.check_vertex(source)
    adj = graph.adjacency
    dist = {source: 0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        neighbours = adj[u] if within is None else adj[u] & within
        for v in neighbours:
            if v not in dist:
                dist[v] = dist[u] + 1
                queue.append(v)
    return dist
