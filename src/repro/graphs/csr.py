"""Compressed-sparse-row adjacency: the array-speed graph backend.

A :class:`CSRAdjacency` stores the same topology as the list-of-sets
adjacency of :class:`repro.graphs.graph.Graph`, flattened into two flat
arrays — ``indptr`` (length ``n + 1``, int64) and ``indices`` (length
``2m``, int32 when every vertex id fits, neighbours of vertex ``v`` at
``indices[indptr[v]:indptr[v + 1]]``, sorted ascending).  The peeling kernels in :mod:`repro.core` and
:mod:`repro.truss` run over these flat arrays with bincount/frontier
operations instead of per-vertex Python set intersections, which is where
the order-of-magnitude speedups come from (see
``benchmarks/bench_substrates.py``).

The class also hosts the vectorised primitives every kernel needs:

* :meth:`gather` / :meth:`gather_full` — concatenate the neighbour runs of
  a frontier array in one shot (the repeat/arange offset trick);
* :meth:`subset_degrees` / :meth:`peel_to_kcore` /
  :meth:`components_of_mask` — induced degrees of a boolean vertex mask,
  the fixpoint "delete while min degree < k" peel, and the masked
  component split shared by :func:`repro.core.kcore.kcore_of_subset` and
  :class:`repro.core.peeler.PeelingWorkspace`.

The peel and component-split hot loops themselves live in
:mod:`repro.kernels` (compiled when Numba is installed, pure numpy
otherwise); the methods here are thin flat-array adapters around that
dispatch point.
"""

from __future__ import annotations

import numpy as np

from repro import kernels
from repro.errors import VertexError
from repro.kernels import decrement_degrees

__all__ = ["CSRAdjacency", "decrement_degrees", "membership_mask"]


def membership_mask(n: int, vertices) -> np.ndarray:
    """Boolean membership mask over ``0..n-1``, validating vertex ids.

    One vectorised bounds check instead of a per-vertex Python loop; raises
    :class:`VertexError` naming an offending vertex, like ``check_vertex``.
    """
    members = np.fromiter(vertices, dtype=np.int64)
    mask = np.zeros(n, dtype=bool)
    if members.size:
        lo, hi = int(members.min()), int(members.max())
        if lo < 0:
            raise VertexError(lo, n)
        if hi >= n:
            raise VertexError(hi, n)
        mask[members] = True
    return mask


class CSRAdjacency:
    """Immutable CSR view of an undirected graph's adjacency structure.

    ``indices`` is stored as int32 whenever every vertex id fits (n < 2³¹),
    halving the memory traffic of the gather-heavy kernels; the overflow
    guard falls back to int64 for hypothetical n >= 2³¹ graphs.  ``indptr``
    stays int64 unconditionally: its entries are cumulative *edge counts*
    that reach 2m and would overflow int32 already at m >= 2³⁰.
    """

    __slots__ = ("indptr", "indices")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray) -> None:
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        index_dtype = self._index_dtype(len(self.indptr) - 1)
        self.indices = np.ascontiguousarray(indices, dtype=index_dtype)
        self.indptr.setflags(write=False)
        self.indices.setflags(write=False)

    @staticmethod
    def _index_dtype(n: int) -> np.dtype:
        """Narrowest integer dtype that can store every vertex id < ``n``."""
        if n <= np.iinfo(np.int32).max:
            return np.dtype(np.int32)
        return np.dtype(np.int64)

    @classmethod
    def from_adjacency(cls, adjacency: list[set[int]]) -> "CSRAdjacency":
        """Flatten a list-of-sets adjacency into sorted CSR arrays.

        One pass collects every (owner, neighbour) pair; a single lexsort
        then groups by owner and sorts each neighbour run ascending.
        """
        n = len(adjacency)
        counts = np.fromiter(
            (len(neigh) for neigh in adjacency), dtype=np.int64, count=n
        )
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        total = int(indptr[-1])
        flat = np.fromiter(
            (v for neigh in adjacency for v in neigh), dtype=np.int64, count=total
        )
        owners = np.repeat(np.arange(n, dtype=np.int64), counts)
        order = np.lexsort((flat, owners))
        return cls(indptr, flat[order])

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of vertices."""
        return len(self.indptr) - 1

    @property
    def m(self) -> int:
        """Number of undirected edges (``indptr[-1] == 2m``)."""
        return int(self.indptr[-1]) // 2

    def __repr__(self) -> str:
        return f"CSRAdjacency(n={self.n}, m={self.m})"

    # ------------------------------------------------------------------
    # Primitives
    # ------------------------------------------------------------------
    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbour array of ``v`` (a read-only view)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def degrees(self) -> np.ndarray:
        """Degree of every vertex (fresh writable array)."""
        return np.diff(self.indptr)

    def gather(self, vertices: np.ndarray) -> np.ndarray:
        """Concatenated neighbour runs of ``vertices`` (duplicates kept)."""
        return self.indices[self._gather_positions(vertices)[0]]

    def gather_full(
        self, vertices: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Like :meth:`gather`, plus the owning vertex of each element and
        its absolute position inside ``indices``."""
        positions, counts = self._gather_positions(vertices)
        owners = np.repeat(np.asarray(vertices, dtype=np.int64), counts)
        return self.indices[positions], owners, positions

    def _gather_positions(
        self, vertices: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        vertices = np.asarray(vertices, dtype=np.int64)
        starts = self.indptr[vertices]
        counts = self.indptr[vertices + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64), counts
        cum = np.cumsum(counts)
        within = np.arange(total, dtype=np.int64) - np.repeat(cum - counts, counts)
        return np.repeat(starts, counts) + within, counts

    # ------------------------------------------------------------------
    # Component-local views
    # ------------------------------------------------------------------
    def induced_local(self, members: np.ndarray) -> "CSRAdjacency":
        """CSR of ``G[members]`` relabelled to the dense id space 0..c-1.

        ``members`` must be sorted ascending and duplicate-free; local id
        ``i`` stands for global vertex ``members[i]``.  Neighbour runs stay
        sorted because filtering and the monotone searchsorted relabelling
        both preserve the original run order.  Membership testing uses a
        full-length boolean mask when the subset is a sizable fraction of
        the graph and binary search otherwise, so many-small-component
        callers do not pay O(n) per build.
        """
        members = np.asarray(members, dtype=np.int64)
        c = members.size
        if c == 0:
            return CSRAdjacency(np.zeros(1, dtype=np.int64), np.empty(0))
        neigh = self.gather(members)
        counts = self.indptr[members + 1] - self.indptr[members]
        if c * 16 >= self.n:
            mask = np.zeros(self.n, dtype=bool)
            mask[members] = True
            inside = mask[neigh]
        else:
            pos = np.searchsorted(members, neigh)
            pos[pos == c] = 0  # out-of-range probes cannot match members[0]
            inside = members[pos] == neigh
        owners = np.repeat(np.arange(c, dtype=np.int64), counts)[inside]
        local_degrees = np.bincount(owners, minlength=c)
        indptr = np.zeros(c + 1, dtype=np.int64)
        np.cumsum(local_degrees, out=indptr[1:])
        local_indices = np.searchsorted(members, neigh[inside])
        return CSRAdjacency(indptr, local_indices)

    def components_of_mask(self, mask: np.ndarray) -> list[np.ndarray]:
        """Connected components among the vertices with ``mask`` set.

        Components are emitted in order of their smallest member and each
        is a sorted int64 id array — the same contract as the set-backend
        splitter, so solver outputs do not depend on the backend.
        ``mask`` is not modified.  The BFS itself runs in the kernel tier
        (:func:`repro.kernels.components_of_mask`).
        """
        return kernels.components_of_mask(self.indptr, self.indices, mask)

    # ------------------------------------------------------------------
    # Subset kernels
    # ------------------------------------------------------------------
    def subset_degrees(
        self, mask: np.ndarray, members: np.ndarray | None = None
    ) -> np.ndarray:
        """Induced degree of every vertex under boolean ``mask``.

        Returns a full-length int64 array (zero outside the mask).
        """
        if members is None:
            members = np.flatnonzero(mask)
        neigh, owners, __ = self.gather_full(members)
        inside = owners[mask[neigh]]
        return np.bincount(inside, minlength=mask.size).astype(np.int64, copy=False)

    def peel_to_kcore(
        self, mask: np.ndarray, k: int, degrees: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Peel ``mask`` (in place) to the maximal sub-k-core.

        Delete every masked vertex with induced degree < k, cascade the
        degree decrements, repeat until the fixpoint — the loop itself is
        :func:`repro.kernels.peel_to_kcore`.  Returns ``(mask, degrees)``;
        ``degrees`` is exact for surviving vertices (stale entries may
        remain for deleted ones).
        """
        if degrees is None:
            degrees = self.subset_degrees(mask)
        kernels.peel_to_kcore(self.indptr, self.indices, mask, k, degrees)
        return mask, degrees
