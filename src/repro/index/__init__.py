"""Precomputed influential-community index (ROADMAP open item #1).

Bi et al. ("An Optimal and Progressive Approach to Online Search of
Top-K Influential Communities") showed that once the nested community
structure of a graph is materialised per degree constraint, any
``(k, r, f)`` top-r query is an index *lookup* rather than a search.
:class:`InfluentialIndex` is that endgame for the serving stack: built
once from the cached core decomposition (through the shared
:class:`~repro.serving.engine_pool.ExpansionEnginePool`), it stores for
each k the ranked community layers with their per-aggregator values and
answers indexed queries without a cascade peel or a lattice expansion —
the existing solver path stays the parity oracle and the fallback.
"""

from repro.index.influential_index import INDEXED_METHODS, InfluentialIndex

__all__ = ["INDEXED_METHODS", "InfluentialIndex"]
