"""The precomputed top-r community index behind sub-millisecond serving.

Design
------
One :class:`InfluentialIndex` covers one graph.  For every degree
constraint ``k`` in ``1..kmax`` and every indexed aggregator it stores an
**entry**: the ranked community layers ``L1 ⊇ L2 ⊇ ...`` that Algorithm 2
(TIC-IMPROVED) would emit for that ``(k, f)`` pair, captured once to a
configurable ``depth`` (the largest ``r`` the entry can answer) by
running the solver itself through the shared
:class:`~repro.serving.engine_pool.ExpansionEnginePool`.  An indexed
query then reduces to slicing the stored ranking — no cascade peel, no
lattice expansion, no value arithmetic.

Serving an entry slice is *provably* byte-identical to a cold solver run:

* at ``eps = 0`` the best-first expansion pops communities in
  non-increasing value order, so a cold run with a smaller ``r`` returns
  exactly the first ``r`` stored communities — same sets, same float bit
  patterns — **unless** the value at the ``r``-th boundary ties with the
  ``r+1``-st, where the solver's heap order (not the sorted order) picks
  the winner.  The index therefore serves ``r < depth`` only when
  ``values[r-1] > values[r]`` strictly, and falls back to the solver on a
  boundary tie;
* an entry that came back with fewer than ``depth`` communities is
  **complete**: the accumulator never filled, so no pruning ever ran and
  the entry holds the entire community family at that ``k`` — any ``r``
  can be served from it.

Maintenance mirrors the serving caches' locality reasoning:

* **edge updates** carry :class:`~repro.graphs.delta.GraphDelta`'s
  ``max_affected_core`` bound: every level strictly above it has an
  identical maximal k-core and unchanged weights, so its entries survive
  verbatim; levels at or below are marked pending and re-captured lazily
  (one warm solver call each) on next use;
* **weight updates** keep every level's topology valid but stale-value:
  all entries drop to pending, and the re-seal is value-only work — the
  engine pool's :meth:`~repro.serving.engine_pool.ExpansionEnginePool
  .reweight` re-gathers weight slices in place, so re-capturing replays
  the best-first walk over fully cached structures without re-peeling or
  relabelling anything.

The index is a pure cache with a proof obligation, and the solver path
stays the parity oracle: ``tests/index`` pins byte-identity on the golden
menagerie and under Hypothesis-driven interleavings of updates.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.aggregators.registry import get_aggregator
from repro.errors import SpecError
from repro.influential.api import top_r_communities
from repro.influential.community import Community
from repro.influential.results import ResultSet

if TYPE_CHECKING:  # pragma: no cover — hints only
    from repro.graphs.graph import Graph
    from repro.serving.engine_pool import ExpansionEnginePool
    from repro.serving.query import InfluentialQuery

__all__ = ["INDEXED_METHODS", "InfluentialIndex"]

#: Query methods an index entry may answer.  All three dispatch to
#: TIC-IMPROVED at ``eps = 0`` for the indexed aggregator family:
#: ``"improved"`` forces exactness regardless of ``eps``, while
#: ``"auto"``/``"approx"`` are only eligible when the query's own
#: ``eps == 0.0`` (any other value changes — or rejects — the answer).
INDEXED_METHODS = ("auto", "improved", "approx")

#: Default capture depth: the largest ``r`` served from the index when an
#: entry is truncated (complete entries answer any ``r``).
DEFAULT_DEPTH = 32

_ABSENT = object()


class _IndexEntry:
    """One ``(k, aggregator)`` level: the ranked community layers."""

    __slots__ = ("communities", "values", "complete")

    def __init__(
        self, communities: tuple[Community, ...], complete: bool
    ) -> None:
        self.communities = communities
        self.values = tuple(float(c.value) for c in communities)
        self.complete = complete


class InfluentialIndex:
    """Precomputed per-k community layers for one graph.

    ``aggregators`` names the indexed family (canonicalised through the
    registry); only aggregators the exact best-first search covers —
    decreasing under removal and not node-dominated, i.e. the sum /
    sum-surplus family — may be indexed, because entries are captured
    with (and byte-compared against) TIC-IMPROVED.  ``depth`` caps the
    ``r`` a truncated entry can answer.

    The index never owns the graph: the service passes its graph, engine
    pool and backend into :meth:`build` / :meth:`serve`, so the pool's
    cached structures are shared between index captures and fallback
    solves.  Like the pool, it is intentionally lock-free — the owning
    service (or the HTTP solver thread) serialises access.
    """

    __slots__ = (
        "depth",
        "_aggregators",
        "_entries",
        "_built",
        "hits",
        "fallbacks",
        "builds",
        "levels_retained",
        "levels_invalidated",
        "weight_refreshes",
    )

    def __init__(
        self,
        depth: int = DEFAULT_DEPTH,
        aggregators: Sequence[str] = ("sum",),
    ) -> None:
        if depth < 1:
            raise SpecError(f"index depth must be >= 1, got {depth}")
        names: list[str] = []
        for spec in aggregators:
            aggregator = get_aggregator(spec)
            if aggregator.is_node_dominated or not aggregator.decreases_under_removal:
                raise SpecError(
                    f"aggregator {aggregator.name!r} is not indexable: the "
                    f"index stores TIC-IMPROVED layers, which cover the "
                    f"decreasing-under-removal (sum-family) aggregators only"
                )
            if aggregator.name not in names:
                names.append(aggregator.name)
        if not names:
            raise SpecError("an index needs at least one aggregator")
        self.depth = depth
        self._aggregators = tuple(names)
        # (k, canonical aggregator name) -> entry, or None while a level
        # awaits lazy (re)capture after an update invalidated it.
        self._entries: dict[tuple[int, str], _IndexEntry | None] = {}
        self._built = False
        self.hits = 0
        self.fallbacks = 0
        self.builds = 0
        self.levels_retained = 0
        self.levels_invalidated = 0
        self.weight_refreshes = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def aggregators(self) -> tuple[str, ...]:
        """Canonical names of the indexed aggregator family."""
        return self._aggregators

    @property
    def built(self) -> bool:
        """True once :meth:`build` (or a payload load) populated levels."""
        return self._built

    def __len__(self) -> int:
        return len(self._entries)

    def pending_levels(self) -> int:
        """Levels awaiting lazy re-capture after an update."""
        return sum(1 for entry in self._entries.values() if entry is None)

    def level_state(self, k: int, aggregator: str) -> str:
        """One of ``absent`` / ``pending`` / ``partial(N)`` / ``complete(N)``.

        ``complete`` means the entry holds the *entire* community family at
        that k (fewer than ``depth`` exist), so any r is serveable from it;
        ``partial`` holds the top ``depth`` only.  Diagnostic rendering for
        the CLI — the serving path goes through :meth:`serve`.
        """
        entry = self._entries.get((k, aggregator), _ABSENT)
        if entry is _ABSENT:
            return "absent"
        if entry is None:
            return "pending"
        kind = "complete" if entry.complete else "partial"
        return f"{kind}({len(entry.communities)})"

    def stats(self) -> dict[str, object]:
        """Counters and coverage, JSON-ready (feeds ``GET /stats``)."""
        ready = len(self._entries) - self.pending_levels()
        return {
            "built": self._built,
            "depth": self.depth,
            "aggregators": list(self._aggregators),
            "levels": len(self._entries),
            "levels_ready": ready,
            "levels_pending": self.pending_levels(),
            "hits": self.hits,
            "fallbacks": self.fallbacks,
            "builds": self.builds,
            "levels_retained": self.levels_retained,
            "levels_invalidated": self.levels_invalidated,
            "weight_refreshes": self.weight_refreshes,
        }

    def __repr__(self) -> str:
        return (
            f"InfluentialIndex(depth={self.depth}, "
            f"aggregators={list(self._aggregators)}, "
            f"levels={len(self._entries)}, pending={self.pending_levels()})"
        )

    # ------------------------------------------------------------------
    # Build / capture
    # ------------------------------------------------------------------
    def build(
        self,
        graph: "Graph",
        pool: "ExpansionEnginePool",
        backend: str = "auto",
    ) -> "InfluentialIndex":
        """Capture every ``(k, aggregator)`` level for ``k`` in 1..kmax.

        Levels are captured k-ascending with aggregators inner, so the
        pool's per-k seed state (an LRU) is reused across the aggregator
        sweep at each k instead of being rebuilt per level.
        """
        self._entries = {}
        for k in range(1, pool.kmax + 1):
            for name in self._aggregators:
                self._capture((k, name), graph, pool, backend)
        self._built = True
        return self

    def _capture(
        self,
        key: tuple[int, str],
        graph: "Graph",
        pool: "ExpansionEnginePool",
        backend: str,
    ) -> _IndexEntry:
        """(Re)run the capturing solver for one level and seal its entry.

        ``method="improved"`` pins ``eps = 0`` regardless of caller
        settings, so the stored ranking is the exact one every indexed
        method must reproduce.  A result shorter than ``depth`` means the
        accumulator never filled — no pruning ran, the entry holds the
        complete community family at this k.
        """
        k, name = key
        result = top_r_communities(
            graph,
            k=k,
            r=self.depth,
            f=name,
            method="improved",
            backend=backend,
            engine_pool=pool,
        )
        entry = _IndexEntry(tuple(result), complete=len(result) < self.depth)
        self._entries[key] = entry
        self.builds += 1
        return entry

    def rebuild_pending(
        self,
        graph: "Graph",
        pool: "ExpansionEnginePool",
        backend: str = "auto",
    ) -> int:
        """Eagerly re-capture every pending level; returns how many ran.

        Serving does this lazily per level; the CLI and benchmarks call
        it to re-seal the whole index in one pass (e.g. before saving a
        snapshot that should come up fully warm).
        """
        rebuilt = 0
        for key, entry in list(self._entries.items()):
            if entry is None:
                self._capture(key, graph, pool, backend)
                rebuilt += 1
        return rebuilt

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def plan(self, query: "InfluentialQuery") -> tuple[int, str] | None:
        """The entry key answering ``query``, or None if unindexable.

        Eligibility mirrors the dispatch table of
        :func:`~repro.influential.api.top_r_communities`: the core
        (not truss) cohesion, size-unconstrained, overlapping problem,
        under a method that resolves to TIC-IMPROVED at ``eps = 0`` for
        an indexed aggregator.  ``greedy``/``seed_order``/``rng_seed``
        never reach that dispatch path, so their values don't matter.
        """
        if query.cohesion != "core" or query.s is not None:
            return None
        if query.constraints is not None:
            # The stored rankings are unconstrained; a label-constrained
            # answer is a different lattice, served by the solver path.
            return None
        if query.non_overlapping or query.k < 1 or query.r < 1:
            return None
        if query.method not in INDEXED_METHODS:
            return None
        if query.method != "improved" and float(query.eps) != 0.0:
            return None
        try:
            name = query.aggregator.name
        except Exception:
            # Unknown aggregator spec: let the solver path raise the
            # canonical error instead of guessing here.
            return None
        if name not in self._aggregators:
            return None
        return (query.k, name)

    def serve(
        self,
        query: "InfluentialQuery",
        graph: "Graph",
        pool: "ExpansionEnginePool",
        backend: str = "auto",
    ) -> ResultSet | None:
        """Answer ``query`` from the index, or None to use the solver.

        A pending level (invalidated by an update) is re-captured here —
        one warm solver call — before answering; a level the index never
        covered (e.g. ``k`` above the build-time kmax, where the pool's
        fast path already answers for free) falls back.  A boundary value
        tie at rank ``r`` also falls back: the stored sorted order cannot
        know which tied community the solver's heap order would keep.
        """
        if not self._built:
            return None
        key = self.plan(query)
        if key is None:
            return None
        entry = self._entries.get(key, _ABSENT)
        if entry is _ABSENT:
            return None
        if entry is None:
            entry = self._capture(key, graph, pool, backend)
        result = self._slice(entry, query.r)
        if result is None:
            self.fallbacks += 1
        else:
            self.hits += 1
        return result

    @staticmethod
    def _slice(entry: _IndexEntry, r: int) -> ResultSet | None:
        count = len(entry.communities)
        if r >= count:
            # The whole stored ranking.  Sound when the entry is complete
            # (the full family — larger r cannot add members) or when r
            # equals the capture depth exactly (the identical solver
            # call); a truncated entry cannot answer r beyond its depth.
            if entry.complete or r == count:
                return ResultSet(entry.communities)
            return None
        if entry.values[r - 1] > entry.values[r]:
            return ResultSet(entry.communities[:r])
        return None

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def apply_update(
        self, max_affected_core: int, kmax: int
    ) -> tuple[int, int]:
        """Absorb an edge-update delta; returns ``(retained, invalidated)``.

        Exactly the result cache's locality argument: a level with
        ``k > max_affected_core`` has an identical maximal k-core and
        unchanged weights, so its stored ranking answers post-update
        queries verbatim.  Levels at or below the bound go pending, and
        levels newly reachable because ``kmax`` grew are registered as
        pending too (a level left stranded above a *shrunken* kmax is
        necessarily at ``k <= max_affected_core``, so it is already
        pending and will re-capture to an empty — complete — family).
        """
        if not self._built:
            return (0, 0)
        retained = invalidated = 0
        for key, entry in list(self._entries.items()):
            if key[0] <= max_affected_core:
                if entry is not None:
                    self._entries[key] = None
                    invalidated += 1
            elif entry is not None:
                retained += 1
        for k in range(1, kmax + 1):
            for name in self._aggregators:
                self._entries.setdefault((k, name), None)
        self.levels_retained += retained
        self.levels_invalidated += invalidated
        return (retained, invalidated)

    def invalidate_values(self) -> int:
        """Absorb a weight update; returns how many levels went pending.

        Topology survives everywhere, so this is a value-only refresh:
        each level keeps its key and is re-sealed lazily by one warm
        replay over the engine pool's reweighted-in-place structures —
        no peel, no relabelling, no CSR work.  (The stored rankings
        themselves cannot be patched in place: the solver computes
        sum-family values incrementally along its discovery chains, so
        only a replay reproduces the exact float bit patterns serving
        promises.)
        """
        if not self._built:
            return 0
        refreshed = 0
        for key, entry in self._entries.items():
            if entry is not None:
                self._entries[key] = None
                refreshed += 1
        self.weight_refreshes += refreshed
        return refreshed

    def reset(self, kmax: int) -> None:
        """Point the index at a different graph: all levels pending."""
        if not self._built:
            return
        self._entries = {
            (k, name): None
            for k in range(1, kmax + 1)
            for name in self._aggregators
        }

    # ------------------------------------------------------------------
    # Persistence (snapshot arrays + worker payloads)
    # ------------------------------------------------------------------
    def to_payload(self) -> dict[str, object]:
        """Flat-array form: JSON-able header + three numpy arrays.

        Community member ids are concatenated into one int array
        (``members``), delimited by ``offsets`` (length: total
        communities + 1), with per-community values in ``values`` —
        the same mmap-friendly layout the snapshot store writes, and
        the payload worker processes rebuild their index from.
        """
        keys = sorted(self._entries)
        header = []
        chunks: list[np.ndarray] = []
        lengths: list[int] = []
        values: list[float] = []
        for key in keys:
            entry = self._entries[key]
            count = 0 if entry is None else len(entry.communities)
            header.append(
                {
                    "k": key[0],
                    "f": key[1],
                    "count": count,
                    "complete": bool(entry is not None and entry.complete),
                    "pending": entry is None,
                }
            )
            if entry is None:
                continue
            for community in entry.communities:
                chunks.append(
                    np.fromiter(community.members(), dtype=np.int64)
                )
                lengths.append(chunks[-1].size)
                values.append(float(community.value))
        members = (
            np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
        )
        if members.size == 0 or members.max() <= np.iinfo(np.int32).max:
            members = members.astype(np.int32)
        offsets = np.zeros(len(lengths) + 1, dtype=np.int64)
        if lengths:
            np.cumsum(np.asarray(lengths, dtype=np.int64), out=offsets[1:])
        return {
            "depth": self.depth,
            "aggregators": list(self._aggregators),
            "entries": header,
            "members": members,
            "offsets": offsets,
            "values": np.asarray(values, dtype=np.float64),
        }

    @classmethod
    def from_payload(cls, payload: dict[str, object]) -> "InfluentialIndex":
        """Rebuild an index from :meth:`to_payload` output.

        Values are restored from the float64 array bit-for-bit, so a
        snapshot round trip preserves the byte-identity guarantee.
        """
        index = cls(
            depth=int(payload["depth"]),
            aggregators=list(payload["aggregators"]),  # type: ignore[arg-type]
        )
        members = np.asarray(payload["members"])
        offsets = np.asarray(payload["offsets"])
        values = np.asarray(payload["values"])
        cursor = 0
        for spec in payload["entries"]:  # type: ignore[union-attr]
            key = (int(spec["k"]), str(spec["f"]))
            if spec.get("pending"):
                index._entries[key] = None
                continue
            communities = []
            for __ in range(int(spec["count"])):
                lo, hi = int(offsets[cursor]), int(offsets[cursor + 1])
                communities.append(
                    Community(
                        frozenset(int(v) for v in members[lo:hi]),
                        float(values[cursor]),
                        key[1],
                        key[0],
                    )
                )
                cursor += 1
            index._entries[key] = _IndexEntry(
                tuple(communities), complete=bool(spec["complete"])
            )
        index._built = True
        return index
