"""PageRank by power iteration.

The paper weights every vertex with "the PageRank value of vertices with
the damping factor being set as 0.85" (Section VI).  This implementation
follows the standard formulation for undirected graphs: the random surfer
follows a uniformly random incident edge with probability ``damping`` and
teleports uniformly otherwise; dangling (isolated) vertices redistribute
their mass uniformly.  The result sums to 1.

Vectorised with numpy over a CSR-ish (indptr, indices) representation so
the 6K-vertex benchmark stand-ins weight in milliseconds.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import Graph


def _flat_edges(graph: Graph) -> tuple[np.ndarray, np.ndarray]:
    """Flatten adjacency into parallel (row, col) arrays, one entry per
    directed half-edge, for vectorised scatter-adds."""
    n = graph.n
    degrees = graph.degrees()
    total = int(degrees.sum())
    rows = np.repeat(np.arange(n, dtype=np.int64), degrees)
    cols = np.empty(total, dtype=np.int64)
    cursor = 0
    for neighbours in graph.adjacency:
        for v in neighbours:
            cols[cursor] = v
            cursor += 1
    return rows, cols


def pagerank(
    graph: Graph,
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iter: int = 200,
) -> np.ndarray:
    """PageRank vector of an undirected graph.

    Raises :class:`GraphError` if the iteration fails to converge within
    ``max_iter`` sweeps of L1 tolerance ``tol`` (with default parameters
    convergence takes a few dozen iterations on any graph).
    """
    if not 0.0 <= damping < 1.0:
        raise GraphError(f"damping must be in [0, 1), got {damping}")
    n = graph.n
    if n == 0:
        return np.zeros(0, dtype=np.float64)
    rows, cols = _flat_edges(graph)
    degrees = graph.degrees().astype(np.float64)
    dangling = degrees == 0
    out_degree = np.where(dangling, 1.0, degrees)

    rank = np.full(n, 1.0 / n)
    teleport = (1.0 - damping) / n
    for __ in range(max_iter):
        contrib = rank / out_degree
        # incoming[u] = sum of contrib over u's neighbours, via a
        # vectorised scatter-add over the flattened half-edges.
        incoming = np.bincount(rows, weights=contrib[cols], minlength=n)
        dangling_mass = contrib[dangling].sum() / n
        new_rank = teleport + damping * (incoming + dangling_mass)
        if np.abs(new_rank - rank).sum() < tol:
            return new_rank
        rank = new_rank
    raise GraphError(f"PageRank did not converge in {max_iter} iterations")
