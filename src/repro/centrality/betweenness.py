"""Betweenness centrality (Brandes' algorithm), exact and sampled.

The paper's introduction lists Betweenness among the structural weights a
vertex may carry.  Exact Brandes is O(n m); the sampled variant (Brandes &
Pich pivots) trades accuracy for speed on the larger stand-ins.  Both are
cross-validated against networkx in the tests.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.utils.rng import make_rng


def _accumulate_from(graph: Graph, source: int, centrality: np.ndarray) -> None:
    """One Brandes SSSP phase (unweighted): BFS + dependency accumulation."""
    adj = graph.adjacency
    n = graph.n
    sigma = np.zeros(n)
    sigma[source] = 1.0
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    order: list[int] = []
    predecessors: list[list[int]] = [[] for __ in range(n)]
    queue = deque([source])
    while queue:
        u = queue.popleft()
        order.append(u)
        for v in adj[u]:
            if dist[v] < 0:
                dist[v] = dist[u] + 1
                queue.append(v)
            if dist[v] == dist[u] + 1:
                sigma[v] += sigma[u]
                predecessors[v].append(u)
    delta = np.zeros(n)
    for v in reversed(order):
        for u in predecessors[v]:
            delta[u] += (sigma[u] / sigma[v]) * (1.0 + delta[v])
        if v != source:
            centrality[v] += delta[v]


def betweenness_centrality(
    graph: Graph,
    normalized: bool = True,
    sample_size: int | None = None,
    seed: int | None = None,
) -> np.ndarray:
    """Shortest-path betweenness of every vertex.

    With ``sample_size`` set, only that many pivot sources are processed
    and the totals are scaled by ``n / sample_size`` (an unbiased
    estimator).  Normalisation divides by ``(n-1)(n-2)`` (undirected pairs
    counted twice, matching networkx's convention).
    """
    n = graph.n
    centrality = np.zeros(n)
    if n < 3:
        return centrality
    if sample_size is not None:
        if not 1 <= sample_size <= n:
            raise GraphError(
                f"sample_size must be in [1, {n}], got {sample_size}"
            )
        rng = make_rng(seed)
        sources = rng.choice(n, size=sample_size, replace=False)
        scale_up = n / sample_size
    else:
        sources = range(n)
        scale_up = 1.0
    for source in sources:
        _accumulate_from(graph, int(source), centrality)
    centrality *= scale_up
    # Each undirected pair was counted from both endpoints.
    centrality /= 2.0
    if normalized:
        centrality *= 2.0 / ((n - 1) * (n - 2))
    return centrality
