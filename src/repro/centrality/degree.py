"""Degree centrality — the simplest vertex weight the paper's intro names."""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph


def degree_centrality(graph: Graph, normalized: bool = True) -> np.ndarray:
    """Degree of each vertex, optionally normalised by ``n - 1``.

    With ``normalized=False`` this is the raw degree, a convenient integer
    weight for examples and tests.
    """
    degrees = graph.degrees().astype(np.float64)
    if normalized and graph.n > 1:
        degrees /= graph.n - 1
    return degrees
