"""Vertex-weight producers.

The influential-community model is agnostic to where weights come from; the
paper uses PageRank (damping 0.85) for the main experiments and citation
indices for the case study, and its introduction names degree, closeness
and betweenness as alternatives.  This package implements the ones the
evaluation needs, all returning dense ``float64`` arrays indexed by vertex.
"""

from repro.centrality.betweenness import betweenness_centrality
from repro.centrality.closeness import closeness_centrality
from repro.centrality.degree import degree_centrality
from repro.centrality.hindex import g_index, h_index, i10_index
from repro.centrality.pagerank import pagerank

__all__ = [
    "betweenness_centrality",
    "closeness_centrality",
    "degree_centrality",
    "g_index",
    "h_index",
    "i10_index",
    "pagerank",
]
