"""Closeness centrality (Wasserman–Faust variant for disconnected graphs).

Named in the paper's introduction among the structural weights a user might
assign.  Exact all-pairs BFS, O(n * (n + m)); adequate at benchmark scale
and exercised by tests against networkx.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graphs.graph import Graph


def closeness_centrality(graph: Graph) -> np.ndarray:
    """Closeness of every vertex.

    For vertex ``v`` reaching ``r`` vertices with total hop distance ``d``:
    ``closeness(v) = ((r - 1) / (n - 1)) * ((r - 1) / d)`` — the standard
    Wasserman–Faust correction, matching ``networkx.closeness_centrality``
    with ``wf_improved=True``.
    """
    n = graph.n
    closeness = np.zeros(n, dtype=np.float64)
    if n <= 1:
        return closeness
    adj = graph.adjacency
    dist = np.empty(n, dtype=np.int64)
    for source in range(n):
        dist.fill(-1)
        dist[source] = 0
        queue = deque([source])
        total = 0
        reached = 1
        while queue:
            u = queue.popleft()
            for v in adj[u]:
                if dist[v] < 0:
                    dist[v] = dist[u] + 1
                    total += dist[v]
                    reached += 1
                    queue.append(v)
        if total > 0:
            closeness[source] = ((reached - 1) / (n - 1)) * ((reached - 1) / total)
    return closeness
