"""Citation-index weights: h-index, G-index and i10-index.

The case study (paper Section VI.C) weights researchers by citation
indices and observes that "G-index is suitable for avg, while i-10 index
is appropriate for min".  These functions compute the indices from
per-author citation-count vectors; the synthetic Aminer generator feeds
them sampled per-paper citations.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


def h_index(citations: Sequence[float] | np.ndarray) -> int:
    """Largest h such that h papers have at least h citations each."""
    ranked = np.sort(np.asarray(citations, dtype=np.float64))[::-1]
    ranks = np.arange(1, len(ranked) + 1)
    qualifying = ranked >= ranks
    return int(qualifying.sum())


def g_index(citations: Sequence[float] | np.ndarray) -> int:
    """Largest g such that the top g papers have >= g^2 citations total."""
    ranked = np.sort(np.asarray(citations, dtype=np.float64))[::-1]
    cumulative = np.cumsum(ranked)
    ranks = np.arange(1, len(ranked) + 1)
    qualifying = cumulative >= ranks**2
    return int(qualifying.sum())


def i10_index(citations: Sequence[float] | np.ndarray, threshold: float = 10.0) -> int:
    """Number of papers with at least ``threshold`` citations (default 10)."""
    values = np.asarray(citations, dtype=np.float64)
    return int((values >= threshold).sum())


def index_vector(
    per_author_citations: Iterable[Sequence[float]],
    kind: str = "h",
) -> np.ndarray:
    """Apply one index to a collection of authors' citation vectors."""
    fn = {"h": h_index, "g": g_index, "i10": i10_index}.get(kind)
    if fn is None:
        raise ValueError(f"unknown index kind {kind!r}; expected h/g/i10")
    return np.asarray([fn(c) for c in per_author_citations], dtype=np.float64)
