"""Setuptools shim.

The runtime environment has setuptools but no `wheel`, so PEP 517 editable
installs fail with `invalid command 'bdist_wheel'`; this shim enables the
legacy path: ``pip install -e . --no-build-isolation --no-use-pep517``.
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
