"""Shared fixtures: the paper's example graphs and small random instances."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.builder import GraphBuilder, graph_from_edges
from repro.graphs.generators.examples import figure1_graph, tiny_kcore_graph
from repro.graphs.generators.random_graphs import gnp_random_graph
from repro.utils.rng import make_rng


@pytest.fixture
def figure1():
    """The paper's 11-vertex running example (Figure 1)."""
    return figure1_graph()


@pytest.fixture
def tiny():
    """7-vertex graph with K4 3-core, weights 1..7."""
    return tiny_kcore_graph()


@pytest.fixture
def triangle():
    """K3 with weights 1, 2, 3."""
    return graph_from_edges([(0, 1), (1, 2), (0, 2)], weights=[1.0, 2.0, 3.0])


@pytest.fixture
def two_triangles():
    """Two disjoint triangles: {0,1,2} (weights 1,2,3), {3,4,5} (10,20,30)."""
    return graph_from_edges(
        [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)],
        weights=[1.0, 2.0, 3.0, 10.0, 20.0, 30.0],
    )


@pytest.fixture
def path_graph():
    """A 5-vertex path (max core number 1)."""
    return graph_from_edges([(0, 1), (1, 2), (2, 3), (3, 4)], weights=[1.0] * 5)


@pytest.fixture
def empty_graph():
    """Zero vertices."""
    return GraphBuilder(0).build()


def random_weighted_graph(n: int, p: float, seed: int):
    """Small random graph with random positive weights (test helper)."""
    graph = gnp_random_graph(n, p, seed=seed)
    rng = make_rng(seed + 1)
    weights = rng.uniform(0.5, 10.0, size=n)
    return graph.with_weights(np.round(weights, 3))


@pytest.fixture
def small_random_graphs():
    """A batch of small random weighted graphs for oracle comparisons."""
    cases = []
    for seed, (n, p) in enumerate([(8, 0.45), (10, 0.4), (12, 0.35), (9, 0.5)]):
        cases.append(random_weighted_graph(n, p, seed=100 + seed))
    return cases
