"""Unit tests for ProblemSpec."""

import pytest

from repro.aggregators.average import Average
from repro.aggregators.summation import Sum
from repro.errors import SpecError
from repro.influential.spec import ProblemSpec


def test_create_resolves_names():
    spec = ProblemSpec.create(k=2, r=5, f="avg")
    assert isinstance(spec.f, Average)
    assert not spec.size_constrained


def test_validation():
    with pytest.raises(SpecError):
        ProblemSpec(k=0, r=1, f=Sum())
    with pytest.raises(SpecError):
        ProblemSpec(k=2, r=0, f=Sum())
    with pytest.raises(SpecError):
        ProblemSpec(k=3, r=1, f=Sum(), s=3)  # k-core needs k+1 vertices
    with pytest.raises(SpecError):
        ProblemSpec(k=2, r=1, f="sum")  # type: ignore[arg-type]


def test_hardness_classification():
    assert not ProblemSpec.create(2, 5, "sum").is_np_hard
    assert ProblemSpec.create(2, 5, "avg").is_np_hard          # Theorem 1
    assert ProblemSpec.create(2, 5, "sum", s=10).is_np_hard    # Theorem 4
    assert ProblemSpec.create(2, 5, "min", s=10).is_np_hard
    assert not ProblemSpec.create(2, 5, "min").is_np_hard


def test_effective_size_bound(figure1):
    unconstrained = ProblemSpec.create(2, 5, "sum")
    assert unconstrained.effective_size_bound(figure1) == figure1.n
    constrained = ProblemSpec.create(2, 5, "sum", s=4)
    assert constrained.effective_size_bound(figure1) == 4


def test_validate_for_graph(figure1):
    ProblemSpec.create(2, 5, "sum").validate_for(figure1)
    with pytest.raises(SpecError):
        ProblemSpec.create(11, 1, "sum").validate_for(figure1)
    with pytest.raises(SpecError):
        ProblemSpec.create(2, 1, "sum", s=99).validate_for(figure1)


def test_with_changes():
    spec = ProblemSpec.create(2, 5, "sum")
    changed = spec.with_(r=10)
    assert changed.r == 10
    assert changed.k == 2
    assert spec.r == 5  # original untouched
