"""Min/max polynomial solvers against the brute-force Definition 3 oracle."""

import pytest

from repro.errors import SolverError
from repro.hardness.certificates import certify_result_set
from repro.influential.bruteforce import bruteforce_communities
from repro.influential.minmax_solvers import (
    max_communities,
    min_communities,
    top_r_max,
    top_r_min,
    top_r_min_noncontained,
)


def test_figure1_min_top2(figure1):
    result = top_r_min(figure1, k=2, r=2)
    assert [sorted(v + 1 for v in c.vertices) for c in result] == [
        [5, 7, 8],
        [3, 9, 10],
    ]
    assert result.values() == [12.0, 8.0]


def test_min_family_matches_bruteforce(small_random_graphs):
    for graph in small_random_graphs:
        for k in (1, 2, 3):
            ours = {
                (c.vertices, c.value) for c in min_communities(graph, k)
            }
            oracle = {
                (c.vertices, c.value)
                for c in bruteforce_communities(graph, k, "min")
            }
            assert ours == oracle, (graph.n, k)


def test_max_family_matches_bruteforce(small_random_graphs):
    for graph in small_random_graphs:
        for k in (1, 2, 3):
            ours = {
                (c.vertices, c.value) for c in max_communities(graph, k)
            }
            oracle = {
                (c.vertices, c.value)
                for c in bruteforce_communities(graph, k, "max")
            }
            assert ours == oracle, (graph.n, k)


def test_min_family_is_laminar(figure1):
    family = [c.vertices for c in min_communities(figure1, 2)]
    for a in family:
        for b in family:
            assert a <= b or b <= a or not (a & b)


def test_max_values_nonincreasing(small_random_graphs):
    for graph in small_random_graphs:
        values = [c.value for c in max_communities(graph, 2)]
        assert values == sorted(values, reverse=True)


def test_top_r_limits(figure1):
    assert len(top_r_min(figure1, 2, 1)) == 1
    assert len(top_r_max(figure1, 2, 2)) == 2
    certify_result_set(figure1, top_r_min(figure1, 2, 3), k=2)
    certify_result_set(figure1, top_r_max(figure1, 2, 3), k=2)


def test_max_top1_contains_heaviest_core_vertex(figure1):
    result = top_r_max(figure1, 2, 1)
    heaviest = max(range(11), key=lambda v: figure1.weight(v))
    assert heaviest in result[0].vertices
    assert result[0].value == figure1.weight(heaviest)


def test_min_noncontained_are_leaves(figure1):
    leaves = top_r_min_noncontained(figure1, 2, 5)
    family = [c.vertices for c in min_communities(figure1, 2)]
    for leaf in leaves:
        assert not any(other < leaf.vertices for other in family)


def test_ties_handled(two_triangles):
    uniform = two_triangles.with_weights([5.0] * 6)
    mins = min_communities(uniform, 2)
    maxs = max_communities(uniform, 2)
    # Each triangle is one community under each aggregator; equal values.
    assert len(mins) == 2 and len(maxs) == 2
    assert all(c.value == 5.0 for c in mins + maxs)


def test_limit_parameter(figure1):
    assert len(min_communities(figure1, 2, limit=2)) == 2
    assert len(max_communities(figure1, 2, limit=1)) == 1


def test_parameter_validation(figure1):
    with pytest.raises(SolverError):
        top_r_min(figure1, 0, 1)
    with pytest.raises(SolverError):
        top_r_max(figure1, 2, 0)
    with pytest.raises(SolverError):
        min_communities(figure1, -1)


def test_empty_core(path_graph):
    assert min_communities(path_graph, 2) == []
    assert max_communities(path_graph, 2) == []
