"""Influential community search under the k-truss model (extension)."""

import pytest

from repro.errors import SolverError
from repro.influential.truss_search import (
    truss_min_communities,
    truss_top_r_min,
    truss_top_r_sum,
)


def test_sum_components_on_figure1(figure1):
    result = truss_top_r_sum(figure1, k=3, r=2)
    values = {frozenset(c.vertices): c.value for c in result}
    # The triangle-connected cluster {v3,v5..v11} and the {v1,v2,v4} triangle.
    assert values[frozenset({2, 4, 5, 6, 7, 8, 9, 10})] == 131.0
    assert values[frozenset({0, 1, 3})] == 72.0
    assert result.is_pairwise_disjoint()


def test_min_peel_on_figure1(figure1):
    result = truss_top_r_min(figure1, k=3, r=2)
    assert [sorted(v + 1 for v in c.vertices) for c in result] == [
        [5, 7, 8],
        [3, 9, 10],
    ]
    assert result.values() == [12.0, 8.0]


def test_min_family_nested_or_disjoint(figure1):
    family = [c.vertices for c in truss_min_communities(figure1, 3)]
    for a in family:
        for b in family:
            assert a <= b or b <= a or not (a & b)


def test_min_values_strictly_increase_along_chains(figure1):
    family = truss_min_communities(figure1, 3)
    for parent in family:
        for child in family:
            if child.vertices < parent.vertices:
                assert child.value > parent.value


def test_truss_stricter_than_core(figure1):
    """Truss communities are contained in the corresponding core search
    space: sum over 3-truss components <= sum over 2-core components."""
    from repro.influential.nonoverlap import tonic_sum_unconstrained

    core = tonic_sum_unconstrained(figure1, 2, 1)
    truss = truss_top_r_sum(figure1, 3, 1)
    assert truss[0].value <= core[0].value


def test_limit_and_validation(figure1):
    assert len(truss_min_communities(figure1, 3, limit=1)) == 1
    with pytest.raises(SolverError):
        truss_top_r_sum(figure1, 1, 1)
    with pytest.raises(SolverError):
        truss_top_r_sum(figure1, 3, 0)
    with pytest.raises(SolverError):
        truss_top_r_sum(figure1, 3, 1, "avg")
    with pytest.raises(SolverError):
        truss_top_r_min(figure1, 3, 0)


def test_empty_when_no_truss(path_graph):
    assert truss_min_communities(path_graph, 3) == []
    assert len(truss_top_r_sum(path_graph, 3, 2)) == 0
