"""The top-level dispatch API."""

import pytest

from repro.errors import SolverError, SpecError
from repro.hardness.certificates import certify_result_set
from repro.influential.api import top_r_communities


def test_auto_sum_unconstrained_is_exact(figure1):
    result = top_r_communities(figure1, k=2, r=2, f="sum")
    assert result.values() == [203.0, 195.0]


def test_auto_min_max(figure1):
    assert top_r_communities(figure1, k=2, r=2, f="min").values() == [12.0, 8.0]
    top_max = top_r_communities(figure1, k=2, r=1, f="max")
    assert top_max.values() == [62.0]


def test_auto_avg_uses_local_search(figure1):
    # The BFS ("random") prefix order finds the elite triangle {v1,v2,v4};
    # greedy weight-sorting legitimately misses it here (the sorted prefix
    # is disconnected) — an honest property of the paper's heuristic.
    result = top_r_communities(figure1, k=2, r=1, f="avg", greedy=False)
    assert len(result) == 1
    assert result[0].value == pytest.approx(24.0)


def test_auto_size_constrained(figure1):
    result = top_r_communities(figure1, k=2, r=3, f="sum", s=4)
    certify_result_set(figure1, result, k=2, s=4)


def test_explicit_methods(figure1):
    for method in ("naive", "improved", "exact", "local", "bruteforce"):
        result = top_r_communities(figure1, k=2, r=2, f="sum", method=method)
        assert result.values()[0] == 203.0
    approx = top_r_communities(figure1, k=2, r=2, f="sum", method="approx", eps=0.2)
    assert approx.values()[0] == 203.0


def test_unknown_method_rejected(figure1):
    with pytest.raises(SolverError):
        top_r_communities(figure1, k=2, r=1, method="magic")


def test_method_problem_mismatches_rejected(figure1):
    with pytest.raises(SolverError):
        top_r_communities(figure1, k=2, r=1, f="sum", s=4, method="naive")
    with pytest.raises(SolverError):
        top_r_communities(figure1, k=2, r=1, f="sum", s=4, method="improved")
    with pytest.raises(SolverError):
        top_r_communities(
            figure1, k=2, r=1, f="sum", method="exact", non_overlapping=True
        )


def test_non_overlapping_dispatch(figure1):
    for f in ("sum", "min", "max", "avg"):
        result = top_r_communities(figure1, k=2, r=3, f=f, non_overlapping=True)
        assert result.is_pairwise_disjoint(), f


def test_non_overlapping_avg_matches_example2(figure1):
    result = top_r_communities(
        figure1, k=2, r=3, f="avg", s=4, non_overlapping=True, greedy=False
    )
    assert result.is_pairwise_disjoint()
    # Example 2's three communities (values 24, 67/3, 38/3).
    assert result.values() == pytest.approx([24.0, 67.0 / 3, 38.0 / 3])


def test_spec_validation_surfaces(figure1):
    with pytest.raises(SpecError):
        top_r_communities(figure1, k=0, r=1)
    with pytest.raises(SpecError):
        top_r_communities(figure1, k=2, r=1, s=100)


def test_accepts_aggregator_instance(figure1):
    from repro.aggregators.summation import SumSurplus

    result = top_r_communities(figure1, k=2, r=1, f=SumSurplus(alpha=1.0))
    assert result.values() == [203.0 + 11.0]


def test_sum_surplus_auto_route(figure1):
    # Size-proportional + decreasing: must go through Algorithm 2, exact.
    result = top_r_communities(figure1, k=2, r=2, f="sum-surplus(alpha=1)")
    assert result.values() == [214.0, 205.0]
