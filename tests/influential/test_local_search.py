"""Algorithm 4 (LOCAL SEARCH) — validity, quality and TONIC behaviour."""

import pytest

from repro.errors import SolverError
from repro.hardness.certificates import certify_result_set
from repro.influential.local_search import local_search, s_nearest_neighbors
from tests.conftest import random_weighted_graph


def test_s_nearest_neighbors_bfs_order(figure1):
    alive = set(range(11))
    near = s_nearest_neighbors(figure1, 5, 4, alive)  # seed v6 (id 5)
    assert near[0] == 5
    assert len(near) == 4
    assert set(near[1:]).issubset(figure1.neighbors(5))


def test_s_nearest_expands_hops(path_graph):
    near = s_nearest_neighbors(path_graph, 0, 4, set(range(5)))
    assert near == [0, 1, 2, 3]  # 1-hop is just {1}; BFS keeps going


def test_outputs_are_valid_communities(figure1):
    for greedy in (True, False):
        result = local_search(figure1, k=2, r=3, s=4, f="sum", greedy=greedy)
        certify_result_set(figure1, result, k=2, s=4)


def test_finds_good_size_constrained_sum(figure1):
    # The exact best size-4 sum community has value 79 ({v5,v6,v7,v11}).
    result = local_search(figure1, k=2, r=1, s=4, f="sum", greedy=True)
    assert len(result) == 1
    assert result[0].value >= 72.0  # within striking distance of 79


def test_avg_random_finds_elite_triangle(figure1):
    # BFS prefix order reaches {v1, v2, v4} (avg 24), the best size-<=4
    # community; greedy weight-sorting disconnects that prefix and misses
    # it — the Exp-VII greedy/random contrast is real on this graph.
    result = local_search(figure1, k=2, r=2, s=4, f="avg", greedy=False)
    assert len(result) >= 1
    assert result[0].value == pytest.approx(24.0)


def test_avg_greedy_still_returns_valid_communities(figure1):
    result = local_search(figure1, k=2, r=2, s=4, f="avg", greedy=True)
    certify_result_set(figure1, result, k=2, s=4)


def test_greedy_beats_or_matches_random_on_planted():
    """Exp-VII's claim: greedy's r-th value >= random's, typically."""
    wins, losses = 0, 0
    for seed in range(6):
        graph = random_weighted_graph(60, 0.12, seed=seed)
        greedy = local_search(graph, k=2, r=3, s=8, f="sum", greedy=True)
        random_ = local_search(graph, k=2, r=3, s=8, f="sum", greedy=False)
        if greedy.rth_value(3) >= random_.rth_value(3):
            wins += 1
        else:
            losses += 1
    assert wins >= losses


def test_non_overlapping_mode(figure1):
    result = local_search(
        figure1, k=2, r=3, s=4, f="avg", greedy=True, non_overlapping=True
    )
    assert result.is_pairwise_disjoint()
    certify_result_set(figure1, result, k=2, s=4, non_overlapping=True)


def test_seed_orders(figure1):
    for order in ("id", "weight", "shuffled"):
        result = local_search(
            figure1, k=2, r=2, s=4, f="sum", seed_order=order, rng_seed=7
        )
        certify_result_set(figure1, result, k=2, s=4)
    with pytest.raises(SolverError):
        local_search(figure1, k=2, r=2, s=4, f="sum", seed_order="bogus")


def test_shuffled_is_reproducible(figure1):
    a = local_search(figure1, 2, 2, 4, "sum", seed_order="shuffled", rng_seed=3)
    b = local_search(figure1, 2, 2, 4, "sum", seed_order="shuffled", rng_seed=3)
    assert a == b


def test_parameter_validation(figure1):
    with pytest.raises(SolverError):
        local_search(figure1, k=0, r=1, s=4, f="sum")
    with pytest.raises(SolverError):
        local_search(figure1, k=2, r=0, s=4, f="sum")
    with pytest.raises(SolverError):
        local_search(figure1, k=2, r=1, s=2, f="sum")  # s < k+1


def test_empty_core(path_graph):
    assert len(local_search(path_graph, k=2, r=2, s=4, f="sum")) == 0


def test_unconstrained_via_full_size(figure1):
    # s = |V| reproduces the paper's "size-unconstrained via local search".
    result = local_search(figure1, k=2, r=1, s=11, f="avg", greedy=False)
    assert len(result) >= 1
    assert result[0].value == pytest.approx(24.0)
