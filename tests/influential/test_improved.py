"""Algorithm 2 (TIC-IMPROVED) — exactness at eps=0, Theorem 6 at eps>0."""

import pytest

from repro.errors import SolverError
from repro.hardness.certificates import certify_result_set
from repro.influential.bruteforce import bruteforce_top_r
from repro.influential.improved import peel_below_average, tic_improved


def test_figure1_example1(figure1):
    result = tic_improved(figure1, k=2, r=2)
    assert result.values() == [203.0, 195.0]


def test_exact_matches_bruteforce(small_random_graphs):
    for graph in small_random_graphs:
        for k in (1, 2, 3):
            for r in (1, 2, 5):
                ours = tic_improved(graph, k, r, eps=0.0)
                oracle = bruteforce_top_r(graph, k, r, "sum")
                assert ours.values() == pytest.approx(oracle.values()), (
                    graph.n, k, r
                )


def test_theorem6_guarantee(small_random_graphs):
    """Definition 8: the r-th approx value >= (1 - eps) * exact r-th value."""
    for graph in small_random_graphs:
        for eps in (0.01, 0.1, 0.3, 0.6):
            for r in (1, 3, 5):
                exact = bruteforce_top_r(graph, 2, r, "sum")
                approx = tic_improved(graph, 2, r, eps=eps)
                if len(exact) == 0:
                    continue
                assert len(approx) >= len(exact)
                exact_rth = exact.rth_value(len(exact))
                approx_rth = approx.rth_value(len(exact))
                assert approx_rth >= (1 - eps) * exact_rth - 1e-12


def test_agrees_with_naive(figure1):
    from repro.influential.naive_sum import sum_naive

    for r in (1, 2, 3, 5, 8):
        assert tic_improved(figure1, 2, r).values() == pytest.approx(
            sum_naive(figure1, 2, r).values()
        )


def test_outputs_certify(figure1):
    certify_result_set(figure1, tic_improved(figure1, k=2, r=5), k=2)


def test_sum_surplus(figure1):
    result = tic_improved(figure1, k=2, r=2, f="sum-surplus(alpha=2)")
    assert result.values()[0] == 203.0 + 2 * 11


def test_rejects_non_peelable(figure1):
    with pytest.raises(SolverError):
        tic_improved(figure1, k=2, r=1, f="avg")
    with pytest.raises(SolverError):
        tic_improved(figure1, k=2, r=1, f="min")


def test_eps_validation(figure1):
    with pytest.raises(SolverError):
        tic_improved(figure1, k=2, r=1, eps=1.0)
    with pytest.raises(SolverError):
        tic_improved(figure1, k=2, r=1, eps=-0.1)


def test_empty_core(path_graph):
    assert len(tic_improved(path_graph, k=2, r=3)) == 0


def test_r_larger_than_community_count(two_triangles):
    # Asking for more communities than exist returns what exists.
    result = tic_improved(two_triangles, k=2, r=50)
    assert len(result) == 2  # only the two triangles (no proper sub-2-cores)


def test_peel_below_average_extension(figure1):
    result = peel_below_average(figure1, k=2, r=3)
    assert len(result) >= 1
    # Values must be valid averages of real communities.
    certify_result_set(figure1, result, k=2)
