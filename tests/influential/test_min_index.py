"""The laminar min-community index against the direct solvers."""

import pytest

from repro.errors import SolverError
from repro.influential.min_index import MinCommunityIndex
from repro.influential.minmax_solvers import (
    min_communities,
    top_r_min,
    top_r_min_noncontained,
)
from repro.influential.nonoverlap import greedy_disjoint
from tests.conftest import random_weighted_graph


@pytest.fixture(scope="module")
def indexed():
    graph = random_weighted_graph(40, 0.15, seed=21)
    return graph, MinCommunityIndex(graph, 2)


def test_indexes_full_family(indexed):
    graph, index = indexed
    family = min_communities(graph, 2)
    assert len(index) == len(family)
    assert {c.vertices for c in index.communities} == {
        c.vertices for c in family
    }


def test_top_r_matches_solver(indexed):
    graph, index = indexed
    for r in (1, 2, 5, 10):
        assert index.top_r(r).values() == top_r_min(graph, 2, r).values()


def test_noncontained_matches_solver(indexed):
    graph, index = indexed
    assert (
        index.top_r_noncontained(3).values()
        == top_r_min_noncontained(graph, 2, 3).values()
    )


def test_nonoverlapping_matches_greedy(indexed):
    graph, index = indexed
    expected = greedy_disjoint(min_communities(graph, 2), 3)
    assert index.top_r_nonoverlapping(3).values() == expected.values()


def test_community_of_vertex(figure1):
    index = MinCommunityIndex(figure1, 2)
    # v8 (id 7) belongs to {v5,v7,v8}, the deepest community holding it.
    community = index.community_of(7)
    assert community is not None
    assert community.vertices == frozenset({4, 6, 7})
    # A vertex outside the k-core has no community.
    from repro.graphs.generators.examples import tiny_kcore_graph

    tiny_index = MinCommunityIndex(tiny_kcore_graph(), 2)
    assert tiny_index.community_of(5) is None


def test_chain_is_nested_and_value_sorted(indexed):
    graph, index = indexed
    for vertex in range(graph.n):
        chain = index.chain_of(vertex)
        for deeper, shallower in zip(chain, chain[1:]):
            assert deeper.vertices < shallower.vertices
            assert deeper.value >= shallower.value


def test_r_validation(indexed):
    __, index = indexed
    with pytest.raises(SolverError):
        index.top_r(0)
    with pytest.raises(SolverError):
        MinCommunityIndex(index.graph, 0)
