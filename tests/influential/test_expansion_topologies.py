"""ExpansionContext edge cases on known topologies, on both engines.

Each topology pins down one branch of the expansion machinery:

* clique — no articulation vertices, every induced degree equal: at
  ``k = n - 2`` every removal cascades to nothing (the all-weak case), at
  smaller k every removal is the pure fast path;
* cycle — 2-regular, articulation-free, but every neighbour sits at the
  cascade threshold for ``k = 2``: removals must annihilate the whole
  component via the cascade path;
* barbell / articulation chain — two cliques joined through a path: every
  bridge vertex is an articulation vertex, so removals there must split
  the survivors into multiple children.

For every vertex of every topology both engines are checked against the
brute-force re-core reference, which exercises fast-path vs cascade-path
agreement: the reference has no fast path at all.
"""

import numpy as np
import pytest

from repro.aggregators.registry import get_aggregator
from repro.core.kcore import connected_kcore_components
from repro.graphs.builder import graph_from_edges
from repro.influential.expansion import expansion_context, members_frozenset
from repro.influential.expansion_csr import CSRExpansionContext, MemberArray
from repro.utils.zobrist import ZobristHasher

BACKENDS = ("set", "csr")


def _clique_graph(n):
    edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
    return graph_from_edges(edges, weights=[float(v + 1) for v in range(n)])


def _cycle_graph(n):
    edges = [(i, (i + 1) % n) for i in range(n)]
    return graph_from_edges(edges, weights=[float(v + 1) for v in range(n)])


def _barbell_graph(clique=5, path=3):
    """Two k-cliques joined by a path of ``path`` extra vertices."""
    edges = [(i, j) for i in range(clique) for j in range(i + 1, clique)]
    offset = clique + path
    edges += [
        (offset + i, offset + j)
        for i in range(clique)
        for j in range(i + 1, clique)
    ]
    chain = [clique - 1] + [clique + i for i in range(path)] + [offset]
    edges += list(zip(chain, chain[1:]))
    n = 2 * clique + path
    return graph_from_edges(edges, weights=[float(v + 1) for v in range(n)])


def _reference_children(graph, component, k, vertex):
    remainder = set(component)
    remainder.discard(vertex)
    return {
        frozenset(c) for c in connected_kcore_components(graph, remainder, k)
    }


def _check_against_reference(graph, k, f="sum"):
    aggregator = get_aggregator(f)
    hasher = ZobristHasher(graph.n)
    per_backend = {}
    for backend in BACKENDS:
        produced = {}
        for component in connected_kcore_components(graph, range(graph.n), k):
            value = aggregator.value(graph, frozenset(component))
            ctx = expansion_context(
                graph, frozenset(component), k, aggregator, value, hasher,
                backend=backend,
            )
            for vertex in sorted(component):
                children = ctx.children_after_removal(vertex)
                assert {
                    members_frozenset(c.vertices) for c in children
                } == _reference_children(graph, component, k, vertex), (
                    backend, vertex, k
                )
                for child in children:
                    members = members_frozenset(child.vertices)
                    assert child.value == pytest.approx(
                        aggregator.value(graph, members)
                    )
                    assert child.key == hasher.hash_set(members)
                    produced[(min(component), vertex, members)] = (
                        child.value, child.key
                    )
        per_backend[backend] = produced
    # Fast path (set: no BFS; csr: np.delete) and cascade path must agree
    # not only with the reference sets but bit-for-bit with each other.
    assert per_backend["set"] == per_backend["csr"]


@pytest.mark.parametrize("n", [4, 6, 9])
@pytest.mark.parametrize("k", [1, 2, 3])
def test_clique_children(n, k):
    _check_against_reference(_clique_graph(n), k)


def test_clique_all_removals_are_fast_path():
    """K6 at k=3: no vertex is articulation, no neighbour at degree k, so
    every child must be the one-copy fast path product."""
    graph = _clique_graph(6)
    hasher = ZobristHasher(graph.n)
    aggregator = get_aggregator("sum")
    ctx = CSRExpansionContext(
        graph, frozenset(range(6)), 3, aggregator, 21.0, hasher
    )
    assert not ctx.has_weak.any()
    assert not ctx.articulation.any()
    for v in range(6):
        (child,) = ctx.children_after_removal(v)
        assert len(child.vertices) == 5


def test_clique_at_threshold_cascades_to_nothing():
    """K5 at k=4: every neighbour of a removed vertex drops below k, so
    the cascade wipes the component and no children exist."""
    graph = _clique_graph(5)
    hasher = ZobristHasher(graph.n)
    aggregator = get_aggregator("sum")
    for backend in BACKENDS:
        ctx = expansion_context(
            graph, frozenset(range(5)), 4, aggregator, 15.0, hasher,
            backend=backend,
        )
        for v in range(5):
            assert ctx.children_after_removal(v) == [], (backend, v)


@pytest.mark.parametrize("n", [3, 5, 8])
def test_cycle_children(n):
    graph = _cycle_graph(n)
    for k in (1, 2):
        _check_against_reference(graph, k)


def test_cycle_removal_annihilates_at_k2():
    """C8 is exactly a 2-core; deleting any vertex cascades the rest away."""
    graph = _cycle_graph(8)
    hasher = ZobristHasher(graph.n)
    aggregator = get_aggregator("sum")
    for backend in BACKENDS:
        ctx = expansion_context(
            graph, frozenset(range(8)), 2, aggregator, 36.0, hasher,
            backend=backend,
        )
        assert list(ctx.expand()) == [], backend


@pytest.mark.parametrize("path", [1, 2, 4])
def test_barbell_children(path):
    graph = _barbell_graph(clique=5, path=path)
    for k in (1, 2):
        _check_against_reference(graph, k)


def test_barbell_articulation_splits():
    """Removing a mid-path vertex at k=1 must split into two children —
    the cascade/split path — and both engines must find the same pieces,
    flagging the whole chain as articulation vertices."""
    graph = _barbell_graph(clique=4, path=3)
    component = frozenset(range(graph.n))
    hasher = ZobristHasher(graph.n)
    aggregator = get_aggregator("sum")
    csr_ctx = CSRExpansionContext(
        graph, component, 1, aggregator,
        aggregator.value(graph, component), hasher,
    )
    ids = csr_ctx.members.ids
    # chain vertices: last vertex of clique A, the path, first of clique B
    chain = [3, 4, 5, 6, 7]
    articulation_global = set(
        ids[np.flatnonzero(csr_ctx.articulation)].tolist()
    )
    assert set(chain) <= articulation_global
    middle = 5
    for backend in BACKENDS:
        ctx = expansion_context(
            graph, component, 1, aggregator,
            aggregator.value(graph, component), hasher, backend=backend,
        )
        children = ctx.children_after_removal(middle)
        assert len(children) == 2, backend
        sides = sorted(
            (sorted(members_frozenset(c.vertices)) for c in children),
            key=lambda side: side[0],
        )
        assert sides[0][0] == 0 and sides[1][-1] == graph.n - 1


def test_sum_surplus_incremental_values_on_barbell():
    """Cascade-path incremental values must match from-scratch evaluation
    for the parameterised sum family too."""
    graph = _barbell_graph(clique=5, path=2)
    aggregator = get_aggregator("sum-surplus(alpha=3)")
    hasher = ZobristHasher(graph.n)
    component = frozenset(range(graph.n))
    value = aggregator.value(graph, component)
    for backend in BACKENDS:
        ctx = expansion_context(
            graph, component, 1, aggregator, value, hasher, backend=backend
        )
        for child in ctx.expand():
            assert child.value == pytest.approx(
                aggregator.value(graph, members_frozenset(child.vertices))
            )


def test_member_array_round_trip():
    hasher = ZobristHasher(32)
    members = MemberArray.from_iterable({5, 1, 17}, hasher)
    assert members.ids.dtype == np.int32
    assert list(members) == [1, 5, 17]
    assert members.to_frozenset() == frozenset({1, 5, 17})
    assert members.key == hasher.hash_set({1, 5, 17})
    twin = MemberArray.from_iterable([17, 5, 1], hasher)
    assert members == twin
    assert hash(members) == hash(twin)
    assert members != MemberArray.from_iterable([1, 5], hasher)
