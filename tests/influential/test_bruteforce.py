"""Unit tests for the exhaustive oracle itself (validated by hand)."""

import itertools

import pytest

from repro.errors import SolverError
from repro.graphs.builder import GraphBuilder, graph_from_edges
from repro.influential.bruteforce import (
    bruteforce_communities,
    bruteforce_top_r,
    bruteforce_top_r_nonoverlapping,
    enumerate_connected_kcores,
    enumerate_connected_subgraphs,
    is_maximal_community,
)


def test_enumeration_counts_on_triangle(triangle):
    subs = list(enumerate_connected_subgraphs(triangle))
    # 3 singletons + 3 edges + 1 triangle = 7 connected induced subgraphs.
    assert len(subs) == 7
    assert len(set(subs)) == 7  # each exactly once


def test_enumeration_respects_max_size(triangle):
    subs = list(enumerate_connected_subgraphs(triangle, max_size=2))
    assert len(subs) == 6
    assert all(len(s) <= 2 for s in subs)


def test_enumeration_matches_exhaustive_subset_check():
    # Independent verification on a random 8-vertex graph: compare against
    # the 2^8 subset filter.
    from tests.conftest import random_weighted_graph
    from repro.graphs.components import is_connected_subset

    graph = random_weighted_graph(8, 0.4, seed=5)
    expected = set()
    for size in range(1, 9):
        for combo in itertools.combinations(range(8), size):
            if is_connected_subset(graph, combo):
                expected.add(frozenset(combo))
    actual = set(enumerate_connected_subgraphs(graph))
    assert actual == expected


def test_connected_kcores(tiny):
    cores = enumerate_connected_kcores(tiny, 3)
    assert cores == [frozenset({0, 1, 2, 3})]
    cores2 = set(enumerate_connected_kcores(tiny, 2))
    # 2-cores: K4, its triangles, and K4+pendant-supported sets with v4.
    assert frozenset({0, 1, 2, 3}) in cores2
    assert frozenset({0, 1, 4}) in cores2
    assert all(len(c) >= 3 for c in cores2)


def test_maximality_filter_under_min(two_triangles):
    # Under min, each triangle is maximal (no superset is connected).
    assert is_maximal_community(two_triangles, frozenset({0, 1, 2}), 2, _min())
    communities = bruteforce_communities(two_triangles, 2, "min")
    assert [sorted(c.vertices) for c in communities] == [[3, 4, 5], [0, 1, 2]]


def _min():
    from repro.aggregators.minmax import Minimum

    return Minimum()


def test_maximality_excludes_subsets_under_max(tiny):
    # Under max, the triangle {1,2,3} has the same max (4.0) as K4 — so it
    # is not maximal; only K4 survives for that value.
    communities = bruteforce_communities(tiny, 2, "max")
    vertex_sets = [c.vertices for c in communities]
    assert frozenset({1, 2, 3}) not in vertex_sets
    assert frozenset({0, 1, 2, 3, 4}) in vertex_sets  # max community, value 5


def test_size_filter(figure1):
    constrained = bruteforce_top_r(
        figure1, 2, 20, "sum", s=4, require_maximal=False
    )
    assert all(c.size <= 4 for c in constrained)
    # Example 1: {v3, v6, v9, v10} (ids 2,5,8,9) is a valid size-4 community
    # with influence value 40.
    members = {frozenset(c.vertices): c.value for c in constrained}
    assert members[frozenset({2, 5, 8, 9})] == 40.0


def test_nonoverlapping_oracle(two_triangles):
    result = bruteforce_top_r_nonoverlapping(two_triangles, 2, 2, "sum")
    assert result.is_pairwise_disjoint()
    assert result.values() == [60.0, 6.0]


def test_size_guard():
    builder = GraphBuilder(30)
    with pytest.raises(SolverError):
        list(enumerate_connected_subgraphs(builder.build()))


def test_single_vertex_graph():
    graph = graph_from_edges([], n=1)
    assert list(enumerate_connected_subgraphs(graph)) == [frozenset({0})]
    assert enumerate_connected_kcores(graph, 1) == []
