"""Edge cases and documented caveats across the solver suite."""

import numpy as np
import pytest

from repro.graphs.builder import graph_from_edges
from repro.influential.api import top_r_communities
from repro.influential.bruteforce import bruteforce_top_r
from repro.influential.improved import tic_improved
from repro.influential.naive_sum import sum_naive


def _k4_plus_tail(weights):
    """K4 on 0-3 with a 2-path tail 3-4-5 wired back to 2 (one 2-core)."""
    return graph_from_edges(
        [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4), (4, 5), (5, 2)],
        weights=weights,
    )


class TestZeroWeights:
    """Corollary 2 needs *non-negative* weights; zero-weight vertices make
    removals value-preserving, so top-r by value still works but multiple
    same-value communities appear — the solvers must stay consistent."""

    def test_sum_with_zero_weight_vertices(self):
        """Documented caveat: with zero-weight vertices, removal is no
        longer *strictly* decreasing, so nested communities can tie on
        value.  Definition 3's maximality merges such ties (the oracle
        drops the non-maximal K4 whose superset has the same sum 14);
        Algorithm 2 enumerates both.  The top value always agrees, and
        every reported set is a valid connected k-core."""
        graph = _k4_plus_tail([5.0, 4.0, 3.0, 2.0, 0.0, 0.0])
        exact = bruteforce_top_r(graph, 2, 3, "sum")
        ours = tic_improved(graph, 2, 3)
        assert ours.values()[0] == exact.values()[0] == 14.0
        # The oracle's (maximal) answers all appear among the candidates
        # Algorithm 2 could enumerate at equal-or-better value.
        for value in exact.values():
            assert any(v >= value for v in ours.values())
        from repro.hardness.certificates import certify_result_set

        certify_result_set(graph, ours, k=2)

    def test_all_zero_weights(self):
        graph = _k4_plus_tail([0.0] * 6)
        result = tic_improved(graph, 2, 2)
        assert result.values() == [0.0, 0.0]

    def test_naive_agrees_on_zero_weights(self):
        graph = _k4_plus_tail([1.0, 0.0, 2.0, 0.0, 3.0, 0.0])
        assert sum_naive(graph, 2, 4).values() == pytest.approx(
            tic_improved(graph, 2, 4).values()
        )


class TestUniformWeights:
    def test_sum_reduces_to_size(self):
        graph = _k4_plus_tail([1.0] * 6)
        result = tic_improved(graph, 2, 2)
        # Top-1 is the whole 2-core (6 vertices), value 6.
        assert result.values()[0] == 6.0

    def test_min_max_coincide(self):
        graph = _k4_plus_tail([3.0] * 6)
        top_min = top_r_communities(graph, k=2, r=1, f="min")
        top_max = top_r_communities(graph, k=2, r=1, f="max")
        assert top_min.values() == top_max.values() == [3.0]


class TestDegenerateShapes:
    def test_r_one(self, figure1):
        assert len(top_r_communities(figure1, k=2, r=1, f="sum")) == 1

    def test_k_equals_max_core(self, tiny):
        # kmax(tiny) = 3; k = 3 yields exactly the K4.
        result = top_r_communities(tiny, k=3, r=5, f="sum")
        assert len(result) == 1
        assert result[0].vertices == frozenset({0, 1, 2, 3})

    def test_k_above_max_core(self, tiny):
        assert len(top_r_communities(tiny, k=4, r=5, f="sum")) == 0

    def test_complete_graph_all_aggregators(self):
        k6 = graph_from_edges(
            [(i, j) for i in range(6) for j in range(i + 1, 6)],
            weights=[1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        )
        for f in ("sum", "min", "max"):
            result = top_r_communities(k6, k=3, r=1, f=f)
            assert len(result) == 1

    def test_two_vertex_components_never_qualify(self):
        graph = graph_from_edges([(0, 1)], weights=[9.0, 9.0])
        assert len(top_r_communities(graph, k=1, r=2, f="sum")) == 1
        # k=1: the edge itself is a 1-core community.


class TestLargeRSaturation:
    def test_r_exceeding_family_size(self, two_triangles):
        for f in ("sum", "min", "max"):
            result = top_r_communities(two_triangles, k=2, r=99, f=f)
            assert 1 <= len(result) <= 4


class TestFloatStability:
    def test_incremental_values_match_recompute_after_deep_peeling(self):
        rng = np.random.default_rng(5)
        weights = rng.uniform(0.001, 1000.0, size=12).round(6).tolist()
        graph = graph_from_edges(
            [(i, j) for i in range(12) for j in range(i + 1, 12)
             if (i + j) % 3 != 0],
            weights=weights,
        )
        from repro.aggregators.summation import Sum
        from repro.hardness.certificates import certify_result_set

        result = tic_improved(graph, 2, 6, Sum())
        # The certifier recomputes every value from scratch and tolerates
        # only 1e-9 relative drift: incremental arithmetic must hold up.
        certify_result_set(graph, result, k=2)
