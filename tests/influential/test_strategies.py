"""Unit tests for the Sum/Avg local-search strategies."""

import pytest

from repro.aggregators.average import Average
from repro.aggregators.density import BalancedDensity
from repro.aggregators.summation import Sum
from repro.influential.community import Community
from repro.influential.strategies import (
    AvgStrategy,
    SumStrategy,
    _is_candidate,
    strategy_for,
)
from repro.utils.topr import TopR


def _top(r=3):
    return TopR(r, key=lambda c: c.value)


def test_is_candidate_checks_both_conditions(two_triangles):
    assert _is_candidate(two_triangles, [0, 1, 2], 2)
    # Cohesive but disconnected: both triangles together.
    assert not _is_candidate(two_triangles, [0, 1, 2, 3, 4, 5], 2)
    # Connected but not cohesive: an edge at k=2.
    assert not _is_candidate(two_triangles, [0, 1], 2)


def test_sum_strategy_takes_largest_feasible_prefix(figure1):
    # BFS-style neighbourhood of v6: the first-s block {v6,v5,v7,v11} is the
    # optimal size-4 sum community (value 79) and must be taken whole.
    ordered = [5, 4, 6, 10]
    strategy = SumStrategy(figure1, k=2, s=4, aggregator=Sum())
    top = _top()
    strategy.offer_candidates(ordered, top)
    assert len(top) == 1
    best = top.best()
    assert best.vertices == frozenset({4, 5, 6, 10})
    assert best.value == 79.0
    assert _is_candidate(figure1, best.members(), 2)


def test_sum_strategy_shrinks_from_tail(figure1):
    # A weight-sorted order that breaks connectivity forces tail-shrinking;
    # {v11, v7, v5, v6} sorted desc = [v11, v7, v5, v6]; the full block IS a
    # valid 2-core, so it is taken; adding an unreachable tail vertex first
    # exercises the shrink loop.
    ordered = [10, 9, 6, 4, 5]  # v11, v10, v7, v5, v6
    strategy = SumStrategy(figure1, k=2, s=5, aggregator=Sum())
    top = _top()
    strategy.offer_candidates(ordered, top)
    # Block {v11,v10,v7,v5,v6} is not a 2-core (v10 only touches v6);
    # shrinking drops v6 then v5 then v7... no prefix qualifies, so
    # nothing is offered — the strategy must not emit invalid candidates.
    for community in top.ranked():
        assert _is_candidate(figure1, community.members(), 2)


def test_sum_strategy_respects_threshold(figure1):
    strategy = SumStrategy(figure1, k=2, s=4, aggregator=Sum())
    top = _top(1)
    # Pre-load an unbeatable community so nothing can pass f(Lr).
    top.offer(Community(frozenset({0}), 1e9, "sum", 2))
    strategy.offer_candidates([0, 1, 3, 4], top)
    assert top.best().value == 1e9  # unchanged


def test_avg_strategy_greedy_stops_at_first_qualifier(figure1):
    ordered = sorted(range(11), key=lambda v: -figure1.weight(v))
    strategy = AvgStrategy(figure1, k=2, s=11, aggregator=Average(), greedy=True)
    top = _top()
    strategy.offer_candidates(ordered, top)
    assert len(top) == 1
    candidate = top.best()
    assert _is_candidate(figure1, candidate.members(), 2)


def test_avg_strategy_exhaustive_keeps_best(figure1):
    ordered = list(range(11))  # BFS-ish arbitrary order
    strategy = AvgStrategy(figure1, k=2, s=11, aggregator=Average(), greedy=False)
    top = _top()
    strategy.offer_candidates(ordered, top)
    if len(top):
        candidate = top.best()
        assert _is_candidate(figure1, candidate.members(), 2)


def test_avg_strategy_candidates_bounded_by_s(figure1):
    ordered = sorted(range(11), key=lambda v: -figure1.weight(v))
    strategy = AvgStrategy(figure1, k=2, s=5, aggregator=Average(), greedy=False)
    top = _top()
    strategy.offer_candidates(ordered, top)
    for community in top.ranked():
        assert community.size <= 5


def test_strategy_for_dispatch(figure1):
    assert isinstance(strategy_for(figure1, 2, 4, Sum(), True), SumStrategy)
    assert isinstance(strategy_for(figure1, 2, 4, Average(), True), AvgStrategy)
    # Unknown/non-proportional aggregators fall back to the generic
    # grow-and-test scheme (Remark 1).
    assert isinstance(
        strategy_for(figure1, 2, 4, BalancedDensity(), False), AvgStrategy
    )


def test_balanced_density_gets_graph_total(two_triangles):
    strategy = strategy_for(two_triangles, 2, 3, BalancedDensity(), True)
    top = _top()
    strategy.offer_candidates([3, 4, 5], top)
    assert len(top) == 1
    assert top.best().value == pytest.approx(60.0 / 54.0)
