"""Unit tests for ResultSet."""

from repro.influential.community import Community
from repro.influential.results import ResultSet


def _c(vertices, value):
    return Community(frozenset(vertices), value, "sum", 2)


def test_sorted_best_first():
    rs = ResultSet([_c({1}, 1.0), _c({2}, 3.0), _c({3}, 2.0)])
    assert rs.values() == [3.0, 2.0, 1.0]
    assert rs[0].value == 3.0


def test_rth_value():
    rs = ResultSet([_c({1}, 5.0), _c({2}, 3.0)])
    assert rs.rth_value(1) == 5.0
    assert rs.rth_value(2) == 3.0
    assert rs.rth_value() == 3.0  # default: last
    assert rs.rth_value(5) == float("-inf")  # not enough communities


def test_disjointness_check():
    disjoint = ResultSet([_c({1, 2}, 2.0), _c({3}, 1.0)])
    overlapping = ResultSet([_c({1, 2}, 2.0), _c({2, 3}, 1.0)])
    assert disjoint.is_pairwise_disjoint()
    assert not overlapping.is_pairwise_disjoint()


def test_sequence_protocol():
    rs = ResultSet([_c({1}, 1.0)])
    assert len(rs) == 1
    assert list(rs) == [rs[0]]
    assert rs == ResultSet([_c({1}, 1.0)])
    assert hash(rs) == hash(ResultSet([_c({1}, 1.0)]))


def test_vertex_sets():
    rs = ResultSet([_c({1, 2}, 2.0), _c({3}, 1.0)])
    assert rs.vertex_sets() == [frozenset({1, 2}), frozenset({3})]


def test_describe_empty_and_nonempty():
    assert "no communities" in ResultSet([]).describe()
    text = ResultSet([_c({1}, 1.0)]).describe()
    assert text.startswith("#1:")
