"""Algorithm 3 (TIC-EXACT) against the brute-force candidate space."""

import pytest

from repro.errors import SolverError
from repro.graphs.builder import GraphBuilder
from repro.influential.bruteforce import bruteforce_top_r
from repro.influential.exact import tic_exact


def test_figure1_size4_sum(figure1):
    result = tic_exact(figure1, k=2, r=10, s=4, f="sum")
    assert all(c.size <= 4 for c in result)
    # Example 1's size-constrained community {v3,v6,v9,v10} with value 40.
    values = {frozenset(c.vertices): c.value for c in result}
    assert values[frozenset({2, 5, 8, 9})] == 40.0


def test_matches_bruteforce_candidate_space(small_random_graphs):
    for graph in small_random_graphs:
        for k, s in [(1, 3), (2, 4), (2, 6), (3, 5)]:
            ours = tic_exact(graph, k, 5, s, "sum")
            oracle = bruteforce_top_r(graph, k, 5, "sum", s=s, require_maximal=False)
            assert ours.values() == pytest.approx(oracle.values())


def test_works_for_avg(small_random_graphs):
    graph = small_random_graphs[0]
    ours = tic_exact(graph, 2, 3, 5, "avg")
    oracle = bruteforce_top_r(graph, 2, 3, "avg", s=5, require_maximal=False)
    assert ours.values() == pytest.approx(oracle.values())


def test_works_for_min_max(small_random_graphs):
    graph = small_random_graphs[1]
    for f in ("min", "max"):
        ours = tic_exact(graph, 2, 4, 6, f)
        oracle = bruteforce_top_r(graph, 2, 4, f, s=6, require_maximal=False)
        assert ours.values() == pytest.approx(oracle.values())


def test_size_guard():
    graph = GraphBuilder(30).build()
    with pytest.raises(SolverError):
        tic_exact(graph, 2, 1, 5, "sum")


def test_parameter_validation(figure1):
    with pytest.raises(SolverError):
        tic_exact(figure1, 2, 1, s=2, f="sum")  # s < k+1
    with pytest.raises(SolverError):
        tic_exact(figure1, 0, 1, s=4, f="sum")


def test_empty_when_no_kcore_fits(path_graph):
    assert len(tic_exact(path_graph, 2, 3, 4, "sum")) == 0
