"""The fast expansion path against the straightforward re-core reference."""

import networkx as nx
import pytest

from repro.aggregators.summation import Sum
from repro.core.kcore import connected_kcore_components, kcore_of_subset
from repro.influential.expansion import ExpansionContext, _articulation_vertices
from repro.utils.zobrist import ZobristHasher
from tests.conftest import random_weighted_graph


def _reference_children(graph, component, k, vertex):
    remainder = set(component)
    remainder.discard(vertex)
    return {
        frozenset(c) for c in connected_kcore_components(graph, remainder, k)
    }


def _check_component(graph, component, k):
    aggregator = Sum()
    hasher = ZobristHasher(graph.n)
    parent_value = aggregator.value(graph, component)
    ctx = ExpansionContext(graph, component, k, aggregator, parent_value, hasher)
    for vertex in sorted(component):
        children = ctx.children_after_removal(vertex)
        expected = _reference_children(graph, component, k, vertex)
        assert {c.vertices for c in children} == expected, (vertex, k)
        for child in children:
            assert child.value == pytest.approx(
                aggregator.value(graph, child.vertices)
            )
            assert child.key == hasher.hash_set(child.vertices)


def test_matches_reference_on_random_graphs():
    for seed in range(6):
        graph = random_weighted_graph(25, 0.2, seed=seed)
        for k in (1, 2, 3):
            for component in connected_kcore_components(graph, range(graph.n), k):
                _check_component(graph, frozenset(component), k)


def test_matches_reference_on_figure1(figure1):
    component = frozenset(kcore_of_subset(figure1, range(11), 2))
    _check_component(figure1, component, 2)


def test_articulation_vertices_match_networkx():
    for seed in range(8):
        graph = random_weighted_graph(30, 0.1, seed=seed)
        local_adj = {v: set(graph.adjacency[v]) for v in range(graph.n)}
        ours = _articulation_vertices(local_adj)
        g = nx.Graph()
        g.add_nodes_from(range(graph.n))
        g.add_edges_from(graph.edges())
        theirs = set(nx.articulation_points(g))
        assert ours == theirs, seed


def test_min_removal_loss_sum(figure1):
    component = frozenset(range(11))
    ctx = ExpansionContext(
        figure1, component, 2, Sum(), 203.0, ZobristHasher(11)
    )
    # Loss of removing v1 (id 0, weight 62) is at least 62.
    assert ctx.min_removal_loss(0) == 62.0
    # Every actual child's value confirms the bound.
    for child in ctx.children_after_removal(0):
        assert child.value <= 203.0 - 62.0


def test_min_removal_loss_nonsum_is_zero(figure1):
    from repro.aggregators.average import Average

    ctx = ExpansionContext(
        figure1, frozenset(range(11)), 2, Average(), 203.0 / 11, ZobristHasher(11)
    )
    assert ctx.min_removal_loss(0) == 0.0
