"""Algorithm 1 (SUM-NAIVE) against the brute-force oracle."""

import pytest

from repro.errors import SolverError
from repro.hardness.certificates import certify_result_set
from repro.influential.bruteforce import bruteforce_top_r
from repro.influential.naive_sum import sum_naive


def test_figure1_example1(figure1):
    result = sum_naive(figure1, k=2, r=2)
    assert result.values() == [203.0, 195.0]
    assert result[0].vertices == frozenset(range(11))
    assert result[1].vertices == frozenset(range(11)) - {2}  # minus v3


def test_matches_bruteforce_on_random_graphs(small_random_graphs):
    for graph in small_random_graphs:
        for k in (1, 2, 3):
            for r in (1, 3, 5):
                ours = sum_naive(graph, k, r)
                oracle = bruteforce_top_r(graph, k, r, "sum")
                assert ours.values() == pytest.approx(oracle.values()), (
                    graph.n, k, r
                )


def test_outputs_certify(figure1):
    result = sum_naive(figure1, k=2, r=4)
    certify_result_set(figure1, result, k=2)


def test_disjoint_components(two_triangles):
    result = sum_naive(two_triangles, k=2, r=2)
    assert result.values() == [60.0, 6.0]


def test_sum_surplus_supported(figure1):
    result = sum_naive(figure1, k=2, r=1, f="sum-surplus(alpha=1)")
    assert result.values() == [203.0 + 11.0]


def test_avg_rejected(figure1):
    with pytest.raises(SolverError):
        sum_naive(figure1, k=2, r=1, f="avg")


def test_min_rejected(figure1):
    with pytest.raises(SolverError):
        sum_naive(figure1, k=2, r=1, f="min")


def test_invalid_parameters(figure1):
    with pytest.raises(SolverError):
        sum_naive(figure1, k=0, r=1)
    with pytest.raises(SolverError):
        sum_naive(figure1, k=2, r=0)


def test_empty_core_returns_nothing(path_graph):
    assert len(sum_naive(path_graph, k=2, r=3)) == 0


def test_max_sweeps_caps_work(figure1):
    # One sweep is already enough to find the top-2 here, but the cap must
    # be honoured without error.
    result = sum_naive(figure1, k=2, r=2, max_sweeps=1)
    assert len(result) == 2
