"""Unit tests for the Community result type."""

import pytest

from repro.aggregators.summation import Sum
from repro.influential.community import Community, community_from_vertices


def test_construction_and_accessors():
    c = Community(frozenset({3, 1, 2}), 6.0, "sum", 2)
    assert c.size == 3
    assert c.members() == [1, 2, 3]
    assert c.value == 6.0


def test_empty_rejected():
    with pytest.raises(ValueError):
        Community(frozenset(), 0.0, "sum", 2)


def test_ordering_best_first():
    a = Community(frozenset({1}), 10.0, "sum", 2)
    b = Community(frozenset({2}), 5.0, "sum", 2)
    assert sorted([b, a]) == [a, b]


def test_tie_break_smaller_then_lexicographic():
    big = Community(frozenset({1, 2, 3}), 5.0, "sum", 2)
    small = Community(frozenset({9, 8}), 5.0, "sum", 2)
    assert sorted([big, small]) == [small, big]
    x = Community(frozenset({1, 5}), 5.0, "sum", 2)
    y = Community(frozenset({1, 7}), 5.0, "sum", 2)
    assert sorted([y, x]) == [x, y]


def test_overlaps():
    a = Community(frozenset({1, 2}), 1.0, "sum", 2)
    b = Community(frozenset({2, 3}), 1.0, "sum", 2)
    c = Community(frozenset({4}), 1.0, "sum", 2)
    assert a.overlaps(b)
    assert not a.overlaps(c)


def test_from_vertices_computes_value(triangle):
    c = community_from_vertices(triangle, [0, 1, 2], Sum(), 2)
    assert c.value == 6.0
    assert c.aggregator == "sum"
    assert c.k == 2


def test_labels_and_describe(figure1):
    c = community_from_vertices(figure1, [0, 1, 3], Sum(), 2)
    assert c.labels(figure1) == ["v1", "v2", "v4"]
    text = c.describe(figure1)
    assert "v1" in text and "sum=72" in text


def test_describe_truncates():
    c = Community(frozenset(range(20)), 1.0, "sum", 2)
    assert "+8 more" in c.describe(max_members=12)


def test_hashable_and_frozen():
    c = Community(frozenset({1}), 1.0, "sum", 2)
    assert hash(c) is not None
    with pytest.raises(AttributeError):
        c.value = 2.0  # type: ignore[misc]
