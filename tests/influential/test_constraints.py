"""Label-constrained queries: predicate semantics and solver correctness.

The contract under test (ISSUE: constrained search must *prune before
expansion*, not filter afterwards, yet return exactly the post-filter
answer): for every predicate, constrained ``top_r_communities`` equals
the post-filtered brute force — every connected k-core of the full graph
whose members all match, Definition 3 maximality applied within the
matching universe.  Both engine paths are pinned: the CSR pushdown
(masked peel on the global CSR) and the induced-subgraph fallback.
"""

from __future__ import annotations

import pytest

from repro.errors import SpecError
from repro.graphs.builder import graph_from_edges
from repro.influential.api import top_r_communities
from repro.influential.constraints import LabelPredicate, matching_mask
from repro.serving.oracle import (
    bruteforce_constrained_top_r,
    constrained_discrepancies,
    small_oracle_graphs,
)

#: Deterministic label assignment reused across the suite: a shared
#: ``g:`` prefix over two buckets plus an unmatched third family.
def _labels_for(graph):
    names = ("g:db", "g:ml", "x:sys")
    return [names[v % 3] for v in range(graph.n)]


def _labeled(graph):
    return graph.with_labels(_labels_for(graph))


PREDICATES = [
    {"eq": "g:db"},
    {"any": ["g:db", "g:ml"]},
    {"prefix": "g:"},
    "x:sys",  # bare string sugar for eq
]


# ----------------------------------------------------------------------
# LabelPredicate parsing and canonicalisation
# ----------------------------------------------------------------------
def test_from_json_forms():
    assert LabelPredicate.from_json(None) is None
    eq = LabelPredicate.from_json("db")
    assert eq.kind == "eq" and eq.values == ("db",)
    any_of = LabelPredicate.from_json(["ml", "db", "ml"])
    assert any_of.kind == "any" and any_of.values == ("db", "ml")
    prefix = LabelPredicate.from_json({"prefix": "g:"})
    assert prefix.kind == "prefix" and prefix.values == ("g:",)
    # idempotent: an instance passes through
    assert LabelPredicate.from_json(eq) is eq


def test_spellings_collapse_to_one_identity():
    a = LabelPredicate.from_json({"any": ["ml", "db"]})
    b = LabelPredicate.from_json(["db", "ml", "db"])
    assert a == b and hash(a) == hash(b)
    assert LabelPredicate.from_json("db") == LabelPredicate.from_json({"eq": "db"})


def test_to_json_round_trips():
    for spec in PREDICATES:
        predicate = LabelPredicate.from_json(spec)
        assert LabelPredicate.from_json(predicate.to_json()) == predicate


@pytest.mark.parametrize(
    "bad",
    [
        42,
        {"eq": "a", "prefix": "b"},  # two kinds at once
        {"between": "a"},
        {"any": []},
        {"any": ["a", 3]},
        {"eq": 7},
        {},
        [],
    ],
)
def test_malformed_predicates_raise(bad):
    with pytest.raises(SpecError):
        LabelPredicate.from_json(bad)


def test_matches_and_describe():
    predicate = LabelPredicate.from_json({"prefix": "g:"})
    assert predicate.matches("g:db") and not predicate.matches("x:sys")
    assert "g:" in predicate.describe()
    assert "∈" in LabelPredicate.from_json(["a", "b"]).describe()


def _unlabeled_triangle():
    return graph_from_edges([(0, 1), (1, 2), (0, 2)], n=3)


def test_matching_mask_requires_labels():
    predicate = LabelPredicate.from_json("db")
    with pytest.raises(SpecError, match="no vertex labels"):
        matching_mask(_unlabeled_triangle(), predicate)


def test_matching_mask_selects_matching_vertices(figure1):
    graph = _labeled(figure1)
    mask = matching_mask(graph, LabelPredicate.from_json({"prefix": "g:"}))
    assert [v for v in range(graph.n) if mask[v]] == [
        v for v in range(graph.n) if v % 3 != 2
    ]


# ----------------------------------------------------------------------
# Solver vs post-filtered brute force, across methods and backends
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name, base", small_oracle_graphs())
@pytest.mark.parametrize("backend", ["csr", "set"])
@pytest.mark.parametrize("f", ["sum", "sum-surplus(1.5)", "min", "max"])
def test_constrained_matches_postfiltered_bruteforce(name, base, backend, f):
    graph = _labeled(base)
    for spec in PREDICATES:
        for k in (1, 2):
            problems = constrained_discrepancies(
                graph, k, 3, f, spec, backend=backend
            )
            assert not problems, f"{name}: " + "\n".join(problems)


@pytest.mark.parametrize("name, base", small_oracle_graphs())
def test_backend_parity_constrained(name, base):
    graph = _labeled(base)
    for spec in PREDICATES:
        csr = top_r_communities(graph, k=2, r=3, f="sum", backend="csr",
                                labels=spec)
        plain = top_r_communities(graph, k=2, r=3, f="sum", backend="set",
                                  labels=spec)
        assert csr == plain and csr.values() == plain.values(), name


def test_constrained_equals_induced_subgraph_solve(figure1):
    """The defining semantics: constrained search == unconstrained search
    on the induced subgraph of matching vertices, mapped back."""
    from repro.graphs.views import induced_subgraph

    graph = _labeled(figure1)
    predicate = LabelPredicate.from_json({"any": ["g:db", "g:ml"]})
    matching = [
        v for v in range(graph.n) if predicate.matches(graph.labels[v])
    ]
    subgraph, __ = induced_subgraph(graph, matching)
    inner = top_r_communities(subgraph, k=2, r=4, f="sum")
    constrained = top_r_communities(graph, k=2, r=4, f="sum", labels=predicate)
    mapped = [
        frozenset(matching[v] for v in community.vertices)
        for community in inner
    ]
    assert [frozenset(c.vertices) for c in constrained] == mapped
    assert constrained.values() == inner.values()


def test_constrained_with_size_cap_and_tonic(figure1):
    """The fallback path (s, non_overlapping) honours the predicate."""
    graph = _labeled(figure1)
    predicate = LabelPredicate.from_json({"prefix": "g:"})
    for kwargs in ({"s": 5}, {"non_overlapping": True}):
        result = top_r_communities(
            graph, k=2, r=2, f="sum", labels=predicate, **kwargs
        )
        for community in result:
            assert all(
                predicate.matches(graph.labels[v]) for v in community.vertices
            )


def test_eps_approx_constrained_members_match(figure1):
    graph = _labeled(figure1)
    predicate = LabelPredicate.from_json({"prefix": "g:"})
    exact = top_r_communities(graph, k=2, r=3, f="sum", labels=predicate)
    approx = top_r_communities(
        graph, k=2, r=3, f="sum", eps=0.1, method="approx", labels=predicate
    )
    assert approx and exact
    for community in approx:
        assert all(
            predicate.matches(graph.labels[v]) for v in community.vertices
        )
        assert community.value <= exact.values()[0] + 1e-9
    # Algorithm 2's pruned search is (1-eps)-approximate on the top value.
    assert approx.values()[0] >= (1 - 0.1) * exact.values()[0] - 1e-9


def test_unlabeled_graph_rejects_constraint():
    with pytest.raises(SpecError, match="no vertex labels"):
        top_r_communities(
            _unlabeled_triangle(), k=2, r=1, f="sum", labels={"eq": "db"}
        )


def test_unmatched_predicate_returns_empty(figure1):
    graph = _labeled(figure1)
    result = top_r_communities(graph, k=2, r=3, f="sum", labels="nope")
    assert len(result) == 0


def test_k_above_kmax_constrained_fast_path(figure1):
    graph = _labeled(figure1)
    result = top_r_communities(graph, k=99, r=1, f="sum", labels={"prefix": "g:"})
    assert len(result) == 0


def test_empty_graph_with_constraint():
    graph = graph_from_edges([], n=0)
    result = top_r_communities(graph, k=1, r=1, f="sum", labels="x")
    assert len(result) == 0


def test_oracle_reference_is_subset_of_unconstrained(figure1):
    """Sanity on the reference itself: every constrained oracle community
    is an all-matching connected k-core, never better than the
    unconstrained optimum."""
    from repro.influential.bruteforce import bruteforce_top_r

    graph = _labeled(figure1)
    predicate = LabelPredicate.from_json({"prefix": "g:"})
    constrained = bruteforce_constrained_top_r(graph, 2, 3, "sum", predicate)
    unconstrained = bruteforce_top_r(graph, 2, 1, "sum")
    for community in constrained:
        assert all(
            predicate.matches(graph.labels[v]) for v in community.vertices
        )
    if constrained and unconstrained:
        assert constrained.values()[0] <= unconstrained.values()[0] + 1e-9
