"""TONIC (non-overlapping) wrappers."""

import pytest

from repro.aggregators.summation import Sum
from repro.errors import SolverError
from repro.influential.bruteforce import bruteforce_top_r_nonoverlapping
from repro.influential.community import Community, community_from_vertices
from repro.influential.minmax_solvers import min_communities
from repro.influential.nonoverlap import (
    greedy_disjoint,
    tonic_extract,
    tonic_sum_unconstrained,
)


def _c(vertices, value):
    return Community(frozenset(vertices), value, "sum", 2)


def test_greedy_disjoint_selection():
    communities = [_c({1, 2}, 10.0), _c({2, 3}, 9.0), _c({4}, 8.0), _c({5}, 1.0)]
    result = greedy_disjoint(communities, r=3)
    assert result.values() == [10.0, 8.0, 1.0]  # {2,3} skipped (overlaps)
    assert result.is_pairwise_disjoint()


def test_greedy_disjoint_r_validated():
    with pytest.raises(SolverError):
        greedy_disjoint([], r=0)


def test_tonic_sum_components(two_triangles):
    result = tonic_sum_unconstrained(two_triangles, 2, 2)
    assert result.values() == [60.0, 6.0]
    assert result.is_pairwise_disjoint()


def test_tonic_sum_figure1(figure1):
    # The whole 2-core is one component, so TONIC top-r under sum is just
    # that single community.
    result = tonic_sum_unconstrained(figure1, 2, 3)
    assert len(result) == 1
    assert result.values() == [203.0]


def test_tonic_sum_rejects_non_proportional(figure1):
    with pytest.raises(SolverError):
        tonic_sum_unconstrained(figure1, 2, 3, "avg")


def test_min_greedy_disjoint_matches_oracle(figure1):
    family = min_communities(figure1, 2)
    ours = greedy_disjoint(family, 3)
    oracle = bruteforce_top_r_nonoverlapping(figure1, 2, 3, "min")
    assert ours.values() == oracle.values()


def test_tonic_extract_generic(two_triangles):
    def top1(graph, alive):
        if not alive:
            return None
        from repro.graphs.components import connected_components_of

        comps = connected_components_of(graph, alive)
        best = max(comps, key=lambda c: graph.weight_of(c))
        return community_from_vertices(graph, best, Sum(), 2)

    result = tonic_extract(two_triangles, 2, 5, top1)
    assert result.values() == [60.0, 6.0]
    assert result.is_pairwise_disjoint()


def test_tonic_extract_rejects_stray_solver(tiny):
    def bad_top1(graph, alive):
        # Vertices 5, 6 are outside the 2-core, hence outside `alive`.
        return community_from_vertices(graph, {5, 6}, Sum(), 2)

    with pytest.raises(SolverError):
        tonic_extract(tiny, 2, 5, bad_top1)


def test_tonic_extract_parameter_validation(two_triangles):
    with pytest.raises(SolverError):
        tonic_extract(two_triangles, 0, 1, lambda g, a: None)
