"""Unit tests for the planted-community generator."""

import pytest

from repro.core.kcore import is_kcore_subset
from repro.errors import GraphError
from repro.graphs.generators.planted import PlantedSpec, planted_communities
from repro.graphs.validation import validate_graph


def test_blocks_are_planted_where_claimed():
    graph, planted = planted_communities(
        50,
        [PlantedSpec(size=6, weight_low=5.0, weight_high=6.0)],
        seed=1,
    )
    validate_graph(graph)
    assert len(planted) == 1
    block = planted[0]
    assert len(block) == 6
    # Full clique (intra_p=1.0): it is a 5-core internally.
    assert is_kcore_subset(graph, block, 5)
    # Planted weights fall in the configured band.
    for v in block:
        assert 5.0 <= graph.weight(v) <= 6.0


def test_background_weights_below_band():
    graph, planted = planted_communities(
        30,
        [PlantedSpec(size=5, weight_low=10.0, weight_high=11.0)],
        background_weight_high=1.0,
        seed=2,
    )
    block = planted[0]
    for v in range(graph.n):
        if v not in block:
            assert graph.weight(v) <= 1.0


def test_multiple_blocks_disjoint():
    graph, planted = planted_communities(
        40,
        [PlantedSpec(size=5), PlantedSpec(size=7), PlantedSpec(size=4, intra_p=0.9)],
        seed=3,
    )
    assert len(planted) == 3
    all_members = [v for block in planted for v in block]
    assert len(all_members) == len(set(all_members))
    assert graph.n == 40 + 5 + 7 + 4


def test_determinism():
    a = planted_communities(30, [PlantedSpec(size=5)], seed=9)
    b = planted_communities(30, [PlantedSpec(size=5)], seed=9)
    assert sorted(a[0].edges()) == sorted(b[0].edges())
    assert a[1] == b[1]


def test_spec_validation():
    with pytest.raises(GraphError):
        PlantedSpec(size=1)
    with pytest.raises(GraphError):
        PlantedSpec(size=5, intra_p=0.0)
    with pytest.raises(GraphError):
        PlantedSpec(size=5, weight_low=3.0, weight_high=1.0)
    with pytest.raises(GraphError):
        planted_communities(0, [PlantedSpec(size=5)])
    with pytest.raises(GraphError):
        planted_communities(10, [PlantedSpec(size=5)], background_p=2.0)
