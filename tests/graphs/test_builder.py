"""Unit tests for GraphBuilder and graph_from_edges."""

import pytest

from repro.errors import GraphError, VertexError
from repro.graphs.builder import GraphBuilder, graph_from_edges


def test_incremental_build():
    builder = GraphBuilder(2)
    builder.add_edge(0, 1)
    v = builder.add_vertex(weight=3.0, label="carol")
    builder.add_edge(v, 0)
    graph = builder.build()
    assert graph.n == 3
    assert graph.m == 2
    assert graph.weight(2) == 3.0
    assert graph.label_of(2) == "carol"


def test_duplicate_and_mirrored_edges_collapse():
    builder = GraphBuilder(2)
    builder.add_edge(0, 1).add_edge(1, 0).add_edge(0, 1)
    assert builder.build().m == 1


def test_self_loop_rejected():
    builder = GraphBuilder(2)
    with pytest.raises(GraphError):
        builder.add_edge(1, 1)


def test_vertex_range_checked():
    builder = GraphBuilder(2)
    with pytest.raises(VertexError):
        builder.add_edge(0, 5)
    with pytest.raises(VertexError):
        builder.set_weight(-1, 2.0)


def test_ensure_vertex_grows():
    builder = GraphBuilder(0)
    builder.ensure_vertex(4)
    assert builder.n == 5


def test_set_weights_bulk():
    builder = GraphBuilder(3)
    builder.set_weights([1.0, 2.0, 3.0])
    assert builder.build().total_weight == 6.0


def test_set_weights_arity_checked():
    builder = GraphBuilder(3)
    with pytest.raises(GraphError):
        builder.set_weights([1.0])


def test_builder_single_use():
    builder = GraphBuilder(1)
    builder.build()
    with pytest.raises(GraphError):
        builder.build()


def test_has_edge():
    builder = GraphBuilder(3)
    builder.add_edge(0, 1)
    assert builder.has_edge(1, 0)
    assert not builder.has_edge(0, 2)


def test_labels_backfilled():
    builder = GraphBuilder(2)
    builder.add_vertex(label="named")
    graph = builder.build()
    assert graph.label_of(0) == "v0"
    assert graph.label_of(2) == "named"


def test_graph_from_edges_infers_size():
    graph = graph_from_edges([(0, 3), (3, 1)])
    assert graph.n == 4
    assert graph.m == 2


def test_graph_from_edges_explicit_size_and_weights():
    graph = graph_from_edges([(0, 1)], weights=[1.0, 2.0, 3.0])
    assert graph.n == 3
    assert graph.weight(2) == 3.0


def test_graph_from_edges_insufficient_weights():
    with pytest.raises(GraphError):
        graph_from_edges([(0, 5)], weights=[1.0, 2.0])


def test_negative_builder_size_rejected():
    with pytest.raises(GraphError):
        GraphBuilder(-2)


# ----------------------------------------------------------------------
# graph_from_csr_arrays (the serving workers' reconstruction path)
# ----------------------------------------------------------------------
def test_graph_from_csr_arrays_round_trip():
    import numpy as np

    from repro.graphs.builder import graph_from_csr_arrays

    original = graph_from_edges(
        [(0, 1), (1, 2), (0, 2), (2, 3)], weights=[1.0, 2.0, 3.0, 4.0]
    )
    csr = original.csr
    rebuilt = graph_from_csr_arrays(
        csr.indptr, csr.indices, original.weights, labels=["a", "b", "c", "d"]
    )
    assert rebuilt.n == original.n and rebuilt.m == original.m
    assert rebuilt.adjacency == original.adjacency
    assert rebuilt.weights.tolist() == original.weights.tolist()
    assert rebuilt.label_of(3) == "d"
    # The CSR cache is seeded directly — no re-flattening.
    assert rebuilt.has_csr
    assert np.array_equal(rebuilt.csr.indptr, csr.indptr)
    assert np.array_equal(rebuilt.csr.indices, csr.indices)


def test_graph_from_csr_arrays_empty_graph():
    import numpy as np

    from repro.graphs.builder import graph_from_csr_arrays

    graph = graph_from_csr_arrays(np.zeros(1, dtype=np.int64), np.empty(0))
    assert graph.n == 0 and graph.m == 0


def test_graph_from_csr_arrays_rejects_malformed_payloads():
    import numpy as np

    from repro.graphs.builder import graph_from_csr_arrays

    with pytest.raises(GraphError):  # indptr/indices length mismatch
        graph_from_csr_arrays(np.array([0, 2]), np.array([1]))
    with pytest.raises(GraphError):  # duplicate neighbour in a run
        graph_from_csr_arrays(np.array([0, 2, 4]), np.array([1, 1, 0, 0]))
    with pytest.raises(GraphError):  # unsorted neighbour run
        graph_from_csr_arrays(
            np.array([0, 2, 3, 5]), np.array([2, 1, 2, 0, 1])
        )
    with pytest.raises(GraphError):  # asymmetric adjacency
        graph_from_csr_arrays(np.array([0, 1, 1]), np.array([1]))
