"""Unit tests for graph validation."""

import pytest

from repro.errors import GraphError
from repro.graphs.builder import graph_from_edges
from repro.graphs.graph import Graph
from repro.graphs.validation import assert_same_topology, validate_graph


def test_valid_graph_passes(figure1):
    validate_graph(figure1)  # no raise


def test_asymmetry_detected():
    graph = Graph([{1}, {0}], _trusted=True)
    graph.adjacency[0].add(1)  # fine
    graph.adjacency[1].discard(0)
    with pytest.raises(GraphError):
        validate_graph(graph)


def test_self_loop_detected():
    graph = Graph([set()], _trusted=True)
    graph.adjacency[0].add(0)
    with pytest.raises(GraphError):
        validate_graph(graph)


def test_edge_count_mismatch_detected():
    graph = graph_from_edges([(0, 1), (1, 2)])
    graph.adjacency[0].add(2)
    graph.adjacency[2].add(0)
    with pytest.raises(GraphError):
        validate_graph(graph)


def test_same_topology():
    a = graph_from_edges([(0, 1), (1, 2)])
    b = graph_from_edges([(0, 1), (1, 2)])
    assert_same_topology(a, b)
    c = graph_from_edges([(0, 1), (0, 2)])
    with pytest.raises(GraphError):
        assert_same_topology(a, c)
    d = graph_from_edges([(0, 1)], n=2)
    with pytest.raises(GraphError):
        assert_same_topology(a, d)
