"""Unit tests for the synthetic Aminer co-authorship generator."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.graphs.generators.aminer import (
    FIELDS,
    AminerSpec,
    generate_aminer,
)
from repro.graphs.validation import validate_graph


@pytest.fixture(scope="module")
def aminer():
    return generate_aminer(AminerSpec(juniors_per_field=40, seed=11))


def test_structure(aminer):
    graph, meta = aminer
    validate_graph(graph)
    assert graph.n == len(meta.field_of)
    assert len(meta.senior_groups) == 5 * 3  # groups_per_field default 3
    assert set(meta.field_of) == set(FIELDS)


def test_senior_groups_are_dense(aminer):
    graph, meta = aminer
    adj = graph.adjacency
    for group in meta.senior_groups:
        # Near-clique at p=0.9: each member co-authors with most of the group.
        for v in group:
            assert len(adj[v] & group) >= len(group) // 2


def test_labels_are_names(aminer):
    graph, __ = aminer
    assert graph.labels is not None
    assert len(set(graph.labels)) == graph.n  # all names unique
    assert all(" " in name for name in graph.labels)


def test_weight_kinds():
    for kind in ("citations", "h", "g", "i10"):
        graph, meta = generate_aminer(
            AminerSpec(juniors_per_field=15, seed=12), weight_kind=kind
        )
        assert np.all(graph.weights >= 0)
    with pytest.raises(DatasetError):
        generate_aminer(AminerSpec(juniors_per_field=15, seed=12), weight_kind="x")


def test_indices_are_consistent(aminer):
    __, meta = aminer
    # h <= g by definition; all indices non-negative integers.
    assert np.all(meta.h_index <= meta.g_index)
    assert np.all(meta.h_index >= 0)
    assert np.all(meta.i10_index >= 0)
    assert np.all(meta.citations >= 0)


def test_seniors_outweigh_juniors(aminer):
    graph, meta = aminer
    senior = set().union(*meta.senior_groups)
    senior_mean = np.mean([meta.citations[v] for v in senior])
    junior_mean = np.mean(
        [meta.citations[v] for v in range(graph.n) if v not in senior]
    )
    assert senior_mean > 3 * junior_mean


def test_determinism():
    a = generate_aminer(AminerSpec(juniors_per_field=15, seed=13))
    b = generate_aminer(AminerSpec(juniors_per_field=15, seed=13))
    assert sorted(a[0].edges()) == sorted(b[0].edges())
    assert np.array_equal(a[0].weights, b[0].weights)


def test_spec_validation():
    with pytest.raises(DatasetError):
        AminerSpec(juniors_per_field=2)
    with pytest.raises(DatasetError):
        AminerSpec(groups_per_field=0)
    with pytest.raises(DatasetError):
        AminerSpec(group_size=(3, 8))
