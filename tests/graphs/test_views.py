"""Unit tests for induced-subgraph helpers."""

import pytest

from repro.errors import VertexError
from repro.graphs.views import (
    induced_degrees,
    induced_edge_count,
    induced_subgraph,
    min_induced_degree,
)


def test_induced_subgraph_structure(tiny):
    sub, mapping = induced_subgraph(tiny, [0, 1, 2, 3])
    assert sub.n == 4
    assert sub.m == 6  # K4
    assert mapping == {0: 0, 1: 1, 2: 2, 3: 3}
    assert sub.weight(3) == 4.0


def test_induced_subgraph_remaps_ids(tiny):
    sub, mapping = induced_subgraph(tiny, [5, 6])
    assert sub.n == 2
    assert sub.m == 1
    assert mapping == {5: 0, 6: 1}
    assert sub.weight(0) == 6.0  # original vertex 5


def test_induced_subgraph_keeps_labels(figure1):
    sub, mapping = induced_subgraph(figure1, [0, 1, 3])
    assert sub.labels == ["v1", "v2", "v4"]


def test_induced_degrees(tiny):
    degrees = induced_degrees(tiny, {0, 1, 2, 3})
    assert degrees == {0: 3, 1: 3, 2: 3, 3: 3}
    partial = induced_degrees(tiny, {0, 4, 5})
    assert partial == {0: 1, 4: 1, 5: 0}


def test_induced_edge_count(tiny):
    assert induced_edge_count(tiny, {0, 1, 2, 3}) == 6
    assert induced_edge_count(tiny, {5, 6}) == 1
    assert induced_edge_count(tiny, {0}) == 0


def test_min_induced_degree(tiny):
    assert min_induced_degree(tiny, {0, 1, 2, 3}) == 3
    assert min_induced_degree(tiny, {0, 1, 4}) == 2
    assert min_induced_degree(tiny, {0, 5}) == 0
    assert min_induced_degree(tiny, set()) == 0


def test_vertex_validation(tiny):
    with pytest.raises(VertexError):
        induced_subgraph(tiny, [99])


def test_duplicates_collapse(tiny):
    sub, __ = induced_subgraph(tiny, [0, 0, 1, 1])
    assert sub.n == 2
