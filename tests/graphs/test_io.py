"""Unit tests for edge-list and weight-file IO."""

import numpy as np
import pytest

from repro.errors import GraphError, WeightError
from repro.graphs.builder import graph_from_edges
from repro.graphs.io import load_edge_list, load_weights, save_edge_list, save_weights


def test_round_trip(tmp_path, figure1):
    path = tmp_path / "graph.txt"
    save_edge_list(figure1, path, header="figure 1")
    loaded, id_map = load_edge_list(path)
    assert loaded.n == figure1.n
    assert loaded.m == figure1.m
    # ids were already dense so the map should be a permutation of range(n)
    assert sorted(id_map.values()) == list(range(figure1.n))


def test_load_tolerates_snap_dialect(tmp_path):
    path = tmp_path / "snap.txt"
    path.write_text(
        "# comment line\n"
        "10 20\n"
        "20 10\n"      # mirrored duplicate
        "10 10\n"      # self-loop: dropped
        "\n"
        "20 30\n"
    )
    graph, id_map = load_edge_list(path)
    assert graph.n == 3
    assert graph.m == 2
    assert set(id_map) == {10, 20, 30}


def test_load_rejects_malformed(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("1\n")
    with pytest.raises(GraphError):
        load_edge_list(path)
    path.write_text("a b\n")
    with pytest.raises(GraphError):
        load_edge_list(path)


def test_weight_round_trip(tmp_path):
    path = tmp_path / "weights.txt"
    weights = [0.5, 1.25, 3.0]
    save_weights(weights, path)
    loaded = load_weights(path, 3)
    assert np.allclose(loaded, weights)


def test_weight_defaults_and_validation(tmp_path):
    path = tmp_path / "w.txt"
    path.write_text("0 1.5\n")
    loaded = load_weights(path, 3)
    assert loaded.tolist() == [1.5, 0.0, 0.0]

    path.write_text("9 1.0\n")
    with pytest.raises(WeightError):
        load_weights(path, 3)

    path.write_text("0 -2\n")
    with pytest.raises(WeightError):
        load_weights(path, 3)

    path.write_text("0 1 2\n")
    with pytest.raises(WeightError):
        load_weights(path, 3)


def test_save_writes_each_edge_once(tmp_path):
    graph = graph_from_edges([(0, 1), (1, 2)])
    path = tmp_path / "g.txt"
    save_edge_list(graph, path)
    data_lines = [
        line for line in path.read_text().splitlines() if not line.startswith("#")
    ]
    assert len(data_lines) == 2
