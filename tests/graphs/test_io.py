"""Unit tests for edge-list and weight-file IO."""

import numpy as np
import pytest

from repro.errors import GraphError, WeightError
from repro.graphs.builder import graph_from_edges
from repro.graphs.io import load_edge_list, load_weights, save_edge_list, save_weights


def test_round_trip(tmp_path, figure1):
    path = tmp_path / "graph.txt"
    save_edge_list(figure1, path, header="figure 1")
    loaded, id_map = load_edge_list(path)
    assert loaded.n == figure1.n
    assert loaded.m == figure1.m
    # ids were already dense so the map should be a permutation of range(n)
    assert sorted(id_map.values()) == list(range(figure1.n))


def test_load_tolerates_snap_dialect(tmp_path):
    path = tmp_path / "snap.txt"
    path.write_text(
        "# comment line\n"
        "10 20\n"
        "20 10\n"      # mirrored duplicate
        "10 10\n"      # self-loop: dropped
        "\n"
        "20 30\n"
    )
    graph, id_map = load_edge_list(path)
    assert graph.n == 3
    assert graph.m == 2
    assert set(id_map) == {10, 20, 30}


def test_load_rejects_malformed(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("1\n")
    with pytest.raises(GraphError):
        load_edge_list(path)
    path.write_text("a b\n")
    with pytest.raises(GraphError):
        load_edge_list(path)


def test_weight_round_trip(tmp_path):
    path = tmp_path / "weights.txt"
    weights = [0.5, 1.25, 3.0]
    save_weights(weights, path)
    loaded = load_weights(path, 3)
    assert np.allclose(loaded, weights)


def test_weight_defaults_and_validation(tmp_path):
    path = tmp_path / "w.txt"
    path.write_text("0 1.5\n")
    loaded = load_weights(path, 3)
    assert loaded.tolist() == [1.5, 0.0, 0.0]

    path.write_text("9 1.0\n")
    with pytest.raises(WeightError):
        load_weights(path, 3)

    path.write_text("0 -2\n")
    with pytest.raises(WeightError):
        load_weights(path, 3)

    path.write_text("0 1 2\n")
    with pytest.raises(WeightError):
        load_weights(path, 3)


def test_save_writes_each_edge_once(tmp_path):
    graph = graph_from_edges([(0, 1), (1, 2)])
    path = tmp_path / "g.txt"
    save_edge_list(graph, path)
    data_lines = [
        line for line in path.read_text().splitlines() if not line.startswith("#")
    ]
    assert len(data_lines) == 2


# ----------------------------------------------------------------------
# Synthetic influence weights, degree labels and one-call ingestion
# ----------------------------------------------------------------------
def _star_path(tmp_path):
    """A star (hub 0) plus a pendant chain, with scrambled SNAP ids."""
    path = tmp_path / "snap.txt"
    path.write_text(
        "# comment line\n"
        "100 200\n100 300\n100 400\n100 500\n400 500\n"
        "500 600\n600 700\n"
        "200 100\n"  # mirrored duplicate
        "300 300\n",  # self-loop
        encoding="utf-8",
    )
    return path


def test_synthetic_weight_modes(figure1):
    from repro.graphs.io import WEIGHT_MODES, synthetic_influence_weights

    for mode in WEIGHT_MODES:
        weights = synthetic_influence_weights(figure1, mode, seed=3)
        assert weights.shape == (figure1.n,)
        assert np.all(np.isfinite(weights)) and np.all(weights >= 0)
        # Deterministic given (graph, mode, seed).
        assert np.array_equal(
            weights, synthetic_influence_weights(figure1, mode, seed=3)
        )


def test_structural_modes_rank_by_connectivity(figure1):
    from repro.graphs.io import synthetic_influence_weights

    degree = synthetic_influence_weights(figure1, "degree")
    assert np.array_equal(degree, figure1.degrees().astype(np.float64) + 1.0)
    pagerank = synthetic_influence_weights(figure1, "pagerank")
    # PageRank mass is conserved: scaled to mean 1 across the graph.
    assert pagerank.sum() == pytest.approx(figure1.n, rel=1e-6)
    hub = int(np.argmax(figure1.degrees()))
    assert pagerank[hub] == pytest.approx(pagerank.max())


def test_unknown_weight_mode_rejected(figure1):
    from repro.errors import SpecError
    from repro.graphs.io import synthetic_influence_weights

    with pytest.raises(SpecError, match="weight mode"):
        synthetic_influence_weights(figure1, "fame")


def test_degree_quantile_labels(figure1):
    from repro.graphs.io import degree_quantile_labels

    labels = degree_quantile_labels(figure1)
    assert len(labels) == figure1.n
    assert set(labels) <= {"deg:low", "deg:mid", "deg:high"}
    assert all(label.startswith("deg:") for label in labels)
    # The highest-degree vertex always lands in the top bucket.
    hub = int(np.argmax(figure1.degrees()))
    assert labels[hub] == "deg:high"
    from repro.errors import SpecError

    with pytest.raises(SpecError, match="bucket"):
        degree_quantile_labels(figure1, names=())


def test_ingest_edge_list_end_to_end(tmp_path):
    from repro.graphs.io import ingest_edge_list

    graph, id_map = ingest_edge_list(
        _star_path(tmp_path), weights="degree", labels="degree"
    )
    assert graph.n == 7 and graph.m == 7  # dupes and self-loop dropped
    assert sorted(id_map) == [100, 200, 300, 400, 500, 600, 700]
    assert graph.weights is not None and graph.labels is not None
    hub = id_map[100]
    assert graph.weights[hub] == pytest.approx(5.0)  # degree 4 + 1
    assert graph.labels[hub] == "deg:high"


def test_ingest_without_labels(tmp_path):
    from repro.graphs.io import ingest_edge_list

    graph, __ = ingest_edge_list(_star_path(tmp_path), weights="uniform", seed=1)
    assert graph.labels is None
    again, __ = ingest_edge_list(_star_path(tmp_path), weights="uniform", seed=1)
    assert np.array_equal(graph.weights, again.weights)


def test_ingest_rejects_unknown_label_mode(tmp_path):
    from repro.errors import SpecError
    from repro.graphs.io import ingest_edge_list

    with pytest.raises(SpecError, match="label mode"):
        ingest_edge_list(_star_path(tmp_path), labels="color")
