"""Unit tests for connectivity primitives, cross-checked with networkx."""

import networkx as nx
import pytest

from repro.graphs.builder import graph_from_edges
from repro.graphs.components import (
    bfs_order,
    connected_components,
    connected_components_of,
    is_connected_subset,
    shortest_hop_distances,
)
from tests.conftest import random_weighted_graph


def _to_nx(graph):
    g = nx.Graph()
    g.add_nodes_from(range(graph.n))
    g.add_edges_from(graph.edges())
    return g


def test_components_of_disjoint_triangles(two_triangles):
    comps = connected_components(two_triangles)
    assert [sorted(c) for c in comps] == [[0, 1, 2], [3, 4, 5]]


def test_components_match_networkx():
    for seed in range(5):
        graph = random_weighted_graph(30, 0.06, seed=seed)
        ours = {frozenset(c) for c in connected_components(graph)}
        theirs = {frozenset(c) for c in nx.connected_components(_to_nx(graph))}
        assert ours == theirs


def test_subset_components(figure1):
    # Removing v6 (id 5) splits the 2-core into the {3,9,10} triangle and
    # the rest (see the Figure 1 reconstruction notes).
    subset = set(range(11)) - {5, 10}
    comps = connected_components_of(figure1, subset)
    assert {frozenset(c) for c in comps} == {
        frozenset({2, 8, 9}),
        frozenset({0, 1, 3, 4, 6, 7}),
    }


def test_is_connected_subset(figure1):
    assert is_connected_subset(figure1, {0, 1, 3})
    assert not is_connected_subset(figure1, {0, 8})  # v1 and v9 not adjacent
    assert is_connected_subset(figure1, {4})  # singleton
    assert not is_connected_subset(figure1, set())  # empty


def test_bfs_order_deterministic(tiny):
    order = bfs_order(tiny, 0)
    assert order[0] == 0
    assert order == bfs_order(tiny, 0)
    assert set(order) == {0, 1, 2, 3, 4}  # pendant pair 5-6 unreachable


def test_bfs_order_within_restriction(tiny):
    order = bfs_order(tiny, 0, within={0, 1, 4})
    assert set(order) == {0, 1, 4}


def test_bfs_source_must_be_inside(tiny):
    with pytest.raises(ValueError):
        bfs_order(tiny, 0, within={1, 2})


def test_hop_distances(path_graph):
    dist = shortest_hop_distances(path_graph, 0)
    assert dist == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}


def test_hop_distances_match_networkx():
    graph = random_weighted_graph(25, 0.12, seed=3)
    expected = dict(nx.single_source_shortest_path_length(_to_nx(graph), 0))
    assert shortest_hop_distances(graph, 0) == expected


def test_empty_like_subset():
    graph = graph_from_edges([(0, 1)])
    assert connected_components_of(graph, []) == []
