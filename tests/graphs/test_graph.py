"""Unit tests for the core Graph type."""

import pytest

from repro.errors import GraphError, VertexError, WeightError
from repro.graphs.builder import graph_from_edges
from repro.graphs.graph import Graph


def test_basic_accessors(triangle):
    assert triangle.n == 3
    assert triangle.m == 3
    assert len(triangle) == 3
    assert triangle.degree(0) == 2
    assert triangle.neighbors(1) == {0, 2}
    assert triangle.has_edge(0, 2)
    assert repr(triangle) == "Graph(n=3, m=3)"


def test_edges_yields_each_once(triangle):
    edges = sorted(triangle.edges())
    assert edges == [(0, 1), (0, 2), (1, 2)]


def test_weights(triangle):
    assert triangle.weight(2) == 3.0
    assert triangle.total_weight == 6.0
    assert triangle.weight_of([0, 2]) == 4.0
    assert triangle.weights.flags.writeable is False


def test_degree_stats(tiny):
    assert tiny.max_degree == 4  # vertices 0 and 1 touch {K4} plus vertex 4
    degrees = tiny.degrees()
    assert int(degrees.sum()) == 2 * tiny.m
    assert tiny.avg_degree == pytest.approx(2 * tiny.m / tiny.n)


def test_vertex_bounds_checked(triangle):
    with pytest.raises(VertexError):
        triangle.degree(3)
    with pytest.raises(VertexError):
        triangle.neighbors(-1)
    with pytest.raises(VertexError):
        triangle.weight(99)


def test_empty_graph(empty_graph):
    assert empty_graph.n == 0
    assert empty_graph.m == 0
    assert empty_graph.max_degree == 0
    assert empty_graph.avg_degree == 0.0
    assert empty_graph.total_weight == 0.0


def test_with_weights_shares_topology(triangle):
    reweighted = triangle.with_weights([5.0, 5.0, 5.0])
    assert reweighted.total_weight == 15.0
    assert reweighted.m == triangle.m
    assert triangle.total_weight == 6.0  # original untouched


def test_labels():
    g = graph_from_edges([(0, 1)], weights=[1.0, 2.0])
    assert g.label_of(0) == "v0"
    named = g.with_labels(["alice", "bob"])
    assert named.label_of(1) == "bob"


def test_invalid_weights_rejected():
    with pytest.raises(WeightError):
        Graph([set(), set()], weights=[-1.0, 2.0])
    with pytest.raises(WeightError):
        Graph([set(), set()], weights=[float("nan"), 2.0])
    with pytest.raises(WeightError):
        Graph([set()], weights=[1.0, 2.0])


def test_asymmetric_adjacency_rejected():
    with pytest.raises(GraphError):
        Graph([{1}, set()])


def test_self_loop_rejected():
    with pytest.raises(GraphError):
        Graph([{0}])


def test_out_of_range_neighbor_rejected():
    with pytest.raises(VertexError):
        Graph([{5}])


def test_label_arity_checked():
    with pytest.raises(GraphError):
        Graph([set(), set()], labels=["only-one"])
