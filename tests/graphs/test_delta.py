"""Unit tests for :mod:`repro.graphs.delta` (incremental edge updates).

The contract under test: ``GraphDelta.apply`` returns a graph whose CSR
arrays are byte-identical to a from-scratch flattening, core numbers
identical to a full re-decomposition, leaves the base graph untouched,
and rejects malformed batches before mutating anything.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.decomposition import core_decomposition
from repro.errors import GraphError, VertexError
from repro.graphs.builder import graph_from_edges
from repro.graphs.csr import CSRAdjacency
from repro.graphs.delta import DeltaReport, GraphDelta, normalize_edge_updates
from repro.graphs.generators.random_graphs import gnm_random_graph
from repro.utils.rng import make_rng


def weighted_gnm(n, m, seed):
    graph = gnm_random_graph(n, m, seed=seed)
    return graph.with_weights(make_rng(seed + 1).uniform(0.1, 9.0, graph.n))


def assert_matches_rebuild(report: DeltaReport):
    """Patched CSR == fresh flatten; repaired cores == fresh peel."""
    graph = report.graph
    rebuilt = CSRAdjacency.from_adjacency(graph.adjacency)
    assert np.array_equal(graph.csr.indptr, rebuilt.indptr)
    assert np.array_equal(graph.csr.indices, rebuilt.indices)
    assert graph.csr.indices.dtype == rebuilt.indices.dtype
    assert np.array_equal(
        report.core_numbers, core_decomposition(graph, backend="set")
    )


def present_edges(graph):
    return [(u, v) for u in range(graph.n) for v in graph.adjacency[u] if u < v]


def absent_edges(graph):
    return [
        (u, v)
        for u in range(graph.n)
        for v in range(u + 1, graph.n)
        if v not in graph.adjacency[u]
    ]


# ----------------------------------------------------------------------
# Core repair + CSR patch correctness
# ----------------------------------------------------------------------
def test_single_insert_matches_rebuild(figure1):
    # backend="csr" explicitly: the strategy assertion must hold even
    # under the set-backend CI matrix ("auto" would resolve to "set",
    # whose oracle path always recomputes).
    report = GraphDelta(figure1, backend="csr").apply(insert=[(0, 9)])
    assert_matches_rebuild(report)
    assert report.graph.m == figure1.m + 1
    assert report.inserted == ((0, 9),)
    assert report.strategy == "incremental"


def test_single_delete_matches_rebuild(figure1):
    edge = present_edges(figure1)[0]
    report = GraphDelta(figure1).apply(delete=[edge])
    assert_matches_rebuild(report)
    assert report.graph.m == figure1.m - 1
    assert report.deleted == (edge,)


def test_base_graph_is_untouched(figure1):
    before = [sorted(neigh) for neigh in figure1.adjacency]
    csr_before = figure1.csr.indices.copy()
    GraphDelta(figure1).apply(insert=[(0, 9)], delete=[present_edges(figure1)[0]])
    assert [sorted(neigh) for neigh in figure1.adjacency] == before
    assert np.array_equal(figure1.csr.indices, csr_before)


def test_weights_and_labels_survive():
    graph = graph_from_edges(
        [(0, 1), (1, 2)], weights=[1.0, 2.0, 3.0]
    ).with_labels(["a", "b", "c"])
    report = GraphDelta(graph).apply(insert=[(0, 2)])
    assert report.graph.weights.tolist() == [1.0, 2.0, 3.0]
    assert report.graph.labels == ["a", "b", "c"]


def test_insert_to_isolated_vertex():
    graph = graph_from_edges([(0, 1)], n=4)
    report = GraphDelta(graph).apply(insert=[(2, 3)])
    assert_matches_rebuild(report)
    assert report.core_numbers.tolist() == [1, 1, 1, 1]


def test_delete_last_edge_of_vertex():
    graph = graph_from_edges([(0, 1), (1, 2)])
    report = GraphDelta(graph).apply(delete=[(0, 1)])
    assert_matches_rebuild(report)
    assert report.core_numbers[0] == 0


def test_clique_edge_cycle_returns_to_start():
    graph = graph_from_edges(
        [(u, v) for u in range(5) for v in range(u + 1, 5)]
    )
    delta = GraphDelta(graph)
    down = delta.apply(delete=[(0, 1)])
    assert down.core_numbers.max() == 3
    up = delta.apply(insert=[(0, 1)])
    assert_matches_rebuild(up)
    assert np.array_equal(up.core_numbers, core_decomposition(graph))
    assert up.graph.m == graph.m


def test_touched_covers_endpoints_and_core_changes():
    # Path 0-1-2-3 plus edge (0, 2) turns {0, 1, 2} into a triangle:
    # their cores rise from 1 to 2, and 3 stays at 1.
    graph = graph_from_edges([(0, 1), (1, 2), (2, 3)])
    report = GraphDelta(graph).apply(insert=[(0, 2)])
    assert set(report.touched.tolist()) >= {0, 1, 2}
    assert 3 not in report.touched.tolist()
    assert report.cores_changed == 3
    assert report.max_affected_core == 2


def test_batches_stack_like_sequential_applies():
    graph = weighted_gnm(60, 240, seed=11)
    inserts = absent_edges(graph)[:5]
    deletes = present_edges(graph)[:5]
    batched = GraphDelta(graph).apply(insert=inserts, delete=deletes)
    sequential = GraphDelta(graph)
    for edge in deletes:
        sequential.apply(delete=[edge])
    for edge in inserts:
        last = sequential.apply(insert=[edge])
    assert np.array_equal(batched.core_numbers, last.core_numbers)
    assert np.array_equal(
        batched.graph.csr.indices, last.graph.csr.indices
    )
    assert sequential.batches_applied == 10
    assert sequential.edges_applied == 10


@pytest.mark.parametrize("seed", range(6))
def test_randomized_batches_match_full_recompute(seed):
    rng = make_rng(seed)
    graph = weighted_gnm(40, int(rng.integers(20, 140)), seed=seed + 50)
    delta = GraphDelta(graph)
    for round_index in range(3):
        gone = present_edges(delta.graph)
        free = absent_edges(delta.graph)
        rng.shuffle(gone)
        rng.shuffle(free)
        deletes = gone[: int(rng.integers(0, 4))]
        inserts = free[: int(rng.integers(0, 4))]
        if not deletes and not inserts:
            continue
        report = delta.apply(insert=inserts, delete=deletes)
        assert_matches_rebuild(report)


def test_large_batches_fall_back_to_recompute():
    graph = weighted_gnm(40, 80, seed=3)
    inserts = absent_edges(graph)[:10]
    report = GraphDelta(graph, batch_threshold=4).apply(insert=inserts)
    assert report.strategy == "recompute"
    assert_matches_rebuild(report)


def test_set_backend_is_the_slow_oracle():
    graph = weighted_gnm(40, 120, seed=9)
    inserts = absent_edges(graph)[:3]
    deletes = present_edges(graph)[:3]
    fast = GraphDelta(graph, backend="csr").apply(
        insert=inserts, delete=deletes
    )
    slow = GraphDelta(graph, backend="set").apply(
        insert=inserts, delete=deletes
    )
    assert slow.strategy == "recompute"
    assert np.array_equal(fast.core_numbers, slow.core_numbers)
    assert [sorted(neigh) for neigh in fast.graph.adjacency] == (
        [sorted(neigh) for neigh in slow.graph.adjacency]
    )


# ----------------------------------------------------------------------
# Validation: a bad batch changes nothing
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "kwargs, message",
    [
        ({"insert": [(1, 1)]}, "self-loop"),
        ({"insert": [(0, 1), (1, 0)]}, "more than once"),
        ({"delete": [(0, 9), (9, 0)]}, "more than once"),
        ({"insert": [(0, 1, 2)]}, "pair"),
        ({"insert": [3]}, "pair"),
        ({"insert": "ab"}, "pair"),
        ({"insert": [("a", "b")]}, "integers"),
        ({"insert": [(0, True)]}, "integers"),
        ({}, "empty"),
        ({"insert": [(0, 2)], "delete": [(0, 2)]}, "both insert and delete"),
    ],
)
def test_malformed_batches_rejected(figure1, kwargs, message):
    delta = GraphDelta(figure1)
    with pytest.raises(GraphError, match=message):
        delta.apply(**kwargs)
    assert delta.batches_applied == 0
    assert delta.graph is figure1


def test_out_of_range_vertex_rejected(figure1):
    with pytest.raises(VertexError):
        GraphDelta(figure1).apply(insert=[(0, figure1.n)])
    with pytest.raises(VertexError):
        GraphDelta(figure1).apply(insert=[(-1, 0)])


def test_existing_edge_insert_and_missing_edge_delete_rejected(figure1):
    edge = present_edges(figure1)[0]
    missing = absent_edges(figure1)[0]
    with pytest.raises(GraphError, match="already exists"):
        GraphDelta(figure1).apply(insert=[edge])
    with pytest.raises(GraphError, match="does not exist"):
        GraphDelta(figure1).apply(delete=[missing])


def test_rejected_batch_is_atomic(figure1):
    # The second edge is bad; the first must not have been applied.
    delta = GraphDelta(figure1)
    good = absent_edges(figure1)[0]
    with pytest.raises(GraphError):
        delta.apply(insert=[good, (2, 2)])
    assert delta.graph is figure1
    assert not figure1.has_edge(*good)


def test_normalize_accepts_numpy_ints(figure1):
    pairs = normalize_edge_updates(
        [(np.int32(4), np.int64(2))], figure1.n, "insert"
    )
    assert pairs == [(2, 4)]


def test_validate_without_apply(figure1):
    inserts, deletes = GraphDelta.validate(
        figure1, insert=[absent_edges(figure1)[0]]
    )
    assert len(inserts) == 1 and deletes == []
    with pytest.raises(GraphError):
        GraphDelta.validate(figure1, insert=[], delete=[])


def test_bad_construction_arguments(figure1):
    with pytest.raises(GraphError, match="batch_threshold"):
        GraphDelta(figure1, batch_threshold=0)
    with pytest.raises(GraphError, match="core_numbers"):
        GraphDelta(figure1, core_numbers=np.zeros(3, dtype=np.int64))


# ----------------------------------------------------------------------
# Labels ride through patches (the constrained-query lifecycle)
# ----------------------------------------------------------------------
def test_labels_survive_patch(figure1):
    """Both delta strategies must carry ``graph.labels`` onto the patched
    graph — a dropped label array would silently turn every constrained
    query on a live-updated service into a SpecError."""
    labeled = figure1.with_labels([f"g:{v % 3}" for v in range(figure1.n)])
    for backend in ("csr", "set"):
        report = GraphDelta(labeled, backend=backend).apply(
            insert=[absent_edges(labeled)[0]],
            delete=[present_edges(labeled)[0]],
        )
        assert report.graph.labels == labeled.labels


def test_labels_survive_patch_then_snapshot_roundtrip(figure1, tmp_path):
    """End to end: label the graph, patch it through a live service,
    snapshot, reload — the restored service still answers constrained
    queries, identically to a cold solve on the patched graph."""
    from repro.influential.api import top_r_communities
    from repro.serving.query import InfluentialQuery
    from repro.serving.service import QueryService
    from repro.serving.store import load_service, save_snapshot

    labeled = figure1.with_labels(
        ["g:db" if v % 2 == 0 else "g:ml" for v in range(figure1.n)]
    )
    service = QueryService(labeled, backend="csr")
    service.update_edges(insert=[absent_edges(labeled)[0]])
    assert service.graph.labels == labeled.labels

    save_snapshot(service, tmp_path / "snap")
    restored = load_service(tmp_path / "snap")
    assert restored.graph.labels == labeled.labels

    query = InfluentialQuery.create(
        {"k": 2, "r": 2, "f": "sum", "constraints": {"labels": {"prefix": "g:"}}}
    )
    served = restored.submit(query)
    cold = top_r_communities(
        service.graph, k=2, r=2, f="sum", labels={"prefix": "g:"}
    )
    assert served == cold and served.values() == cold.values()
