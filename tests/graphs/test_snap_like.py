"""Unit tests for the SNAP stand-in dataset generator."""

import numpy as np
import pytest

from repro.core.decomposition import kmax
from repro.errors import DatasetError
from repro.graphs.components import connected_components
from repro.graphs.generators.snap_like import (
    SNAP_LIKE_SPECS,
    snap_like_graph,
    snap_like_topology,
)
from repro.graphs.validation import validate_graph


def test_all_seven_table3_datasets_present():
    assert set(SNAP_LIKE_SPECS) == {
        "domainpub", "email", "dblp", "youtube", "orkut", "livejournal", "friendster",
    }


def test_specs_record_paper_statistics():
    email = SNAP_LIKE_SPECS["email"]
    assert email.paper_n == 36_692
    assert email.paper_m == 183_831
    assert email.paper_kmax == 43
    friendster = SNAP_LIKE_SPECS["friendster"]
    assert friendster.paper_n == 65_608_366


def test_relative_scale_ordering_preserved():
    sizes = {name: spec.n for name, spec in SNAP_LIKE_SPECS.items()}
    assert sizes["friendster"] == max(sizes.values())
    assert sizes["domainpub"] == min(sizes.values())


def test_topology_is_valid_connected_and_deterministic():
    spec = SNAP_LIKE_SPECS["domainpub"]
    a = snap_like_topology(spec)
    b = snap_like_topology(spec)
    validate_graph(a)
    assert sorted(a.edges()) == sorted(b.edges())
    assert len(connected_components(a)) == 1


def test_nontrivial_kcore_structure():
    graph = snap_like_topology(SNAP_LIKE_SPECS["domainpub"])
    # Every experiment sweeps k in k_sweep; kmax must comfortably exceed it.
    assert kmax(graph) >= max(SNAP_LIKE_SPECS["domainpub"].k_sweep)


def test_weighted_graph_uses_pagerank():
    graph = snap_like_graph("domainpub")
    weights = graph.weights
    assert np.all(weights > 0)
    assert weights.sum() == pytest.approx(1.0, abs=1e-6)


def test_unweighted_request():
    graph = snap_like_graph("domainpub", weighted=False)
    assert graph.total_weight == 0.0


def test_unknown_dataset_rejected():
    with pytest.raises(DatasetError):
        snap_like_graph("does-not-exist")


def test_power_law_ish_degree_distribution():
    graph = snap_like_topology(SNAP_LIKE_SPECS["dblp"])
    degrees = graph.degrees()
    # Heavy tail: the max degree dwarfs the median, as in the SNAP originals.
    assert degrees.max() >= 5 * np.median(degrees)
