"""Unit tests for the random graph generators."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.generators.random_graphs import (
    barabasi_albert,
    chung_lu,
    gnm_random_graph,
    gnp_random_graph,
    powerlaw_configuration_model,
    powerlaw_degree_sequence,
)
from repro.graphs.validation import validate_graph


def test_gnp_determinism_and_validity():
    a = gnp_random_graph(50, 0.1, seed=1)
    b = gnp_random_graph(50, 0.1, seed=1)
    assert sorted(a.edges()) == sorted(b.edges())
    validate_graph(a)


def test_gnp_extremes():
    assert gnp_random_graph(10, 0.0, seed=1).m == 0
    assert gnp_random_graph(6, 1.0, seed=1).m == 15  # complete graph


def test_gnp_probability_validated():
    with pytest.raises(GraphError):
        gnp_random_graph(5, 1.5, seed=1)


def test_gnm_exact_edge_count():
    graph = gnm_random_graph(20, 37, seed=2)
    assert graph.m == 37
    validate_graph(graph)


def test_gnm_too_many_edges_rejected():
    with pytest.raises(GraphError):
        gnm_random_graph(4, 7, seed=1)


def test_barabasi_albert_edge_budget():
    graph = barabasi_albert(100, 3, seed=3)
    # star on m+1 vertices (m edges) + m edges per arrival
    assert graph.m <= 3 + 97 * 3
    assert graph.m >= 90 * 3
    validate_graph(graph)
    # Preferential attachment should concentrate degree.
    assert graph.max_degree >= 10


def test_barabasi_albert_parameter_validation():
    with pytest.raises(GraphError):
        barabasi_albert(3, 3, seed=1)
    with pytest.raises(GraphError):
        barabasi_albert(10, 0, seed=1)


def test_powerlaw_degree_sequence_properties():
    degrees = powerlaw_degree_sequence(2000, gamma=2.5, d_min=2, seed=4)
    assert degrees.sum() % 2 == 0
    assert degrees.min() >= 2
    assert degrees.max() <= max(2, int(round(np.sqrt(2000)))) + 1
    # Heavier tail than uniform: the mean should be well below the max.
    assert degrees.mean() < degrees.max() / 2


def test_powerlaw_degree_sequence_validation():
    with pytest.raises(GraphError):
        powerlaw_degree_sequence(10, gamma=0.5)
    with pytest.raises(GraphError):
        powerlaw_degree_sequence(10, gamma=2.5, d_min=0)
    with pytest.raises(GraphError):
        powerlaw_degree_sequence(10, gamma=2.5, d_min=5, d_max=3)


def test_configuration_model_respects_sequence_loosely():
    graph = powerlaw_configuration_model(500, gamma=2.3, d_min=2, seed=5)
    validate_graph(graph)
    # Erasure loses a few edges but the bulk survives.
    drawn = powerlaw_degree_sequence(500, gamma=2.3, d_min=2, seed=5)
    assert graph.m >= 0.8 * (drawn.sum() / 2)


def test_chung_lu_expected_degrees():
    n = 400
    expected = np.full(n, 6.0)
    graph = chung_lu(n, expected, seed=6)
    validate_graph(graph)
    assert abs(graph.avg_degree - 6.0) < 1.5


def test_chung_lu_validation():
    with pytest.raises(GraphError):
        chung_lu(3, np.array([1.0, 2.0]), seed=1)
    with pytest.raises(GraphError):
        chung_lu(2, np.array([-1.0, 2.0]), seed=1)


def test_chung_lu_zero_weights_empty():
    graph = chung_lu(5, np.zeros(5), seed=1)
    assert graph.m == 0
