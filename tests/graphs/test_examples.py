"""Unit tests for the hand-built example graphs."""

from repro.graphs.generators.examples import (
    FIGURE1_WEIGHTS,
    paper_vertex_set,
    tiny_kcore_graph,
)
from repro.graphs.validation import validate_graph


def test_figure1_shape(figure1):
    validate_graph(figure1)
    assert figure1.n == 11
    assert figure1.total_weight == 203.0  # as stated in Example 1
    assert figure1.label_of(0) == "v1"
    assert figure1.label_of(10) == "v11"


def test_figure1_weight_multiset(figure1):
    # The paper's printed weight values, one per vertex.
    assert sorted(figure1.weights.tolist()) == sorted(FIGURE1_WEIGHTS.values())


def test_figure1_is_2core(figure1):
    # The full graph is a connected 2-core (needed for Example 1's top-1).
    assert all(figure1.degree(v) >= 2 for v in figure1.vertices())


def test_paper_vertex_set_parsing():
    assert paper_vertex_set(["v1", "v11"]) == frozenset({0, 10})
    assert paper_vertex_set("v3 v9 v10") == frozenset({2, 8, 9})


def test_tiny_kcore_structure():
    graph = tiny_kcore_graph()
    validate_graph(graph)
    assert graph.n == 7
    assert graph.weight(6) == 7.0
    # K4 on 0..3, pendant 4, disconnected edge 5-6.
    assert graph.degree(4) == 2
    assert graph.degree(5) == 1
