"""CSR backend construction invariants, cache behaviour and primitives."""

import numpy as np
import pytest

from repro.graphs.backend import (
    get_default_backend,
    resolve_backend,
    set_default_backend,
    use_backend,
)
from repro.errors import GraphError
from repro.graphs.builder import GraphBuilder, graph_from_edges
from repro.graphs.csr import CSRAdjacency, decrement_degrees
from repro.graphs.generators.examples import figure1_graph, tiny_kcore_graph
from repro.graphs.generators.random_graphs import (
    barabasi_albert,
    chung_lu,
    gnm_random_graph,
    gnp_random_graph,
    powerlaw_configuration_model,
)
from repro.graphs.views import induced_subgraph


def generated_graphs():
    yield figure1_graph()
    yield tiny_kcore_graph()
    yield gnp_random_graph(40, 0.15, seed=1)
    yield gnp_random_graph(25, 0.0, seed=2)  # edgeless
    yield gnm_random_graph(60, 150, seed=3)
    yield barabasi_albert(80, 3, seed=4)
    yield powerlaw_configuration_model(70, 2.5, seed=5)
    yield chung_lu(50, np.full(50, 4.0), seed=6)
    yield GraphBuilder(0).build()


@pytest.mark.parametrize("graph", generated_graphs(), ids=lambda g: repr(g))
def test_csr_construction_invariants(graph):
    csr = graph.csr
    indptr, indices = csr.indptr, csr.indices
    # Shape: one run per vertex, indptr[-1] == 2m == len(indices).
    assert len(indptr) == graph.n + 1
    assert indptr[0] == 0
    assert int(indptr[-1]) == 2 * graph.m == len(indices)
    assert np.all(np.diff(indptr) >= 0)
    if graph.n:
        assert indices.size == 0 or (
            indices.min() >= 0 and indices.max() < graph.n
        )
    arcs = set()
    for v in range(graph.n):
        run = indices[indptr[v] : indptr[v + 1]]
        # Sorted, duplicate-free neighbour runs mirroring the set backend.
        assert np.all(np.diff(run) > 0)
        assert set(run.tolist()) == graph.adjacency[v]
        assert v not in run  # no self-loops
        arcs.update((v, int(u)) for u in run)
    # Symmetry: every arc has its reverse.
    assert all((u, v) in arcs for v, u in arcs)


def test_csr_matches_degrees():
    graph = gnm_random_graph(50, 120, seed=11)
    assert np.array_equal(graph.csr.degrees(), graph.degrees())
    assert int(graph.csr.degrees().max(initial=0)) == graph.max_degree


def test_csr_is_cached_and_shared():
    graph = gnp_random_graph(20, 0.2, seed=8)
    assert not graph.has_csr
    first = graph.csr
    assert graph.has_csr
    assert graph.csr is first
    # Derived graphs with the same topology share the cache.
    reweighted = graph.with_weights(np.ones(graph.n))
    assert reweighted.has_csr and reweighted.csr is first
    relabeled = graph.with_labels([f"x{v}" for v in range(graph.n)])
    assert relabeled.csr is first


def test_csr_arrays_are_read_only():
    csr = gnp_random_graph(10, 0.3, seed=9).csr
    with pytest.raises(ValueError):
        csr.indptr[0] = 1
    with pytest.raises(ValueError):
        csr.indices[0] = 1


def test_builder_warm_csr():
    cold = GraphBuilder(3).add_edge(0, 1).build()
    assert not cold.has_csr
    warm = GraphBuilder(3).add_edge(0, 1).build(warm_csr=True)
    assert warm.has_csr


def test_induced_subgraph_propagates_csr():
    graph = gnm_random_graph(40, 90, seed=12)
    graph.csr  # materialise the parent cache
    sub, mapping = induced_subgraph(graph, range(5, 30))
    assert sub.has_csr
    rebuilt = CSRAdjacency.from_adjacency(sub.adjacency)
    assert np.array_equal(sub.csr.indptr, rebuilt.indptr)
    assert np.array_equal(sub.csr.indices, rebuilt.indices)
    # Without a warm parent cache the child stays lazy.
    cold = gnm_random_graph(40, 90, seed=12)
    sub2, __ = induced_subgraph(cold, range(5, 30))
    assert not sub2.has_csr


def test_gather_concatenates_runs():
    graph = graph_from_edges([(0, 1), (0, 2), (1, 2), (2, 3)])
    csr = graph.csr
    out = csr.gather(np.asarray([0, 2]))
    assert out.tolist() == [1, 2, 0, 1, 3]
    neigh, owners, positions = csr.gather_full(np.asarray([3, 1]))
    assert neigh.tolist() == [2, 0, 2]
    assert owners.tolist() == [3, 1, 1]
    assert np.array_equal(csr.indices[positions], neigh)
    assert csr.gather(np.asarray([], dtype=np.int64)).size == 0


def test_subset_degrees_and_peel():
    graph = graph_from_edges([(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)])
    csr = graph.csr
    mask = np.asarray([True, True, True, True, False])
    deg = csr.subset_degrees(mask)
    assert deg.tolist() == [2, 2, 3, 1, 0]
    mask, deg = csr.peel_to_kcore(mask, 2)
    assert np.flatnonzero(mask).tolist() == [0, 1, 2]
    assert deg[np.flatnonzero(mask)].tolist() == [2, 2, 2]


def test_decrement_degrees_both_strategies():
    # Small frontier -> subtract.at path; large -> bincount path.  Both
    # must handle duplicates and report each touched vertex once.
    for size in (4, 64):
        degrees = np.full(size, 5, dtype=np.int64)
        neigh = np.asarray([1, 1, 2], dtype=np.int64)
        touched = decrement_degrees(degrees, neigh)
        assert touched.tolist() == [1, 2]
        assert degrees[1] == 3 and degrees[2] == 4


def test_backend_registry():
    import os

    # CI runs the suite on a {set, csr} matrix via REPRO_GRAPH_BACKEND, so
    # the ambient default is whatever the environment selected (csr when
    # unset) — the scoping mechanics must hold either way.
    ambient = os.environ.get("REPRO_GRAPH_BACKEND", "csr")
    assert get_default_backend() == ambient
    assert resolve_backend("auto") == ambient
    assert resolve_backend("set") == "set"
    with use_backend("set"):
        assert get_default_backend() == "set"
        assert resolve_backend(None) == "set"
        with use_backend("csr"):
            assert get_default_backend() == "csr"
        assert get_default_backend() == "set"
    assert get_default_backend() == ambient
    with pytest.raises(GraphError):
        resolve_backend("bogus")
    with pytest.raises(GraphError):
        set_default_backend("bogus")


def test_backend_env_override_subprocess():
    """REPRO_GRAPH_BACKEND seeds the initial default (and rejects typos)."""
    import os
    import subprocess
    import sys

    script = (
        "from repro.graphs.backend import get_default_backend; "
        "print(get_default_backend())"
    )
    for name in ("set", "csr"):
        env = {**os.environ, "REPRO_GRAPH_BACKEND": name}
        out = subprocess.run(
            [sys.executable, "-c", script], env=env,
            capture_output=True, text=True, check=True,
        )
        assert out.stdout.strip() == name
    env = {**os.environ, "REPRO_GRAPH_BACKEND": "bogus"}
    failed = subprocess.run(
        [sys.executable, "-c", script], env=env,
        capture_output=True, text=True,
    )
    assert failed.returncode != 0
    assert "REPRO_GRAPH_BACKEND" in failed.stderr


def test_index_dtype_is_int32_with_overflow_guard():
    # Every realistic graph stores neighbour ids as int32 (half the memory
    # traffic of int64 gathers); the guard keeps int64 for vertex counts
    # that int32 cannot index.
    assert CSRAdjacency._index_dtype(0) == np.int32
    assert CSRAdjacency._index_dtype(50_000) == np.int32
    assert CSRAdjacency._index_dtype(np.iinfo(np.int32).max) == np.int32
    assert CSRAdjacency._index_dtype(np.iinfo(np.int32).max + 1) == np.int64
    assert CSRAdjacency._index_dtype(1 << 40) == np.int64


def test_indices_stored_as_int32():
    graph = gnm_random_graph(200, 800, seed=9)
    csr = graph.csr
    assert csr.indices.dtype == np.int32
    # indptr stays int64: its entries are cumulative edge counts that reach
    # 2m and would overflow int32 long before indices values do.
    assert csr.indptr.dtype == np.int64
    # Primitives keep working over the narrow dtype.
    degrees = csr.degrees()
    assert int(degrees.sum()) == 2 * graph.m
    neigh = csr.gather(np.arange(graph.n))
    assert neigh.dtype == np.int32
    assert neigh.size == 2 * graph.m


def test_induced_local_relabels_and_sorts():
    graph = graph_from_edges(
        [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (2, 4), (5, 6)]
    )
    members = np.asarray([2, 3, 4, 6], dtype=np.int64)
    local = graph.csr.induced_local(members)
    assert local.n == 4
    # local ids 0,1,2 are global 2,3,4 forming a triangle; 6 is isolated.
    assert local.neighbors(0).tolist() == [1, 2]
    assert local.neighbors(1).tolist() == [0, 2]
    assert local.neighbors(2).tolist() == [0, 1]
    assert local.neighbors(3).tolist() == []
    # Tiny subset of a large graph exercises the searchsorted branch.
    big = gnm_random_graph(500, 2000, seed=3)
    sub = np.asarray([10, 11, 12, 13], dtype=np.int64)
    small_local = big.csr.induced_local(sub)
    adj = big.adjacency
    for i, v in enumerate(sub.tolist()):
        expected = sorted(
            int(np.searchsorted(sub, u)) for u in adj[v] if u in set(sub.tolist())
        )
        assert small_local.neighbors(i).tolist() == expected


def test_induced_local_empty():
    graph = graph_from_edges([(0, 1)])
    local = graph.csr.induced_local(np.asarray([], dtype=np.int64))
    assert local.n == 0 and local.m == 0


def test_components_of_mask_matches_set_split():
    graph = graph_from_edges(
        [(0, 1), (1, 2), (3, 4), (5, 6), (6, 7), (5, 7)], n=9
    )
    mask = np.ones(9, dtype=bool)
    mask[4] = False
    pieces = graph.csr.components_of_mask(mask)
    assert [p.tolist() for p in pieces] == [[0, 1, 2], [3], [5, 6, 7], [8]]
    # mask must not be consumed
    assert mask.sum() == 8
