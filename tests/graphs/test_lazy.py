"""LazyAdjacency: the per-vertex-on-demand facade over CSR arrays.

The substrate workers build their graphs with ``lazy_adjacency=True``;
these tests pin down that a lazy graph is observationally identical to
an eager one — same neighbourhoods, same edge count, same solver
answers — while only materialising the vertices actually touched.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.builder import graph_from_csr_arrays
from repro.graphs.csr import CSRAdjacency
from repro.graphs.generators.examples import figure1_graph
from repro.graphs.lazy import LazyAdjacency


def _figure1_csr():
    graph = figure1_graph()
    csr = graph.csr
    return csr.indptr, csr.indices, graph.weights, graph.labels


@pytest.fixture
def lazy_graph():
    indptr, indices, weights, labels = _figure1_csr()
    return graph_from_csr_arrays(
        indptr, indices, weights, labels=labels,
        trusted=True, lazy_adjacency=True,
    )


def test_lazy_requires_trusted():
    indptr, indices, weights, _labels = _figure1_csr()
    with pytest.raises(GraphError):
        graph_from_csr_arrays(
            indptr, indices, weights, trusted=False, lazy_adjacency=True
        )


def test_neighbourhoods_match_eager(lazy_graph, figure1):
    assert len(lazy_graph.adjacency) == figure1.n
    for v in range(figure1.n):
        assert lazy_graph.adjacency[v] == figure1.adjacency[v]


def test_counts_and_degrees(lazy_graph, figure1):
    assert lazy_graph.n == figure1.n
    assert lazy_graph.m == figure1.m
    assert lazy_graph.max_degree == figure1.max_degree


def test_materialisation_is_per_vertex(lazy_graph):
    adjacency = lazy_graph.adjacency
    assert isinstance(adjacency, LazyAdjacency)
    assert len(adjacency._sets) == 0
    _ = adjacency[3]
    assert set(adjacency._sets) == {3}
    _ = adjacency[3]  # cached — still just the one
    assert set(adjacency._sets) == {3}


def test_slice_and_negative_index(lazy_graph, figure1):
    n = figure1.n
    assert lazy_graph.adjacency[-1] == figure1.adjacency[n - 1]
    window = lazy_graph.adjacency[2:5]
    assert window == [figure1.adjacency[v] for v in range(2, 5)]


def test_iter_and_to_sets(lazy_graph, figure1):
    eager = [set(s) for s in figure1.adjacency]
    assert list(lazy_graph.adjacency) == eager
    assert lazy_graph.adjacency.to_sets() == eager


def test_empty_vertex():
    indptr = np.array([0, 0, 1, 2], dtype=np.int64)
    indices = np.array([2, 1], dtype=np.int64)
    adjacency = LazyAdjacency(indptr, indices)
    assert adjacency[0] == set()
    assert adjacency[1] == {2}
    assert adjacency.edge_count == 1


def test_solver_answers_match_eager(lazy_graph, figure1):
    from repro.influential.api import top_r_communities

    lazy_answer = top_r_communities(lazy_graph, k=2, r=2, f="sum")
    eager_answer = top_r_communities(figure1, k=2, r=2, f="sum")
    assert [sorted(c.vertices) for c in lazy_answer] == [
        sorted(c.vertices) for c in eager_answer
    ]
    assert lazy_answer.values() == eager_answer.values()


def test_lazy_survives_incremental_update(lazy_graph, figure1):
    from repro.graphs.delta import GraphDelta

    report = GraphDelta(lazy_graph).apply(insert=[(0, 7)])
    assert isinstance(report.graph.adjacency, LazyAdjacency)
    assert 7 in report.graph.adjacency[0]
    assert report.graph.m == figure1.m + 1


def test_repr_is_cheap(lazy_graph):
    text = repr(lazy_graph.adjacency)
    assert "LazyAdjacency" in text
    assert len(lazy_graph.adjacency._sets) == 0  # repr materialises nothing
