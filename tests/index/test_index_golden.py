"""Golden parity: indexed answers are byte-identical to cold solves.

The index's whole contract is that :meth:`InfluentialIndex.serve` either
returns *exactly* what ``top_r_communities`` would (same vertex sets,
same order, same float bit patterns) or returns None and lets the solver
run.  These tests pin that over the oracle menagerie for every indexed
aggregator, on both backends, across every (k, r) in range — plus the
fallback edges: boundary value ties, truncated entries, and every
eligibility gate of :meth:`InfluentialIndex.plan`.
"""

from __future__ import annotations

import pytest

from repro.errors import SpecError
from repro.graphs.builder import graph_from_edges
from repro.index import INDEXED_METHODS, InfluentialIndex
from repro.influential.api import top_r_communities
from repro.serving.oracle import small_oracle_graphs
from repro.serving.query import InfluentialQuery
from repro.serving.service import QueryService

INDEXED_AGGREGATORS = ("sum", "sum-surplus(1.5)")
UNINDEXED_AGGREGATORS = ("min", "max", "avg", "weight-density(1)")
DEPTH = 4


def _byte_identical(produced, expected):
    return produced == expected and produced.values() == expected.values()


@pytest.mark.parametrize("backend", ["set", "csr"])
@pytest.mark.parametrize("name,graph", small_oracle_graphs())
def test_indexed_answers_match_cold_solves(name, graph, backend):
    service = QueryService(graph, backend=backend, cache_size=0)
    service.enable_index(depth=DEPTH, aggregators=INDEXED_AGGREGATORS)
    for f in INDEXED_AGGREGATORS:
        for k in range(1, service.kmax + 2):  # +1 probes past kmax too
            for r in (1, 2, DEPTH, DEPTH + 3):
                served = service.submit(InfluentialQuery(k=k, r=r, f=f))
                cold = top_r_communities(
                    graph, k=k, r=r, f=f, backend=backend
                )
                assert _byte_identical(served, cold), (
                    f"{name}/{backend}: k={k} r={r} f={f}"
                )
    # The sweep must have exercised the lookup path, not just fallbacks.
    assert service.index.hits > 0
    assert service.index.stats()["levels_ready"] >= service.kmax


@pytest.mark.parametrize("name,graph", small_oracle_graphs())
def test_unindexed_aggregators_fall_through_to_solver(name, graph):
    service = QueryService(graph, cache_size=0)
    index = service.enable_index(depth=DEPTH)
    before = index.hits
    for f in UNINDEXED_AGGREGATORS:
        query = InfluentialQuery(k=2, r=2, f=f)
        assert index.plan(query) is None
        served = service.submit(query)
        cold = top_r_communities(graph, k=2, r=2, f=f)
        assert _byte_identical(served, cold)
    assert index.hits == before
    assert service.solver_calls == len(UNINDEXED_AGGREGATORS)


def test_plan_eligibility_gates(figure1):
    index = InfluentialIndex(depth=DEPTH)
    service = QueryService(figure1)
    index.build(figure1, service.engine_pool, "auto")

    assert index.plan(InfluentialQuery(k=2, r=3, f="sum")) == (2, "sum")
    # Method "improved" ignores eps (the dispatch pins eps = 0), so any
    # eps value stays indexable there — but not under auto/approx.
    assert index.plan(
        InfluentialQuery(k=2, r=3, f="sum", method="improved", eps=0.5)
    ) == (2, "sum")
    for query in (
        InfluentialQuery(k=2, r=3, f="sum", eps=0.25),
        InfluentialQuery(k=2, r=3, f="sum", method="approx", eps=0.25),
        InfluentialQuery(k=2, r=3, f="sum", s=3),
        InfluentialQuery(k=2, r=3, f="sum", non_overlapping=True),
        InfluentialQuery(k=2, r=3, f="sum", cohesion="truss"),
        InfluentialQuery(k=2, r=3, f="sum", method="naive"),
        InfluentialQuery(k=2, r=3, f="sum", method="local"),
        InfluentialQuery(k=2, r=3, f="min"),
        InfluentialQuery(k=2, r=3, f="no-such-aggregator"),
        InfluentialQuery(k=0, r=3, f="sum"),
        InfluentialQuery(k=2, r=0, f="sum"),
    ):
        assert index.plan(query) is None, query.describe()


def test_indexed_methods_all_dispatch_to_the_index(figure1):
    service = QueryService(figure1, cache_size=0)
    index = service.enable_index(depth=DEPTH)
    for method in INDEXED_METHODS:
        eps = 0.5 if method == "improved" else 0.0
        query = InfluentialQuery(k=2, r=2, f="sum", method=method, eps=eps)
        served = service.submit(query)
        cold = top_r_communities(
            figure1, k=2, r=2, f="sum", method=method, eps=eps
        )
        assert _byte_identical(served, cold)
    assert service.solver_calls == 0
    assert index.hits == len(INDEXED_METHODS)


def test_boundary_value_tie_falls_back_to_solver():
    # Two disjoint triangles with *identical* weights: the top-2 sums tie,
    # so a r=1 slice cannot know which one the solver's insertion order
    # keeps — serve() must refuse and let the solver decide.
    graph = graph_from_edges(
        [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)],
        weights=[2.0, 2.0, 2.0, 2.0, 2.0, 2.0],
    )
    service = QueryService(graph, cache_size=0)
    index = service.enable_index(depth=2)
    served = service.submit(InfluentialQuery(k=2, r=1, f="sum"))
    cold = top_r_communities(graph, k=2, r=1, f="sum")
    assert _byte_identical(served, cold)
    assert index.fallbacks >= 1
    assert service.solver_calls == 1
    # r = depth is the identical solver call — no tie to break, serveable.
    served = service.submit(InfluentialQuery(k=2, r=2, f="sum"))
    cold = top_r_communities(graph, k=2, r=2, f="sum")
    assert _byte_identical(served, cold)
    assert service.solver_calls == 1


def test_complete_entry_serves_any_r(two_triangles):
    # The k=2 family on two disjoint triangles is smaller than depth=8,
    # so the capture is complete — r far beyond the family size is
    # serveable from it (larger r can never add communities).
    service = QueryService(two_triangles, cache_size=0)
    index = service.enable_index(depth=8)
    for r in (1, 2, 5, 100):
        served = service.submit(InfluentialQuery(k=2, r=r, f="sum"))
        cold = top_r_communities(two_triangles, k=2, r=r, f="sum")
        assert _byte_identical(served, cold)
    assert service.solver_calls == 0
    assert index.level_state(2, "sum").startswith("complete")


def test_index_rejects_unindexable_aggregators():
    for bad in ("min", "max", "avg", "weight-density(1)"):
        with pytest.raises(SpecError):
            InfluentialIndex(aggregators=(bad,))
    with pytest.raises(SpecError):
        InfluentialIndex(aggregators=())


def test_depth_must_be_positive():
    with pytest.raises(SpecError):
        InfluentialIndex(depth=0)
