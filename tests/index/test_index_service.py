"""Index lifecycle through the serving stack.

Covers what the golden suite doesn't: the :class:`QueryService`
integration (counters, cache interplay, worker payloads), snapshot
persistence, and incremental maintenance — edge updates retaining
every level above the locality bound, weight updates going through the
lazy value-only refresh, ``replace_graph`` resetting everything.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.builder import graph_from_edges
from repro.graphs.generators.examples import barbell_graph
from repro.index import InfluentialIndex
from repro.influential.api import top_r_communities
from repro.serving.query import InfluentialQuery
from repro.serving.service import QueryService
from repro.serving.store import load_service, load_snapshot, save_snapshot


def _byte_identical(produced, expected):
    return produced == expected and produced.values() == expected.values()


@pytest.fixture
def weighted_random():
    from tests.conftest import random_weighted_graph

    return random_weighted_graph(40, 0.25, seed=11)


def test_enable_index_builds_every_level(weighted_random):
    service = QueryService(weighted_random)
    index = service.enable_index(depth=4)
    assert service.index is index
    assert index.built
    assert len(index) == service.kmax
    assert index.pending_levels() == 0
    stats = index.stats()
    assert stats["levels_ready"] == service.kmax
    assert stats["builds"] == service.kmax


def test_indexed_hits_bypass_the_solver_and_count(weighted_random):
    service = QueryService(weighted_random, cache_size=0)
    index = service.enable_index(depth=4)
    query = InfluentialQuery(k=2, r=2, f="sum")
    served = service.submit(query)
    assert service.solver_calls == 0
    assert service.queries_served == 1
    assert index.hits == 1
    cold = top_r_communities(weighted_random, k=2, r=2, f="sum")
    assert _byte_identical(served, cold)


def test_result_cache_still_fronts_the_index(weighted_random):
    service = QueryService(weighted_random, cache_size=8)
    index = service.enable_index(depth=4)
    query = InfluentialQuery(k=2, r=2, f="sum")
    service.submit(query)
    service.submit(query)
    # First submit hits the index (via _solve), second the result cache.
    assert index.hits == 1
    assert service.queries_served == 2
    assert service.stats()["result_cache"]["hits"] == 1


def test_stats_exposes_the_index_section(weighted_random):
    service = QueryService(weighted_random)
    assert service.stats()["index"] is None
    service.enable_index(depth=2)
    section = service.stats()["index"]
    assert section["built"] is True
    assert section["depth"] == 2


def test_submit_many_answers_indexed_queries_without_workers(weighted_random):
    service = QueryService(weighted_random, cache_size=0)
    service.enable_index(depth=4)
    batch = [
        InfluentialQuery(k=k, r=r, f="sum")
        for k in range(1, service.kmax + 1)
        for r in (1, 4)
    ]
    results = service.submit_many(batch, workers=2)
    assert service.solver_calls == 0
    assert service.queries_served == len(batch)
    for query, served in zip(batch, results):
        cold = top_r_communities(
            weighted_random, **query.solver_kwargs()
        )
        assert _byte_identical(served, cold)


def test_worker_payload_ships_the_index(weighted_random):
    service = QueryService(weighted_random)
    service.enable_index(depth=4)
    payload = service._worker_payload()
    assert payload["index"] is not None
    restored = InfluentialIndex.from_payload(payload["index"])
    assert restored.built
    assert len(restored) == len(service.index)
    assert restored.aggregators == service.index.aggregators


def test_snapshot_roundtrip_restores_the_index(tmp_path, weighted_random):
    service = QueryService(weighted_random)
    service.enable_index(depth=4, aggregators=("sum", "sum-surplus(1.5)"))
    query = InfluentialQuery(k=2, r=3, f="sum-surplus(1.5)")
    expected = service.submit(query)

    path = tmp_path / "snap"
    save_snapshot(service, path)
    snapshot = load_snapshot(path)
    assert snapshot.index_payload is not None

    restored = load_service(path, cache_size=0)
    assert restored.index is not None and restored.index.built
    assert restored.index.depth == 4
    again = restored.submit(query)
    assert _byte_identical(again, expected)
    # Served straight off the persisted arrays: nothing was re-captured.
    assert restored.index.stats()["builds"] == 0
    assert restored.solver_calls == 0


def test_snapshot_roundtrip_preserves_pending_levels(tmp_path, weighted_random):
    service = QueryService(weighted_random)
    index = service.enable_index(depth=4)
    rng = np.random.default_rng(5)
    service.update_weights(rng.uniform(0.5, 9.0, weighted_random.n))
    assert index.pending_levels() == len(index)

    path = tmp_path / "snap"
    save_snapshot(service, path)
    restored = load_service(path)
    assert restored.index.pending_levels() == len(restored.index)
    # A pending level re-captures on first touch and matches cold.
    query = InfluentialQuery(k=2, r=2, f="sum")
    served = restored.submit(query)
    cold = top_r_communities(restored.graph, k=2, r=2, f="sum")
    assert _byte_identical(served, cold)


def test_snapshot_without_index_loads_indexless(tmp_path, weighted_random):
    service = QueryService(weighted_random)
    path = tmp_path / "snap"
    save_snapshot(service, path)
    assert load_snapshot(path).index_payload is None
    assert load_service(path).index is None


def test_edge_update_retains_levels_above_the_bound():
    # A barbell: two K6 cliques joined by a long path.  Inserting a path
    # chord only disturbs low cores — the cliques' k=5 core is untouched,
    # so every high level must survive verbatim (no re-capture).
    graph = barbell_graph(clique=6, path=6)
    service = QueryService(graph, cache_size=0)
    index = service.enable_index(depth=4)
    high_query = InfluentialQuery(k=5, r=2, f="sum")
    expected = service.submit(high_query)
    builds_before = index.builds

    path_vertices = [v for v in range(graph.n) if graph.degrees()[v] <= 2]
    u, v = path_vertices[0], path_vertices[-1]
    report = service.update_edges(insert=[(min(u, v), max(u, v))])
    bound = report.delta.max_affected_core
    assert bound < 5

    assert index.pending_levels() == sum(
        1 for k in range(1, service.kmax + 1) if k <= bound
    )
    assert index.level_state(5, "sum") != "pending"
    again = service.submit(high_query)
    assert _byte_identical(again, expected)
    assert index.builds == builds_before  # retained, not re-captured
    assert service.solver_calls == 0

    # Invalidated low levels lazily re-capture and match cold solves.
    low = InfluentialQuery(k=1, r=4, f="sum")
    served = service.submit(low)
    cold = top_r_communities(service.graph, k=1, r=4, f="sum")
    assert _byte_identical(served, cold)
    assert index.builds == builds_before + 1


def test_edge_update_covers_grown_kmax(two_triangles):
    service = QueryService(two_triangles, cache_size=0)
    index = service.enable_index(depth=4)
    kmax_before = service.kmax
    # Densify one triangle into K4: kmax grows by one; the new level must
    # be registered (pending) and serveable.
    service.update_edges(insert=[(0, 3), (1, 3), (2, 3)])
    assert service.kmax == kmax_before + 1
    assert (service.kmax, "sum") in [
        (k, f) for (k, f) in index._entries  # noqa: SLF001 — coverage probe
    ]
    query = InfluentialQuery(k=service.kmax, r=2, f="sum")
    served = service.submit(query)
    cold = top_r_communities(
        service.graph, k=service.kmax, r=2, f="sum"
    )
    assert _byte_identical(served, cold)


def test_weight_update_is_a_value_only_refresh(weighted_random):
    # Pinned to csr: the pool-reuse counters below are about the CSR
    # engine's shared structures (the set backend never builds any).
    service = QueryService(weighted_random, backend="csr", cache_size=0)
    index = service.enable_index(depth=4)
    pool_misses_before = service.engine_pool.structure_misses
    rng = np.random.default_rng(9)
    new_weights = np.round(rng.uniform(0.5, 9.0, weighted_random.n), 3)
    service.update_weights(new_weights)
    assert index.pending_levels() == len(index)
    assert index.stats()["weight_refreshes"] == len(index)

    query = InfluentialQuery(k=2, r=2, f="sum")
    served = service.submit(query)
    cold = top_r_communities(service.graph, k=2, r=2, f="sum")
    assert _byte_identical(served, cold)
    # The re-capture replays over the pool's reweighted-in-place seed
    # structures: no new peel/relabel of the seeds themselves.
    assert service.engine_pool.structure_hits > 0
    assert service.core_numbers is not None
    assert pool_misses_before <= service.engine_pool.structure_misses


def test_replace_graph_resets_the_index(weighted_random, two_triangles):
    service = QueryService(weighted_random, cache_size=0)
    index = service.enable_index(depth=4)
    service.replace_graph(two_triangles)
    assert index.pending_levels() == len(index)
    query = InfluentialQuery(k=2, r=2, f="sum")
    served = service.submit(query)
    cold = top_r_communities(two_triangles, k=2, r=2, f="sum")
    assert _byte_identical(served, cold)


def test_indexed_service_over_http(weighted_random):
    from tests.serving.test_http import get, post

    from repro.serving.http import ServingApp, run_server_in_thread

    service = QueryService(weighted_random, cache_size=0)
    service.enable_index(depth=4)
    app = ServingApp(service)
    with run_server_in_thread(app) as base_url:
        status, payload = post(
            base_url, "/query", {"k": 2, "r": 2, "f": "sum"}
        )
        assert status == 200
        cold = top_r_communities(weighted_random, k=2, r=2, f="sum")
        assert payload["values"] == cold.values()
        status, stats = get(base_url, "/stats")
        assert status == 200
        assert stats["index"]["hits"] == 1
        assert stats["solver_calls"] == 0


def test_core_level_sizes_matches_decomposition(weighted_random):
    service = QueryService(weighted_random)
    sizes = service.engine_pool.core_level_sizes()
    cores = service.core_numbers
    assert sizes[0] == weighted_random.n
    for k in range(service.kmax + 1):
        assert sizes[k] == int((cores >= k).sum())
    assert all(int(a) >= int(b) for a, b in zip(sizes, sizes[1:]))


def test_level_state_rendering(two_triangles):
    service = QueryService(two_triangles)
    index = service.enable_index(depth=2)
    assert index.level_state(1, "sum").startswith(("partial", "complete"))
    assert index.level_state(99, "sum") == "absent"
    service.update_weights(np.arange(1.0, two_triangles.n + 1.0))
    assert index.level_state(1, "sum") == "pending"


def test_payload_roundtrip_is_lossless(weighted_random):
    service = QueryService(weighted_random)
    index = service.enable_index(depth=3)
    payload = index.to_payload()
    restored = InfluentialIndex.from_payload(payload)
    assert restored.depth == index.depth
    assert restored.aggregators == index.aggregators
    for key, entry in index._entries.items():  # noqa: SLF001 — exact compare
        other = restored._entries[key]  # noqa: SLF001
        if entry is None:
            assert other is None
            continue
        assert other.complete == entry.complete
        assert other.values == entry.values
        assert [c.vertices for c in other.communities] == [
            c.vertices for c in entry.communities
        ]


def test_empty_graph_index(empty_graph):
    service = QueryService(empty_graph)
    index = service.enable_index(depth=2)
    assert index.built
    assert len(index) == 0
    assert index.to_payload()["entries"] == []
    restored = InfluentialIndex.from_payload(index.to_payload())
    assert restored.built and len(restored) == 0
