"""The versioned v1 HTTP contract: envelopes, errors, deprecation, analytics.

Everything the API redesign promises, over real loopback HTTP:

* ``POST /v1/query`` takes the nested envelope (tuning under
  ``options``, labels under ``constraints``), answers with
  ``api_version`` plus a normalized query echo that round-trips as a
  valid request body;
* constrained answers equal cold constrained solves, and v1 and legacy
  routes share one cache (one solve serves both generations);
* every error — any endpoint, any generation — is
  ``{"error": {"code", "detail"}}``;
* legacy routes carry ``Deprecation``/``Link`` successor headers;
* the analytics endpoints reproduce the pure functions in
  :mod:`repro.analytics` exactly.
"""

from __future__ import annotations

import http.client
import json

import pytest

from repro.analytics import community_leaders, community_summary, khop_reach
from repro.influential.api import top_r_communities
from repro.serving.http import API_VERSION, ServingApp, run_server_in_thread
from repro.serving.query import InfluentialQuery
from repro.serving.service import QueryService


def _request(base_url: str, method: str, path: str, payload=None):
    """(status, headers, parsed body) over one fresh connection."""
    host = base_url.removeprefix("http://")
    connection = http.client.HTTPConnection(host, timeout=60)
    try:
        body = None if payload is None else json.dumps(payload)
        connection.request(method, path, body=body)
        response = connection.getresponse()
        headers = dict(response.getheaders())
        return response.status, headers, json.loads(response.read())
    finally:
        connection.close()


def get(base_url, path):
    return _request(base_url, "GET", path)


def post(base_url, path, payload):
    return _request(base_url, "POST", path, payload)


@pytest.fixture
def served(figure1):
    """A served labeled figure-1 graph: (graph, service, app, base_url)."""
    graph = figure1.with_labels(
        ["g:db" if v % 2 == 0 else "g:ml" for v in range(figure1.n)]
    )
    service = QueryService(graph)
    app = ServingApp(service)
    with run_server_in_thread(app) as base_url:
        yield graph, service, app, base_url


V1_BODY = {
    "k": 2,
    "r": 2,
    "f": "sum",
    "constraints": {"labels": {"prefix": "g:"}},
    "options": {"method": "improved", "backend": "csr"},
}


# ----------------------------------------------------------------------
# The v1 query envelope
# ----------------------------------------------------------------------
def test_v1_constrained_query_matches_cold_solve(served):
    graph, __, ___, base_url = served
    status, headers, payload = post(base_url, "/v1/query", V1_BODY)
    assert status == 200, payload
    assert payload["api_version"] == API_VERSION
    assert "Deprecation" not in headers
    cold = top_r_communities(
        graph, k=2, r=2, f="sum", method="improved", backend="csr",
        labels={"prefix": "g:"},
    )
    assert payload["count"] == len(cold)
    assert payload["values"] == list(cold.values())
    assert payload["communities"] == [sorted(c.vertices) for c in cold]


def test_v1_echo_round_trips_as_a_request(served):
    __, ___, ____, base_url = served
    status, __h, first = post(base_url, "/v1/query", V1_BODY)
    assert status == 200
    echo = first["query"]
    assert echo["constraints"] == {"labels": {"prefix": "g:"}}
    assert echo["options"]["method"] == "improved"
    status, __h, second = post(base_url, "/v1/query", echo)
    assert status == 200
    assert second == first  # the echo is canonical: idempotent resubmission


def test_v1_and_legacy_share_one_cache(served):
    __, service, ___, base_url = served
    before = service.stats()["solver_calls"]
    status, __h, v1 = post(
        base_url, "/v1/query", {"k": 2, "r": 2, "f": "sum", "options": {}}
    )
    assert status == 200
    status, __h, legacy = post(base_url, "/query", {"k": 2, "r": 2, "f": "sum"})
    assert status == 200
    assert service.stats()["solver_calls"] == before + 1  # second hit was cached
    assert v1["values"] == legacy["values"]


def test_v1_rejects_misplaced_tuning_field(served):
    __, ___, ____, base_url = served
    status, __h, payload = post(
        base_url, "/v1/query", {"k": 2, "r": 2, "method": "improved"}
    )
    assert status == 400
    assert payload["error"]["code"] == "bad_request"
    assert "options" in payload["error"]["detail"]


def test_v1_rejects_unknown_fields(served):
    __, ___, ____, base_url = served
    for body in (
        {"k": 2, "r": 2, "shape": "round"},
        {"k": 2, "r": 2, "options": {"volume": 11}},
        {"k": 2, "r": 2, "options": []},
    ):
        status, __h, payload = post(base_url, "/v1/query", body)
        assert status == 400, body
        assert payload["error"]["code"] == "bad_request"


def test_v1_batch_wrapper_and_bare_array(served):
    __, ___, ____, base_url = served
    for body in ([{"k": 2, "r": 1}], {"queries": [{"k": 2, "r": 1}]}):
        status, __h, payload = post(base_url, "/v1/batch", body)
        assert status == 200
        assert payload["api_version"] == API_VERSION
        assert payload["count"] == 1


def test_v1_healthz_and_stats_carry_api_version(served):
    __, ___, ____, base_url = served
    for path in ("/v1/healthz", "/v1/stats"):
        status, __h, payload = get(base_url, path)
        assert status == 200
        assert payload["api_version"] == API_VERSION


# ----------------------------------------------------------------------
# Error envelope + deprecation headers
# ----------------------------------------------------------------------
def test_error_envelope_codes(served):
    __, ___, ____, base_url = served
    status, __h, payload = post(base_url, "/v1/query", {"k": "two", "r": 1})
    assert status == 400 and payload["error"]["code"] == "spec_error"
    status, __h, payload = post(
        base_url, "/v1/query", {"k": 2, "r": 1, "f": "bogus"}
    )
    assert status == 400 and payload["error"]["code"] == "aggregator_error"
    status, __h, payload = get(base_url, "/v1/nope")
    assert status == 404 and payload["error"]["code"] == "not_found"
    assert "endpoints" in payload
    status, __h, payload = get(base_url, "/v1/query")  # POST-only route
    assert status == 405 and payload["error"]["code"] == "method_not_allowed"


def test_constrained_query_on_unlabeled_graph_is_spec_error():
    from repro.graphs.builder import graph_from_edges

    unlabeled = graph_from_edges(
        [(0, 1), (1, 2), (0, 2), (2, 3)], weights=[1.0, 2.0, 3.0, 4.0], n=4
    )
    assert unlabeled.labels is None
    app = ServingApp(QueryService(unlabeled))
    with run_server_in_thread(app) as base_url:
        status, __h, payload = post(base_url, "/v1/query", V1_BODY)
    assert status == 400
    assert payload["error"]["code"] == "spec_error"
    assert "labels" in payload["error"]["detail"]


def test_legacy_routes_announce_deprecation(served):
    __, ___, ____, base_url = served
    status, headers, payload = post(base_url, "/query", {"k": 2, "r": 1})
    assert status == 200
    assert headers["Deprecation"] == "true"
    assert headers["Link"] == '</v1/query>; rel="successor-version"'
    # Errors on legacy routes carry the headers too.
    status, headers, payload = post(base_url, "/query", {"k": "x", "r": 1})
    assert status == 400 and headers["Deprecation"] == "true"
    assert payload["error"]["code"] == "spec_error"


def test_banner_lists_both_generations(served):
    __, ___, ____, base_url = served
    status, __h, payload = get(base_url, "/")
    assert status == 200
    assert payload["api_version"] == API_VERSION
    assert payload["deprecated"]["/query"] == "/v1/query"
    assert any("/v1/" in endpoint for endpoint in payload["endpoints"])


# ----------------------------------------------------------------------
# Analytics endpoints == the pure functions
# ----------------------------------------------------------------------
def _cold_result(graph):
    query = InfluentialQuery.create(
        {"k": 2, "r": 2, "f": "sum", "constraints": {"labels": {"prefix": "g:"}}}
    )
    return query, top_r_communities(graph, **query.solver_kwargs())


def test_analytics_leaders_endpoint(served):
    graph, __, ___, base_url = served
    query, result = _cold_result(graph)
    status, __h, payload = post(
        base_url,
        "/v1/analytics/leaders",
        {"query": V1_BODY, "deputies": 2},
    )
    assert status == 200
    assert payload["api_version"] == API_VERSION
    assert payload["count"] == len(result)
    assert payload["leaders"] == community_leaders(graph, result, 2)


def test_analytics_reach_endpoint(served):
    graph, __, ___, base_url = served
    __q, result = _cold_result(graph)
    status, __h, payload = post(
        base_url, "/v1/analytics/reach", {"query": V1_BODY, "hops": 3}
    )
    assert status == 200
    assert payload["hops"] == 3
    assert payload["reach"] == khop_reach(graph, result, 3)


def test_analytics_summary_endpoint(served):
    graph, __, ___, base_url = served
    __q, result = _cold_result(graph)
    status, __h, payload = post(
        base_url, "/v1/analytics/summary", {"query": V1_BODY}
    )
    assert status == 200
    assert payload["summary"] == community_summary(graph, result)


def test_analytics_reuses_the_query_cache(served):
    __, service, ___, base_url = served
    status, __h, ____ = post(base_url, "/v1/query", V1_BODY)
    assert status == 200
    before = service.stats()["solver_calls"]
    status, __h, ____ = post(
        base_url, "/v1/analytics/leaders", {"query": V1_BODY}
    )
    assert status == 200
    assert service.stats()["solver_calls"] == before  # warm pool, no re-solve


def test_analytics_input_validation(served):
    __, ___, ____, base_url = served
    cases = [
        ("/v1/analytics/leaders", {"query": V1_BODY, "deputies": -1}),
        ("/v1/analytics/leaders", {"query": V1_BODY, "hops": 2}),
        ("/v1/analytics/reach", {"query": V1_BODY, "hops": 0}),
        ("/v1/analytics/summary", {"k": 2, "r": 1}),
        ("/v1/analytics/summary", {"query": "nope"}),
    ]
    for path, body in cases:
        status, __h, payload = post(base_url, path, body)
        assert status == 400, (path, body, payload)
        assert payload["error"]["code"] == "bad_request"
