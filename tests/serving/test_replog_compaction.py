"""Replication-log compaction: atomic prefix truncation + reattachment.

``ReplicationLog.compact`` may only drop records a snapshot already made
durable, must never regress the head seq, and must be invisible to every
reader and writer sharing the file — cursors restart from the rewritten
log via inode identity, appenders retry, and a standby attaching from
the stamping snapshot converges exactly as if nothing had been dropped.
"""

from __future__ import annotations

import asyncio
import json
import time

import pytest

from repro.serving.fleet import SnapshotRefresher, attach_replication
from repro.serving.http import ServingApp
from repro.serving.replog import LogCursor, ReplicationLog, head_seq
from repro.serving.service import QueryService

QUERY = {"k": 2, "r": 2, "f": "sum"}


@pytest.fixture
def log_path(tmp_path):
    return tmp_path / "repl.log"


def _fill(log, count, start=0):
    for i in range(count):
        log.append("update-edges", {"insert": [[start + i, start + i + 1]]})


# ----------------------------------------------------------------------
# Core truncation semantics
# ----------------------------------------------------------------------
def test_compact_drops_absorbed_prefix(log_path):
    log = ReplicationLog(log_path)
    _fill(log, 5)
    assert log.compact(3) == 3
    cursor = LogCursor(log_path)
    assert [r.seq for r in cursor.poll()] == [4, 5]
    assert head_seq(log_path) == 5


def test_compact_is_a_noop_below_the_retained_suffix(log_path):
    log = ReplicationLog(log_path)
    _fill(log, 4)
    assert log.compact(2) == 2
    size = log_path.stat().st_size
    assert log.compact(2) == 0  # already gone
    assert log.compact(0) == 0
    assert log.compact(-1) == 0
    assert log_path.stat().st_size == size


def test_compact_missing_or_empty_log(tmp_path):
    log = ReplicationLog(tmp_path / "absent.log")
    assert log.compact(10) == 0  # file never created
    log_path = tmp_path / "empty.log"
    log_path.write_bytes(b"")
    assert ReplicationLog(log_path).compact(10) == 0


def test_newest_record_survives_full_absorption(log_path):
    """Compacting past the head must keep the last complete record: the
    next append's seq is assigned from the retained head, and a regressed
    head would hand out duplicate seqs every cursor then discards."""
    log = ReplicationLog(log_path)
    _fill(log, 3)
    assert log.compact(99) == 2  # drops 1-2, record 3 anchors the seq
    assert [r.seq for r in LogCursor(log_path).poll()] == [3]
    record = log.append("update-edges", {"insert": [[7, 8]]})
    assert record.seq == 4
    assert head_seq(log_path) == 4


def test_seq_continuity_for_a_fresh_appender_after_compact(log_path):
    """An appender constructed *after* compaction (e.g. a restarted
    member) still lands strictly past the historical head."""
    log = ReplicationLog(log_path)
    _fill(log, 5)
    log.compact(4)
    fresh = ReplicationLog(log_path)
    assert fresh.append("update-edges", {"insert": [[9, 10]]}).seq == 6


def test_torn_tail_survives_compaction(log_path):
    log = ReplicationLog(log_path)
    _fill(log, 3)
    torn = b'{"seq": 4, "op": "update-edges", "payl'
    with open(log_path, "ab") as handle:
        handle.write(torn)
    assert log.compact(2) == 2
    assert log_path.read_bytes().endswith(torn)
    # The crashed writer's line is still repaired by the next append.
    record = ReplicationLog(log_path).append(
        "update-edges", {"insert": [[5, 6]]}
    )
    assert record.seq == 4
    assert [r.seq for r in LogCursor(log_path).poll()] == [3, 4]


def test_malformed_prefix_lines_fall_with_the_prefix(log_path):
    log = ReplicationLog(log_path)
    _fill(log, 2)
    with open(log_path, "ab") as handle:
        handle.write(b"not json at all\n")
    _fill(log, 2, start=10)  # seqs 3, 4
    assert log.compact(3) == 3  # the garbage line is not a "record"
    lines = log_path.read_bytes().splitlines()
    assert [json.loads(line)["seq"] for line in lines] == [4]


def test_compact_never_drops_unparseable_suffix_order(log_path):
    """Only a *prefix* may go: a young or unabsorbed record fences every
    record behind it, even absorbed ones (order is preserved)."""
    log = ReplicationLog(log_path)
    _fill(log, 3)
    # Hand-craft an out-of-order stale record *after* seq 3; a real log
    # never interleaves like this, but compaction must stay prefix-only.
    stale = {"seq": 1, "epoch": 1, "op": "update-edges",
             "payload": {}, "ts": 0.0}
    with open(log_path, "ab") as handle:
        handle.write((json.dumps(stale) + "\n").encode())
    _fill(log, 1, start=20)  # seq 4
    # The stale duplicate is itself <= upto_seq, so it falls with the
    # prefix (4 records dropped), leaving exactly the unabsorbed suffix.
    assert log.compact(3) == 4
    lines = [json.loads(x) for x in log_path.read_bytes().splitlines()]
    assert [doc["seq"] for doc in lines] == [4]


def test_min_age_exempts_young_records(log_path):
    log = ReplicationLog(log_path)
    _fill(log, 4)
    # Every record was appended milliseconds ago: a min_age margin keeps
    # all of them for running members mid-poll.
    assert log.compact(3, min_age=60.0) == 0
    assert log.compact(3, min_age=0.0) == 3


def test_min_age_drops_old_keeps_young(log_path):
    log = ReplicationLog(log_path)
    _fill(log, 2)
    # Age the first two records on disk (rewrite their ts field).
    lines = log_path.read_bytes().splitlines()
    aged = []
    for line in lines:
        doc = json.loads(line)
        doc["ts"] = time.time() - 120.0
        aged.append(json.dumps(doc, separators=(",", ":")).encode() + b"\n")
    log_path.write_bytes(b"".join(aged))
    _fill(log, 2, start=10)  # seqs 3, 4 — fresh timestamps
    assert log.compact(4, min_age=60.0) == 2  # old pair gone, young fence
    cursor = LogCursor(log_path)
    assert [r.seq for r in cursor.poll()] == [3, 4]


# ----------------------------------------------------------------------
# Readers and writers racing a compaction
# ----------------------------------------------------------------------
def test_cursor_survives_compaction_without_loss_or_duplicates(log_path):
    log = ReplicationLog(log_path)
    _fill(log, 3)
    cursor = LogCursor(log_path)
    assert [r.seq for r in cursor.poll()] == [1, 2, 3]
    log.compact(2)
    _fill(log, 3, start=10)  # seqs 4-6: the new file is *larger* than
    # the cursor's stale offset was, so only inode identity (not a size
    # check) can reveal the rewrite.
    assert [r.seq for r in cursor.poll()] == [4, 5, 6]
    assert [r.seq for r in cursor.poll()] == []


def test_cursor_attaching_between_compactions(log_path):
    log = ReplicationLog(log_path)
    _fill(log, 4)
    log.compact(2)
    cursor = LogCursor(log_path, start_seq=2)  # snapshot stamped seq 2
    assert [r.seq for r in cursor.poll()] == [3, 4]
    log.compact(4)  # second compaction while the cursor is attached
    _fill(log, 1, start=30)  # seq 5
    assert [r.seq for r in cursor.poll()] == [5]


def test_appender_detects_rotation_under_its_lock(log_path):
    """An appender that opened the pre-compaction inode must reopen: a
    write to the renamed-away file would be durable nowhere."""
    log = ReplicationLog(log_path)
    _fill(log, 3)
    with open(log_path, "ab") as stale_handle:
        # Compact while another appender holds an open handle to the old
        # inode (the lock is free between appends, so this interleaving
        # is exactly what two processes produce).
        log.compact(2)
        assert log._rotated(stale_handle)
    record = ReplicationLog(log_path).append(
        "update-edges", {"insert": [[8, 9]]}
    )
    assert record.seq == 4
    assert [r.seq for r in LogCursor(log_path).poll()] == [3, 4]


# ----------------------------------------------------------------------
# Refresher wiring + standby convergence
# ----------------------------------------------------------------------
def test_refresher_compacts_after_successful_refresh(figure1, tmp_path):
    log_path = tmp_path / "repl.log"
    app = ServingApp(QueryService(figure1))
    try:
        replicator = attach_replication(
            app,
            log_path,
            snapshot_path=tmp_path / "snap",
            refresh_every=2,
        )
        assert replicator.refresher is not None
        assert replicator.refresher.log is replicator.log
        replicator.refresher.compact_min_age = 0.0  # deterministic here

        async def _mutate():
            await replicator.publish("update-edges", {"insert": [[0, 7]]})
            await replicator.publish(
                "update-weights", {"weights": [2.0] * figure1.n}
            )

        asyncio.run(_mutate())
        refresher = replicator.refresher
        assert refresher.refreshes == 1
        assert refresher.last_seq == 2
        # Both absorbed records dropped except the head anchor.
        assert refresher.compacted_records == 1
        assert [r.seq for r in LogCursor(log_path).poll()] == [2]
        manifest = json.loads((tmp_path / "snap" / "manifest.json").read_text())
        assert manifest["replication_seq"] == 2
    finally:
        app.shutdown_executors()


def test_standby_attaching_mid_compaction_converges(figure1, tmp_path):
    """The acceptance scenario: snapshot stamps seq S, compaction to S
    runs, new mutations land, and a standby attaching from the snapshot
    (load state absorbed through S, tail from S) converges to the leader
    byte-for-byte — the dropped prefix is never needed."""
    log_path = tmp_path / "repl.log"
    leader = ServingApp(QueryService(figure1))
    try:
        leader_rep = attach_replication(
            leader,
            log_path,
            snapshot_path=tmp_path / "snap",
            refresh_every=2,
        )
        leader_rep.refresher.compact_min_age = 0.0

        async def _leader_mutations():
            await leader_rep.publish("update-edges", {"insert": [[0, 7]]})
            # Refresh + compaction fire here (every=2): snapshot stamps
            # seq 2, records 1-2 leave the log (head anchor stays).
            await leader_rep.publish(
                "update-weights", {"weights": [2.0] * figure1.n}
            )
            # Post-compaction mutation the standby must still receive.
            await leader_rep.publish("update-edges", {"insert": [[1, 7]]})

        asyncio.run(_leader_mutations())
        assert leader_rep.applied_seq == 3

        from repro.serving.store import load_snapshot

        snapshot = load_snapshot(tmp_path / "snap")
        standby = ServingApp(QueryService(snapshot.graph()))
        try:
            standby_rep = attach_replication(
                standby, log_path, start_seq=snapshot.replication_seq
            )

            async def _catch_up():
                async with standby._update_lock:
                    await standby_rep._sync_locked()

            asyncio.run(_catch_up())
            assert standby_rep.applied_seq == 3
            assert standby_rep.apply_failures == 0
            assert standby_rep.status()["lag"] == 0
            expected = leader.service.submit(QUERY)
            mirrored = standby.service.submit(QUERY)
            assert mirrored.values() == expected.values()
            assert [sorted(c.vertices) for c in mirrored] == [
                sorted(c.vertices) for c in expected
            ]
        finally:
            standby.shutdown_executors()
    finally:
        leader.shutdown_executors()


def test_refresher_default_min_age_protects_running_members(figure1, tmp_path):
    """With the production margin left in place, freshly-appended records
    survive the refresh-triggered compaction — a running member tailing
    at poll cadence can never have its unread prefix vanish."""
    log_path = tmp_path / "repl.log"
    app = ServingApp(QueryService(figure1))
    try:
        replicator = attach_replication(
            app,
            log_path,
            snapshot_path=tmp_path / "snap",
            refresh_every=2,
        )
        assert replicator.refresher.compact_min_age > 0

        async def _mutate():
            await replicator.publish("update-edges", {"insert": [[0, 7]]})
            await replicator.publish(
                "update-weights", {"weights": [2.0] * figure1.n}
            )

        asyncio.run(_mutate())
        assert replicator.refresher.refreshes == 1
        assert replicator.refresher.compacted_records == 0  # too young
        assert [r.seq for r in LogCursor(log_path).poll()] == [1, 2]
    finally:
        app.shutdown_executors()


def test_snapshot_refresher_accepts_no_log():
    """Plain refreshers (no replication) still construct and size-check."""
    with pytest.raises(ValueError):
        SnapshotRefresher(None, "x", every=0)
    refresher = SnapshotRefresher(None, "x", every=3)
    assert refresher.log is None
    assert refresher.compacted_records == 0
